//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Implements the surface the workspace benches use — `Criterion`,
//! `bench_function`, `benchmark_group` / `bench_with_input`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!`, `black_box`
//! — with a simple fixed-budget timer instead of criterion's full
//! statistical machinery: each benchmark is warmed up briefly, then
//! timed for a fixed wall-clock budget and reported as mean
//! time/iteration on stdout. Vendored because the build environment
//! has no crates.io access.
//!
//! Two environment variables feed the CI measured-bench lane:
//!
//! * `CS_BENCH_JSON=<path>` — append one JSON line per measured
//!   benchmark (`{"name":...,"mean_ns":...,"iters":...}`) to `<path>`;
//!   `cs-bench`'s `bench_report` binary aggregates the sink into the
//!   repo-level `BENCH_5.json` report.
//! * `CS_BENCH_BUDGET_MS=<n>` — override the 200 ms measurement budget
//!   per benchmark (CI uses a smaller budget; the calibration phase
//!   scales along with it).

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id (the group supplies the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running it repeatedly for the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget = budget_ms();
        // Warm-up + rough calibration: run until ~10% of the budget
        // has passed.
        let calib_budget = (budget / 10).max(Duration::from_millis(1));
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < calib_budget {
            black_box(f());
            calib_iters += 1;
        }
        // Measurement: roughly `budget` of wall clock in one batch.
        let per_iter = calib_start.elapsed() / calib_iters.max(1) as u32;
        let n = if per_iter.is_zero() {
            1000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = n;
    }
}

/// The per-benchmark measurement budget: 200 ms, or
/// `CS_BENCH_BUDGET_MS` when set.
fn budget_ms() -> Duration {
    std::env::var("CS_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(200))
}

/// Appends one JSON record to the `CS_BENCH_JSON` sink, if configured.
/// Sink errors are reported once per call, never panics — a broken
/// sink must not fail a bench run.
fn record_json(name: &str, per_iter: Duration, iters: u64) {
    let Ok(path) = std::env::var("CS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    // Bench names are code-controlled identifiers; escape the two JSON
    // metacharacters anyway so the sink is always well-formed.
    let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!(
        "{{\"name\":\"{escaped}\",\"mean_ns\":{},\"iters\":{iters}}}\n",
        per_iter.as_nanos()
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: cannot append to CS_BENCH_JSON sink {path}: {e}");
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let per = b.total / b.iters as u32;
        println!("{name:<40} time: [{}] ({} iters)", fmt_time(per), b.iters);
        record_json(name, per, b.iters);
    } else {
        println!("{name:<40} (no measurement)");
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Benchmarks `f` with `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.name, |b| f(b, input));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), f);
        self
    }

    /// Ends the group (no-op in this subset).
    pub fn finish(self) {}
}

/// Declares a benchmark group function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut hits = 0u32;
        c.bench_function("noop", |b| {
            hits += 1;
            b.iter(|| black_box(1 + 1))
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("gam").to_string(), "gam");
    }
}
