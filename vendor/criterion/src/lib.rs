//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Implements the surface the workspace benches use — `Criterion`,
//! `bench_function`, `benchmark_group` / `bench_with_input`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!`, `black_box`
//! — with a simple fixed-budget timer instead of criterion's full
//! statistical machinery: each benchmark is warmed up briefly, then
//! timed for a fixed wall-clock budget and reported as mean
//! time/iteration on stdout. Vendored because the build environment
//! has no crates.io access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id (the group supplies the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running it repeatedly for the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + rough calibration: run until ~20ms has passed.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(20) {
            black_box(f());
            calib_iters += 1;
        }
        // Measurement: roughly `BUDGET` of wall clock in one batch.
        let budget = Duration::from_millis(200);
        let per_iter = calib_start.elapsed() / calib_iters.max(1) as u32;
        let n = if per_iter.is_zero() {
            1000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = n;
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let per = b.total / b.iters as u32;
        println!("{name:<40} time: [{}] ({} iters)", fmt_time(per), b.iters);
    } else {
        println!("{name:<40} (no measurement)");
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Benchmarks `f` with `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.name, |b| f(b, input));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), f);
        self
    }

    /// Ends the group (no-op in this subset).
    pub fn finish(self) {}
}

/// Declares a benchmark group function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut hits = 0u32;
        c.bench_function("noop", |b| {
            hits += 1;
            b.iter(|| black_box(1 + 1))
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("gam").to_string(), "gam");
    }
}
