//! Offline, API-compatible subset of the `rand` crate.
//!
//! The workspace only ever uses deterministic, explicitly-seeded
//! generation (`StdRng::seed_from_u64` + `gen_range` / `gen_bool` /
//! `gen::<f64>()`), so this vendored stand-in implements exactly that
//! surface on top of the SplitMix64/xoshiro256** generators. It exists
//! because the build environment has no crates.io access; the API
//! mirrors `rand 0.8` so the real crate can be swapped back in by
//! editing one manifest line.

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (panics on an empty range).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64 —
    /// the stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let w = r.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
