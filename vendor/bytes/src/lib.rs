//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Implements exactly the surface `cs_graph::binfmt` uses: `BytesMut`
//! as a growable little-endian writer, `Bytes` as a frozen buffer, and
//! the `Buf`/`BufMut` traits with the fixed-width LE accessors. Backed
//! by `Vec<u8>`; no shared-ownership or split semantics. Vendored
//! because the build environment has no crates.io access — the real
//! crate can be swapped back by editing one manifest line.

use std::ops::{Deref, DerefMut};

/// Read-side cursor operations, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes (panics if fewer remain).
    fn advance(&mut self, n: usize);
    /// Borrows the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write-side operations, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A frozen, immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Wraps an owned `Vec<u8>`.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Bytes(v)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer for encoding.
#[derive(Clone, Debug, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_i64_le(-5);
        w.put_f64_le(2.5);
        w.put_slice(b"hey");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.chunk(), b"hey");
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }
}
