//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(..)]`), integer/float
//! range strategies, `any::<T>()`, tuple strategies, `prop_map`,
//! `collection::vec`, simple `[class]{m,n}` string strategies, and the
//! `prop_assert!` / `prop_assert_eq!` assertions. Failing inputs are
//! reported via panic message; there is **no shrinking**. Case
//! generation is deterministic per (test name, case index), so failures
//! reproduce exactly across runs. Vendored because the build
//! environment has no crates.io access.

pub mod test_runner {
    //! Deterministic case-generation RNG and run configuration.

    /// Per-test configuration (`ProptestConfig` in real proptest).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic RNG: xoshiro256** seeded from a test-identity hash.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for case number `case` of the test identified by `ident`.
        pub fn for_case(ident: &str, case: u32) -> Self {
            // FNV-1a over the identity, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in ident.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h ^ ((case as u64) << 32 | 0x5ca1_ab1e);
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as u128).wrapping_add(v) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128).wrapping_sub(start as u128) + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as u128).wrapping_add(v) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// `&str` strategies: a `[class]{m,n}` pattern (single character
    /// class with a repetition count) or, failing that, the literal
    /// string itself.
    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            match parse_class_repeat(self) {
                Some((chars, lo, hi)) => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parses `[a-zA-Z0-9]{lo,hi}` into (alphabet, lo, hi).
    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let reps = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .to_string();
        let (lo, hi) = match reps.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((chars, lo, hi))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn class_parses() {
            let (chars, lo, hi) = parse_class_repeat("[a-c1]{2,5}").unwrap();
            assert_eq!(chars, vec!['a', 'b', 'c', '1']);
            assert_eq!((lo, hi), (2, 5));
        }

        #[test]
        fn string_strategy_in_bounds() {
            let mut rng = TestRng::for_case("t", 0);
            for _ in 0..200 {
                let s = "[a-z]{1,10}".new_value(&mut rng);
                assert!((1..=10).contains(&s.chars().count()));
                assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: a fixed length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs a block of property tests; see the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            (<$crate::test_runner::Config as Default>::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $pat = $crate::strategy::Strategy::new_value(
                        &($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// `assert!` with proptest spelling (no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` with proptest spelling (no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` with proptest spelling (no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u32..6), f in 0.25f64..0.75) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vectors_and_any(v in collection::vec(any::<u8>(), 0..20), mut w in collection::vec(0usize..3, 4)) {
            prop_assert!(v.len() < 20);
            prop_assert_eq!(w.len(), 4);
            w.push(0);
            prop_assert!(w.iter().all(|&x| x < 3 || x == 0));
        }

        #[test]
        fn mapped(x in (1usize..5).prop_map(|n| n * 2)) {
            prop_assert!(x % 2 == 0 && (2..10).contains(&x));
        }
    }
}
