//! Benchmarks of the conjunctive-engine substrate: pattern scans,
//! hash joins, and whole-BGP evaluation on the YAGO-like graph.

use criterion::{criterion_group, criterion_main, Criterion};
use cs_engine::{eval_bgp, eval_bgp_greedy, plan_bgp, Bgp, Term};
use cs_graph::generate::{yago_like, YagoLikeParams};
use cs_graph::Predicate;

fn benches(c: &mut Criterion) {
    let g = yago_like(&YagoLikeParams {
        persons: 5_000,
        organisations: 200,
        places: 50,
        works: 500,
        seed: 5,
    });

    c.bench_function("bgp_single_label_scan", |b| {
        let mut bgp = Bgp::new();
        bgp.push(
            Term::var("x"),
            Term::pred("e", Predicate::label("worksFor")),
            Term::var("o"),
        );
        b.iter(|| eval_bgp(&g, &bgp))
    });

    c.bench_function("bgp_two_pattern_join", |b| {
        let mut bgp = Bgp::new();
        bgp.push(
            Term::var("x"),
            Term::pred("e1", Predicate::label("worksFor")),
            Term::var("o"),
        );
        bgp.push(
            Term::var("o"),
            Term::pred("e2", Predicate::label("locatedIn")),
            Term::var("p"),
        );
        b.iter(|| eval_bgp(&g, &bgp))
    });

    let star_bgp = {
        let mut bgp = Bgp::new();
        bgp.push(
            Term::pred("x", Predicate::typed("person")),
            Term::pred("e1", Predicate::label("worksFor")),
            Term::var("o"),
        );
        bgp.push(
            Term::var("x"),
            Term::pred("e2", Predicate::label("bornIn")),
            Term::var("p"),
        );
        bgp.push(
            Term::var("x"),
            Term::pred("e3", Predicate::label("citizenOf")),
            Term::var("cc"),
        );
        bgp
    };

    c.bench_function("bgp_star_join_three_patterns", |b| {
        b.iter(|| eval_bgp(&g, &star_bgp))
    });

    // A/B baseline: the pre-planner strategy (materialise every
    // pattern table, join greedily by actual size) on the same BGP.
    c.bench_function("bgp_star_join_three_patterns_greedy", |b| {
        b.iter(|| eval_bgp_greedy(&g, &star_bgp))
    });

    // Planning alone: must be negligible next to evaluation.
    c.bench_function("bgp_plan_only_star", |b| b.iter(|| plan_bgp(&g, &star_bgp)));
}

criterion_group!(bgp, benches);
criterion_main!(bgp);
