//! Cross-query result cache benchmarks: the same CTP-heavy query
//! cold (cache off, full search every run), warm (exact-signature
//! replay), and dominated (a narrower probe served by subsumption
//! from a wider cached entry, zero graph traversal).
//!
//! Two acceptance assertions run before the measured benches:
//! an exact hit must replay at least 5x faster than the cold
//! search, and a subsumption-served probe must beat re-searching
//! the narrow query directly.

use criterion::{criterion_group, criterion_main, Criterion};
use cs_bench::harness::cdf_query;
use cs_eql::{ExecOptions, ResultCacheMode, Session};
use cs_graph::generate::{cdf, random_connected, CdfParams};
use std::time::{Duration, Instant};

/// Options with the result cache disabled — the uncached baseline.
fn cache_off() -> ExecOptions {
    ExecOptions {
        result_cache: ResultCacheMode::Off,
        ..ExecOptions::default()
    }
}

/// Mean wall time of `runs` back-to-back executions of `f`.
fn mean_time(runs: u32, mut f: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    for _ in 0..runs {
        f();
    }
    t0.elapsed() / runs
}

fn benches(c: &mut Criterion) {
    // ---- Exact-hit replay on the Fig. 13 pipeline query (BGP +
    // variable-seeded CONNECT on a CDF graph).
    let built = cdf(&CdfParams {
        m: 2,
        n_t: 8,
        n_l: 16,
        s_l: 3,
        seed: 77,
    });
    let q2 = cdf_query(2, false, 10_000);
    let g = random_connected(64, 192, 42);
    let wide = r#"SELECT w WHERE { CONNECT("n0", "n63" -> w) MAX 3 }"#;

    // Acceptance: a warm exact hit replays the stored trees instead of
    // searching, so it must be at least 5x faster than the cold run.
    // Asserted on the explicit-seed workload query, where the search is
    // the whole cost (no BGP/join residual to mask the replay).
    {
        let cold_session = Session::with_options(&g, cache_off());
        let warm_session = Session::new(&g);
        warm_session.run(wide).expect("warm-up run");
        let cold = mean_time(10, || {
            cold_session.run(wide).expect("cold run");
        });
        let warm = mean_time(10, || {
            warm_session.run(wide).expect("warm run");
        });
        assert!(
            warm_session.result_cache_hits() >= 10,
            "warm runs must be served from the cache"
        );
        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        println!("result-cache exact-hit speedup: {speedup:.1}x (cold {cold:?}, warm {warm:?})");
        assert!(
            speedup >= 5.0,
            "exact hit must be >=5x faster than cold search, got {speedup:.2}x \
             (cold {cold:?}, warm {warm:?})"
        );
    }

    c.bench_function("eql_result_cache_cold", |b| {
        let session = Session::with_options(&built.graph, cache_off());
        b.iter(|| session.run(&q2).unwrap())
    });
    c.bench_function("eql_result_cache_warm_exact", |b| {
        let session = Session::new(&built.graph);
        session.run(&q2).unwrap();
        b.iter(|| session.run(&q2).unwrap())
    });

    // ---- Subsumption on the serving workload graph: warm the cache
    // with the wide MAX 3 search, then probe a label-restricted twin.
    // The entry dominates the probe (superset labels, same bound), so
    // every probe filters cached trees instead of searching.
    let narrow = r#"SELECT w WHERE { CONNECT("n0", "n63" -> w) LABEL "r0", "r1", "r2" MAX 3 }"#;

    // Acceptance: answering the narrow probe by filtering the cached
    // wide result must beat re-searching the narrow query directly.
    {
        let direct_session = Session::with_options(&g, cache_off());
        let sub_session = Session::new(&g);
        sub_session.run(wide).expect("wide warm-up");
        sub_session.run(narrow).expect("subsumed probe");
        assert!(
            sub_session.result_cache_subsumed_hits() >= 1,
            "the narrow probe must be subsumption-served"
        );
        let direct = mean_time(10, || {
            direct_session.run(narrow).expect("direct narrow search");
        });
        let subsumed = mean_time(10, || {
            sub_session.run(narrow).expect("subsumed narrow probe");
        });
        println!("result-cache subsumption: direct {direct:?}, subsumed {subsumed:?}");
        assert!(
            subsumed < direct,
            "subsumption-served probe ({subsumed:?}) must beat direct re-search ({direct:?})"
        );
    }

    c.bench_function("eql_result_cache_direct_narrow", |b| {
        let session = Session::with_options(&g, cache_off());
        b.iter(|| session.run(narrow).unwrap())
    });
    c.bench_function("eql_result_cache_subsumed", |b| {
        let session = Session::new(&g);
        session.run(wide).unwrap();
        b.iter(|| session.run(narrow).unwrap())
    });
}

criterion_group!(eql_result_cache, benches);
criterion_main!(eql_result_cache);
