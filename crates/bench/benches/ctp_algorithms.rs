//! Micro-benchmarks of the CTP search algorithms on the paper's
//! synthetic families (Criterion companions to Figures 10/11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cs_core::{evaluate_ctp, Algorithm, Filters, QueueOrder, SeedSets};
use cs_graph::generate::{chain, comb, line, star, Workload};

fn bench_family(c: &mut Criterion, name: &str, w: &Workload, algos: &[Algorithm]) {
    let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
    let mut group = c.benchmark_group(name);
    for &algo in algos {
        group.bench_with_input(BenchmarkId::from_parameter(algo), &algo, |b, &algo| {
            b.iter(|| {
                evaluate_ctp(
                    &w.graph,
                    &seeds,
                    algo,
                    Filters::none(),
                    QueueOrder::SmallestFirst,
                )
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    let gam_family = Algorithm::GAM_FAMILY;
    bench_family(c, "line_m3_sl4", &line(3, 3), &gam_family);
    bench_family(c, "comb_na2_sl3", &comb(2, 2, 3, 1), &gam_family);
    bench_family(c, "star_m5_sl3", &star(5, 3), &gam_family);
    // The exponential chain stresses result enumeration + dedup.
    bench_family(
        c,
        "chain_n8_256_results",
        &chain(8),
        &[Algorithm::Gam, Algorithm::MoLesp],
    );
    // Baseline comparison on a tiny input where BFT is feasible.
    bench_family(
        c,
        "baselines_line_m3_sl3",
        &line(3, 2),
        &[
            Algorithm::Bft,
            Algorithm::BftM,
            Algorithm::BftAm,
            Algorithm::Gam,
        ],
    );
}

criterion_group!(ctp, benches);
criterion_main!(ctp);
