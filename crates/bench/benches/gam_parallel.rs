//! Intra-search parallelism benchmark (paper §6): sequential MoLESP vs
//! the partitioned-history engine on the enumeration-heavy `chain(8)`
//! workload (256 results) and a dense random graph.
//!
//! Besides the per-case timings, the benchmark prints the measured
//! sequential / 4-worker speedup on `chain(8)`. On a multicore host
//! the partitioned engine should come out ≥1.5× ahead; on a 1-CPU host
//! `run_partitioned` still spawns the workers, so expect parity at
//! best there — the interesting number is the multicore one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cs_core::{
    evaluate_ctp, evaluate_ctp_partitioned, Algorithm, Filters, QueueOrder, QueuePolicy, SeedSets,
};
use cs_graph::generate::{chain, random_connected};
use cs_graph::{Graph, NodeId};
use std::time::Instant;

fn sequential(g: &Graph, seeds: &SeedSets, filters: &Filters) -> usize {
    evaluate_ctp(
        g,
        seeds,
        Algorithm::MoLesp,
        filters.clone(),
        QueueOrder::SmallestFirst,
    )
    .results
    .len()
}

fn partitioned(g: &Graph, seeds: &SeedSets, filters: &Filters, workers: usize) -> usize {
    evaluate_ctp_partitioned(
        g,
        seeds,
        Algorithm::MoLesp,
        filters.clone(),
        QueueOrder::SmallestFirst,
        QueuePolicy::Single,
        workers,
    )
    .results
    .len()
}

fn bench_case(c: &mut Criterion, name: &str, g: &Graph, seeds: &SeedSets, filters: &Filters) {
    let mut group = c.benchmark_group(name);
    group.bench_with_input(BenchmarkId::from_parameter("seq"), &(), |b, ()| {
        b.iter(|| sequential(g, seeds, filters))
    });
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("par{workers}")),
            &workers,
            |b, &workers| b.iter(|| partitioned(g, seeds, filters, workers)),
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    // The exponential chain: 256 results, heavy Grow/Merge churn.
    let w = chain(8);
    let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
    bench_case(c, "chain8_molesp", &w.graph, &seeds, &Filters::none());

    // A denser random graph bounded by MAX 5.
    let g = random_connected(64, 192, 42);
    let seeds = SeedSets::from_sets(vec![
        vec![NodeId(0), NodeId(1)],
        vec![NodeId(62), NodeId(63)],
    ])
    .unwrap();
    bench_case(
        c,
        "random64_molesp_max5",
        &g,
        &seeds,
        &Filters::none().with_max_edges(5),
    );

    // Headline number: sequential vs partitioned on chain(8), measured
    // directly so the speedup is printed even under the vendored
    // (statistics-free) criterion. The worker count is clamped to the
    // host's cores — `min(4, cores)` — because intra-search workers
    // beyond the hardware only add scheduling overhead: a 1-CPU host
    // therefore measures the sequential delegation (parity by
    // construction), a multicore host the real 4-worker engine.
    let w = chain(8);
    let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = 4usize.min(cores);
    let reps = 30;
    let t0 = Instant::now();
    for _ in 0..reps {
        assert_eq!(sequential(&w.graph, &seeds, &Filters::none()), 256);
    }
    let seq = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..reps {
        assert_eq!(
            partitioned(&w.graph, &seeds, &Filters::none(), workers),
            256
        );
    }
    let par = t1.elapsed();
    println!(
        "chain(8) MoLESP: sequential {:?}, {workers}-worker partitioned {:?} → {:.2}x speedup ({cores} core(s))",
        seq / reps,
        par / reps,
        seq.as_secs_f64() / par.as_secs_f64().max(f64::MIN_POSITIVE),
    );
}

criterion_group!(gam_parallel, benches);
criterion_main!(gam_parallel);
