//! Live-graph mutation benchmarks: what a mutation batch costs to
//! apply, and what keeping a standing query current costs afterwards —
//! the watch's delta maintenance (generation check, label-footprint
//! test, reach probe) against the naive alternative of re-running the
//! query in full after every batch.
//!
//! One acceptance assertion runs before the measured benches: for a
//! mutation outside the standing query's label footprint, the
//! maintain path (mutate + poll, which skips re-evaluation) must beat
//! the recompute path (mutate + full cache-off re-run) outright.

use criterion::{criterion_group, criterion_main, Criterion};
use cs_eql::{ExecOptions, ResultCacheMode, Session, WatchSkip};
use cs_graph::generate::random_connected;
use cs_graph::{Mutation, NodeId};
use std::time::{Duration, Instant};

/// The serving workload graph every eql_* figure runs on.
fn workload() -> cs_graph::Graph {
    random_connected(64, 192, 42)
}

/// The standing query: the bench-serve figure query with an explicit
/// LABEL filter, so its footprint (`r0..r3`) is closed and mutations
/// under a foreign label are provably irrelevant.
const STANDING: &str =
    r#"SELECT w WHERE { CONNECT("n0", "n63" -> w) LABEL "r0", "r1", "r2", "r3" MAX 3 }"#;

/// One churn round: insert an edge under a label the standing query
/// cannot observe, then remove it again — two generation bumps that
/// leave the graph unchanged.
fn churn(session: &mut Session<'static>) {
    let applied = session
        .mutate(vec![Mutation::InsertEdge {
            src: NodeId::new(5),
            label: "zz".to_string(),
            dst: NodeId::new(9),
        }])
        .expect("insert applies");
    session
        .mutate(vec![Mutation::RemoveEdge {
            edge: applied.edges[0],
        }])
        .expect("remove applies");
}

/// Mean wall time of `runs` back-to-back executions of `f`.
fn mean_time(runs: u32, mut f: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    for _ in 0..runs {
        f();
    }
    t0.elapsed() / runs
}

fn benches(c: &mut Criterion) {
    // Acceptance: maintaining the standing answer across an irrelevant
    // batch (poll → label-footprint skip) must beat re-running the
    // query in full after the same batch.
    {
        let mut maintain = Session::from_graph_with(workload(), ExecOptions::default());
        let mut watch = maintain.watch(STANDING).expect("baseline");
        let mut recompute = Session::from_graph_with(
            workload(),
            ExecOptions {
                result_cache: ResultCacheMode::Off,
                ..ExecOptions::default()
            },
        );
        recompute.run(STANDING).expect("warm the plan cache");
        let maintain_mean = mean_time(20, || {
            churn(&mut maintain);
            let delta = watch.poll(&maintain).expect("poll");
            assert_eq!(delta.skipped, Some(WatchSkip::LabelsDisjoint));
        });
        let recompute_mean = mean_time(20, || {
            churn(&mut recompute);
            recompute.run(STANDING).expect("full re-run");
        });
        println!(
            "mutation maintenance: delta {maintain_mean:?}, full recompute {recompute_mean:?}"
        );
        assert!(
            maintain_mean < recompute_mean,
            "delta maintenance ({maintain_mean:?}) must beat full recompute \
             ({recompute_mean:?})"
        );
    }

    // What a minimal batch costs end to end through the session: CoW
    // overlay write, generation bump, cardinality maintenance, plan- and
    // result-cache invalidation.
    c.bench_function("eql_mutation_apply_batch", |b| {
        let mut session = Session::from_graph_with(workload(), ExecOptions::default());
        b.iter(|| churn(&mut session))
    });

    // Keeping a standing query current across irrelevant churn: the
    // poll terminates at the label-footprint layer.
    c.bench_function("eql_mutation_delta_maintain", |b| {
        let mut session = Session::from_graph_with(workload(), ExecOptions::default());
        let mut watch = session.watch(STANDING).expect("baseline");
        b.iter(|| {
            churn(&mut session);
            watch.poll(&session).expect("poll")
        })
    });

    // The naive alternative: re-run the standing query in full (result
    // cache off) after the same churn.
    c.bench_function("eql_mutation_full_recompute", |b| {
        let mut session = Session::from_graph_with(
            workload(),
            ExecOptions {
                result_cache: ResultCacheMode::Off,
                ..ExecOptions::default()
            },
        );
        b.iter(|| {
            churn(&mut session);
            session.run(STANDING).expect("full re-run")
        })
    });

    // A *relevant* mutation (an `r0` edge off the source seed): the
    // poll cannot skip and re-evaluates, so this figure tracks the
    // worst-case maintenance cost next to the skip path above.
    c.bench_function("eql_mutation_poll_reeval", |b| {
        let mut session = Session::from_graph_with(workload(), ExecOptions::default());
        let mut watch = session.watch(STANDING).expect("baseline");
        b.iter(|| {
            let applied = session
                .mutate(vec![Mutation::InsertEdge {
                    src: NodeId::new(0),
                    label: "r0".to_string(),
                    dst: NodeId::new(17),
                }])
                .expect("insert applies");
            let first = watch.poll(&session).expect("poll");
            assert!(first.skipped.is_none(), "an r0 edge must force a re-run");
            session
                .mutate(vec![Mutation::RemoveEdge {
                    edge: applied.edges[0],
                }])
                .expect("remove applies");
            watch.poll(&session).expect("poll")
        })
    });
}

criterion_group!(mutation, benches);
criterion_main!(mutation);
