//! Ablation benchmarks for DESIGN.md decision #1: trees as sorted
//! edge-id arrays — measuring the primitive Grow/Merge/history costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cs_core::tree::{nodes_intersect_only_at, sorted_insert, sorted_union};
use cs_graph::fxhash::{fx_hash_one, FxHashSet};
use cs_graph::{EdgeId, NodeId};

fn benches(c: &mut Criterion) {
    for size in [8usize, 64, 512] {
        let edges: Vec<EdgeId> = (0..size as u32).map(|i| EdgeId(i * 2)).collect();
        let nodes: Vec<NodeId> = (0..size as u32).map(|i| NodeId(i * 2)).collect();
        let other: Vec<NodeId> = (0..size as u32)
            .map(|i| NodeId(i * 2 + 1))
            .chain([NodeId(0)])
            .collect();
        let mut other_sorted = other.clone();
        other_sorted.sort();

        c.bench_with_input(
            BenchmarkId::new("sorted_insert", size),
            &edges,
            |b, edges| b.iter(|| sorted_insert(edges, EdgeId(999_999))),
        );
        c.bench_with_input(
            BenchmarkId::new("sorted_union", size),
            &(edges.clone(), edges.clone()),
            |b, (a, b2)| b.iter(|| sorted_union(a, b2)),
        );
        c.bench_with_input(
            BenchmarkId::new("merge1_scan", size),
            &(nodes.clone(), other_sorted.clone()),
            |b, (a, o)| b.iter(|| nodes_intersect_only_at(a, o, NodeId(0))),
        );
        c.bench_with_input(BenchmarkId::new("edge_set_hash", size), &edges, |b, e| {
            b.iter(|| fx_hash_one(&e))
        });
        c.bench_with_input(
            BenchmarkId::new("history_insert_lookup", size),
            &edges,
            |b, e| {
                b.iter(|| {
                    let mut h: FxHashSet<Box<[EdgeId]>> = FxHashSet::default();
                    h.insert(e.clone().into_boxed_slice());
                    h.contains(e.as_slice())
                })
            },
        );
    }
}

criterion_group!(tree_ops, benches);
criterion_main!(tree_ops);
