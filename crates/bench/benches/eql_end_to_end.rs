//! End-to-end EQL benchmarks: parse + plan + BGPs + CTP search + join
//! on a small CDF graph (the Fig. 13 pipeline at micro scale).

use criterion::{criterion_group, criterion_main, Criterion};
use cs_bench::harness::cdf_query;
use cs_eql::{parse, run_query};
use cs_graph::generate::{cdf, CdfParams};

fn benches(c: &mut Criterion) {
    let built = cdf(&CdfParams {
        m: 2,
        n_t: 8,
        n_l: 16,
        s_l: 3,
        seed: 77,
    });
    let q2 = cdf_query(2, false, 10_000);

    c.bench_function("eql_parse_cdf_query", |b| b.iter(|| parse(&q2).unwrap()));
    c.bench_function("eql_cdf_m2_full_pipeline", |b| {
        b.iter(|| run_query(&built.graph, &q2).unwrap())
    });

    let built3 = cdf(&CdfParams {
        m: 3,
        n_t: 4,
        n_l: 8,
        s_l: 3,
        seed: 78,
    });
    let q3 = cdf_query(3, false, 10_000);
    c.bench_function("eql_cdf_m3_full_pipeline", |b| {
        b.iter(|| run_query(&built3.graph, &q3).unwrap())
    });

    let uni = cdf_query(2, true, 10_000);
    c.bench_function("eql_cdf_m2_uni_pipeline", |b| {
        b.iter(|| run_query(&built.graph, &uni).unwrap())
    });
}

criterion_group!(eql, benches);
criterion_main!(eql);
