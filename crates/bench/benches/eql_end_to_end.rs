//! End-to-end EQL benchmarks: parse + plan + BGPs + CTP search + join
//! on a small CDF graph (the Fig. 13 pipeline at micro scale), plus
//! the Session-API workloads: a repeated-shape query stream that
//! exercises the plan cache (warm session vs cold per-query sessions)
//! and a multi-query batch comparing `execute_batch` (one cross-query
//! parallel dispatch) against sequential one-shot execution.

use criterion::{criterion_group, criterion_main, Criterion};
use cs_bench::harness::cdf_query;
use cs_eql::{parse, ExecOptions, ResultCacheMode, Session};
use cs_graph::figure1;
use cs_graph::generate::{cdf, CdfParams};
use cs_graph::Graph;

/// Every session here disables the cross-query result cache: these
/// benches measure the search/join pipeline itself, and a cache hit on
/// a repeated identical query would time the replay path instead (that
/// path has its own bench, `eql_result_cache`).
fn uncached(graph: &Graph) -> Session<'_> {
    Session::with_options(
        graph,
        ExecOptions {
            result_cache: ResultCacheMode::Off,
            ..ExecOptions::default()
        },
    )
}

/// One of `n` distinct queries sharing a single 8-pattern star-join
/// BGP shape over the Figure 1 labels (non-empty result): only the
/// variable names differ, so a warm session plans the first and
/// serves the other `n-1` from the shape-keyed cache.
fn star_query(i: usize) -> String {
    format!(
        r#"SELECT x{i} WHERE {{
             (x{i}, "citizenOf", c{i})
             (x{i}, "founded", o{i})
             (o{i}, "locatedIn", c{i})
             (y{i}, "investsIn", o{i})
             (y{i}, "citizenOf", d{i})
             (z{i}, "affiliation", a{i})
             (z{i}, "citizenOf", d{i})
             (p{i}, "investsIn", o{i})
           }}"#
    )
}

fn benches(c: &mut Criterion) {
    let built = cdf(&CdfParams {
        m: 2,
        n_t: 8,
        n_l: 16,
        s_l: 3,
        seed: 77,
    });
    let q2 = cdf_query(2, false, 10_000);

    c.bench_function("eql_parse_cdf_query", |b| b.iter(|| parse(&q2).unwrap()));
    c.bench_function("eql_cdf_m2_full_pipeline", |b| {
        let session = uncached(&built.graph);
        b.iter(|| session.run(&q2).unwrap())
    });

    let built3 = cdf(&CdfParams {
        m: 3,
        n_t: 4,
        n_l: 8,
        s_l: 3,
        seed: 78,
    });
    let q3 = cdf_query(3, false, 10_000);
    c.bench_function("eql_cdf_m3_full_pipeline", |b| {
        let session = uncached(&built3.graph);
        b.iter(|| session.run(&q3).unwrap())
    });

    let uni = cdf_query(2, true, 10_000);
    c.bench_function("eql_cdf_m2_uni_pipeline", |b| {
        let session = uncached(&built.graph);
        b.iter(|| session.run(&uni).unwrap())
    });

    // ---- Plan-cache workload (Fig. 13 amortisation): 120 distinct
    // queries of one star-join shape. Cold pays planning per query;
    // warm plans once and hits the cache 119 times.
    let g = figure1();
    let shape_stream: Vec<String> = (0..120).map(star_query).collect();

    c.bench_function("eql_repeated_shape_cold_sessions", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for q in &shape_stream {
                rows += uncached(&g).run(q).unwrap().rows();
            }
            rows
        })
    });
    c.bench_function("eql_repeated_shape_warm_session", |b| {
        b.iter(|| {
            let session = uncached(&g);
            let mut rows = 0usize;
            for q in &shape_stream {
                let r = session.run(q).unwrap();
                rows += r.rows();
            }
            assert!(
                session.plan_cache_hits() >= 119,
                "cache must serve the stream"
            );
            rows
        })
    });

    // ---- Cross-query batching: 8 CTP-heavy queries through one
    // `evaluate_ctps_parallel` dispatch (threads = 0, i.e. available
    // parallelism) vs the same queries one-shot, sequentially.
    let batch_queries: Vec<String> = (0..8)
        .map(|i| cdf_query(2, i % 2 == 1, 10_000 + i as u64))
        .collect();
    let batch_refs: Vec<&str> = batch_queries.iter().map(String::as_str).collect();

    c.bench_function("eql_multi_query_oneshot_sequential", |b| {
        let session = uncached(&built.graph);
        b.iter(|| {
            let mut rows = 0usize;
            for q in &batch_refs {
                rows += session.run(q).unwrap().rows();
            }
            rows
        })
    });
    c.bench_function("eql_multi_query_batch_threads0", |b| {
        let session = Session::with_options(
            &built.graph,
            ExecOptions {
                threads: 0,
                result_cache: ResultCacheMode::Off,
                ..ExecOptions::default()
            },
        );
        b.iter(|| {
            session
                .execute_batch(&batch_refs)
                .into_iter()
                .map(|r| r.unwrap().rows())
                .sum::<usize>()
        })
    });
}

criterion_group!(eql, benches);
criterion_main!(eql);
