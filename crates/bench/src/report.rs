//! Reporting helpers for the figure/table harness binaries: aligned
//! console tables, CSV emission, and repeated-run timing (the paper
//! averages every point over 3 executions, §5.1).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Times `f`, returning its value and the wall-clock duration.
pub fn time_it<T, F: FnOnce() -> T>(f: F) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

/// Runs `f` `runs` times and returns the last value together with the
/// average duration — mirroring the paper's "every execution point is
/// averaged over 3 executions".
pub fn time_avg<T, F: FnMut() -> T>(runs: usize, mut f: F) -> (T, Duration) {
    assert!(runs >= 1);
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..runs {
        let (v, d) = time_it(&mut f);
        total += d;
        last = Some(v);
    }
    (last.unwrap(), total / runs as u32)
}

/// An accumulating result table printed at the end of a harness run.
#[derive(Debug, Default)]
pub struct Report {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Report {
    /// Creates a report with a title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Report {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Adds one row (stringifying each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let head: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        out.push_str(&head.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(head.join("  ").len()));
        out.push('\n');
        for r in &self.rows {
            let line: Vec<String> = r
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders machine-readable CSV.
    pub fn csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints table + CSV block to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
        println!("--- csv ---\n{}", self.csv());
    }
}

/// Formats a duration in milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers() {
        let (v, d) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        let (v, avg) = time_avg(3, || 7);
        assert_eq!(v, 7);
        assert!(avg <= d + Duration::from_secs(1));
    }

    #[test]
    fn report_renders_aligned() {
        let mut r = Report::new("demo", &["x", "time_ms"]);
        r.row(&[&1, &"10.00"]);
        r.row(&[&100, &"3.25"]);
        let s = r.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("100"));
        assert_eq!(r.len(), 2);
        let csv = r.csv();
        assert!(csv.starts_with("x,time_ms\n"));
        assert!(csv.contains("100,3.25"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn report_checks_arity() {
        let mut r = Report::new("demo", &["a", "b"]);
        r.row(&[&1]);
    }

    #[test]
    fn ms_format() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
    }
}
