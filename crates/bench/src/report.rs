//! Reporting helpers for the figure/table harness binaries: aligned
//! console tables, CSV emission, repeated-run timing (the paper
//! averages every point over 3 executions, §5.1), and the
//! machine-readable JSON bench report (`BENCH_5.json`) the CI
//! measured-bench lane records the perf trajectory with.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Times `f`, returning its value and the wall-clock duration.
pub fn time_it<T, F: FnOnce() -> T>(f: F) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

/// Runs `f` `runs` times and returns the last value together with the
/// average duration — mirroring the paper's "every execution point is
/// averaged over 3 executions".
pub fn time_avg<T, F: FnMut() -> T>(runs: usize, mut f: F) -> (T, Duration) {
    assert!(runs >= 1);
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..runs {
        let (v, d) = time_it(&mut f);
        total += d;
        last = Some(v);
    }
    (last.unwrap(), total / runs as u32)
}

/// An accumulating result table printed at the end of a harness run.
#[derive(Debug, Default)]
pub struct Report {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Report {
    /// Creates a report with a title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Report {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Adds one row (stringifying each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let head: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        out.push_str(&head.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(head.join("  ").len()));
        out.push('\n');
        for r in &self.rows {
            let line: Vec<String> = r
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders machine-readable CSV.
    pub fn csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints table + CSV block to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
        println!("--- csv ---\n{}", self.csv());
    }
}

/// Formats a duration in milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One measured benchmark: the unit the vendored criterion appends to
/// the `CS_BENCH_JSON` sink and [`bench_report_json`] aggregates into
/// `BENCH_5.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// The benchmark's full name (`group/function/param`).
    pub name: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: u64,
    /// Iterations measured.
    pub iters: u64,
}

impl BenchRecord {
    /// Renders the one-line JSON object form used in the raw sink.
    pub fn to_json_line(&self) -> String {
        format!(
            r#"{{"name":"{}","mean_ns":{},"iters":{}}}"#,
            json_escape(&self.name),
            self.mean_ns,
            self.iters
        )
    }

    /// Parses a line produced by [`BenchRecord::to_json_line`] (or by
    /// the vendored criterion's sink, which writes the same shape).
    /// Returns `None` on anything that does not match; bench names
    /// never contain quotes, so no unescaping is needed.
    pub fn from_json_line(line: &str) -> Option<BenchRecord> {
        let line = line.trim();
        let name = line.split(r#""name":""#).nth(1)?.split('"').next()?;
        let field = |key: &str| -> Option<u64> {
            line.split(&format!(r#""{key}":"#))
                .nth(1)?
                .split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        };
        Some(BenchRecord {
            name: name.to_string(),
            mean_ns: field("mean_ns")?,
            iters: field("iters")?,
        })
    }
}

/// Renders the machine-readable bench report (the `BENCH_5.json`
/// document): schema id, free-form metadata, and the measured records
/// in input order.
pub fn bench_report_json(records: &[BenchRecord], meta: &[(&str, String)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"cs-bench/1\"");
    for (k, v) in meta {
        out.push_str(&format!(
            ",\n  \"{}\": \"{}\"",
            json_escape(k),
            json_escape(v)
        ));
    }
    out.push_str(",\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json_line());
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers() {
        let (v, d) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        let (v, avg) = time_avg(3, || 7);
        assert_eq!(v, 7);
        assert!(avg <= d + Duration::from_secs(1));
    }

    #[test]
    fn report_renders_aligned() {
        let mut r = Report::new("demo", &["x", "time_ms"]);
        r.row(&[&1, &"10.00"]);
        r.row(&[&100, &"3.25"]);
        let s = r.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("100"));
        assert_eq!(r.len(), 2);
        let csv = r.csv();
        assert!(csv.starts_with("x,time_ms\n"));
        assert!(csv.contains("100,3.25"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn report_checks_arity() {
        let mut r = Report::new("demo", &["a", "b"]);
        r.row(&[&1]);
    }

    #[test]
    fn ms_format() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
    }

    #[test]
    fn bench_record_json_roundtrip() {
        let r = BenchRecord {
            name: "gam_parallel/chain8/4-workers".into(),
            mean_ns: 123_456,
            iters: 42,
        };
        let line = r.to_json_line();
        assert_eq!(BenchRecord::from_json_line(&line), Some(r));
        assert_eq!(BenchRecord::from_json_line("not json"), None);
        assert_eq!(BenchRecord::from_json_line(r#"{"name":"x"}"#), None);
    }

    #[test]
    fn bench_report_document_shape() {
        let records = vec![
            BenchRecord {
                name: "a/b".into(),
                mean_ns: 10,
                iters: 3,
            },
            BenchRecord {
                name: "c".into(),
                mean_ns: 20,
                iters: 5,
            },
        ];
        let doc = bench_report_json(&records, &[("commit", "abc123".into())]);
        assert!(doc.contains(r#""schema": "cs-bench/1""#));
        assert!(doc.contains(r#""commit": "abc123""#));
        assert!(doc.contains(r#""name":"a/b""#));
        // Every line must parse back.
        let parsed: Vec<_> = doc
            .lines()
            .filter_map(BenchRecord::from_json_line)
            .collect();
        assert_eq!(parsed, records);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), r"x\ny");
    }
}
