//! # cs-bench — the figure/table regeneration harness
//!
//! One binary per paper figure/table (`fig10` … `table1`), built on a
//! shared harness ([`harness`]) and reporting toolkit ([`report`]).
//! Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;

pub use harness::{
    fig10, fig11, fig12, fig13_14, pinned_graph, snapshot_dir, snapshot_report, table1, Family,
    Scale,
};
pub use report::{bench_report_json, ms, time_avg, time_it, BenchRecord, Report};

/// Parses the common CLI convention of the harness binaries:
/// `--full` switches from quick to paper-like parameters.
pub fn scale_from_args(args: &[String]) -> Scale {
    if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    }
}
