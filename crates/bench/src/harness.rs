//! The experiment harness: one function per paper figure/table, each
//! returning [`Report`]s with the same rows/series the paper plots.
//!
//! Absolute numbers differ from the paper (laptop vs the authors' 2×10
//! core Xeon; Rust vs Java; synthetic substitutes for DBPedia/YAGO —
//! see DESIGN.md §2), but the *shapes* are the deliverable: who wins,
//! by what factor, and where algorithms blow up.

use crate::report::{ms, time_avg, time_it, Report};
use cs_core::baseline::{dpbf, path_table, stitch, PathOptions};
use cs_core::{
    evaluate_ctp, evaluate_ctp_with_policy, Algorithm, Filters, QueueOrder, QueuePolicy, SeedSets,
};
use cs_eql::Session;
use cs_graph::generate::{cdf, comb, line, scale_free, star, CdfParams, ScaleFreeParams, Workload};
use cs_graph::{snapshot, Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Duration;

/// The harness's snapshot store directory: `$CS_SNAPSHOT_DIR`, or
/// `target/snapshots` under the working directory.
pub fn snapshot_dir() -> PathBuf {
    std::env::var_os("CS_SNAPSHOT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/snapshots"))
}

/// Loads the graph pinned under `name` from the snapshot store,
/// generating and saving it on first use — so every later harness run
/// (and every figure sharing the dataset) reloads the *identical*
/// bytes instead of regenerating, and starts with warm planner
/// statistics. `fingerprint` must encode everything the generated
/// graph depends on (typically `format!("{params:?}")`): it is hashed
/// into the file name, so changing a figure's parameters invalidates
/// the pin instead of silently reusing the old dataset. (A change to
/// the generator *implementation* still needs a manual
/// `target/snapshots` wipe.) Falls back to plain generation (with a
/// warning) when the store is unwritable; a corrupt pinned file is
/// regenerated.
pub fn pinned_graph(name: &str, fingerprint: &str, build: impl FnOnce() -> Graph) -> Graph {
    let path = snapshot_dir().join(format!(
        "{name}-{:016x}.csg",
        cs_graph::fxhash::fx_hash_one(&fingerprint)
    ));
    if path.exists() {
        match snapshot::load_from(&path) {
            Ok(g) => return g,
            Err(e) => eprintln!("warning: regenerating pinned snapshot {name}: {e}"),
        }
    }
    let g = build();
    if let Err(e) = std::fs::create_dir_all(snapshot_dir())
        .map_err(|e| e.to_string())
        .and_then(|_| snapshot::save_to(&g, &path).map_err(|e| e.to_string()))
    {
        eprintln!("warning: cannot pin snapshot {name}: {e}");
    }
    g
}

/// Harness scale: `quick` finishes in seconds per figure; `full`
/// approaches the paper's parameter ranges (minutes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly parameters.
    Quick,
    /// Paper-like parameters.
    Full,
}

impl Scale {
    fn timeout(self) -> Duration {
        match self {
            Scale::Quick => Duration::from_secs(2),
            Scale::Full => Duration::from_secs(60),
        }
    }

    fn runs(self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Full => 3, // the paper averages over 3 executions
        }
    }

    fn sl_range(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![2, 4, 6],
            Scale::Full => (2..=10).collect(),
        }
    }
}

/// The synthetic graph family of Figures 10/11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// `Line(m, nL)`.
    Line,
    /// `Comb(nA, 2, sL, 1)`.
    Comb,
    /// `Star(m, sL)`.
    Star,
}

impl std::str::FromStr for Family {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "line" => Ok(Family::Line),
            "comb" => Ok(Family::Comb),
            "star" => Ok(Family::Star),
            other => Err(format!("unknown family {other:?} (line|comb|star)")),
        }
    }
}

/// Builds the workload for a family point; `m_param` is `m` for
/// Line/Star and `nA` for Comb (the paper's series parameter).
pub fn family_workload(family: Family, m_param: usize, s_l: usize) -> Workload {
    match family {
        Family::Line => line(m_param, s_l.saturating_sub(1)),
        Family::Comb => comb(m_param, 2, s_l, 1),
        Family::Star => star(m_param, s_l),
    }
}

/// Series parameters per family (Fig. 10/11: m ∈ {3,5,10} for Line and
/// Star, nA ∈ {2,4,6} for Comb → m ∈ {6,12,18}).
pub fn family_series(family: Family, scale: Scale) -> Vec<usize> {
    match (family, scale) {
        (Family::Comb, Scale::Quick) => vec![2, 4],
        (Family::Comb, Scale::Full) => vec![2, 4, 6],
        (_, Scale::Quick) => vec![3, 5],
        (_, Scale::Full) => vec![3, 5, 10],
    }
}

fn run_point(
    w: &Workload,
    algo: Algorithm,
    timeout: Duration,
    runs: usize,
) -> (cs_core::SearchOutcome, Duration) {
    let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
    time_avg(runs, || {
        evaluate_ctp(
            &w.graph,
            &seeds,
            algo,
            Filters::none().with_timeout(timeout),
            QueueOrder::SmallestFirst,
        )
    })
}

/// Figure 10: complete baselines (BFT, BFT-M, BFT-AM, GAM) on a
/// synthetic family. Columns: family, series (m or nA), sL, algorithm,
/// time (ms), results, timed-out flag.
pub fn fig10(family: Family, scale: Scale) -> Report {
    let mut rep = Report::new(
        &format!("Figure 10 ({family:?}): complete CTP baselines"),
        &[
            "family",
            "series",
            "sL",
            "algorithm",
            "time_ms",
            "results",
            "timeout",
        ],
    );
    let algos = [
        Algorithm::Bft,
        Algorithm::BftM,
        Algorithm::BftAm,
        Algorithm::Gam,
    ];
    for &series in &family_series(family, scale) {
        for &sl in &scale.sl_range() {
            let w = family_workload(family, series, sl);
            for algo in algos {
                let (out, d) = run_point(&w, algo, scale.timeout(), scale.runs());
                rep.row(&[
                    &format!("{family:?}"),
                    &series,
                    &sl,
                    &algo,
                    &ms(d),
                    &out.results.len(),
                    &out.stats.timed_out,
                ]);
            }
        }
    }
    rep
}

/// Figure 11: GAM variants (GAM, ESP, MoESP, LESP, MoLESP) — runtime
/// and number of provenances.
pub fn fig11(family: Family, scale: Scale) -> Report {
    let mut rep = Report::new(
        &format!("Figure 11 ({family:?}): GAM variants"),
        &[
            "family",
            "series",
            "sL",
            "algorithm",
            "time_ms",
            "provenances",
            "results",
            "timeout",
        ],
    );
    for &series in &family_series(family, scale) {
        for &sl in &scale.sl_range() {
            let w = family_workload(family, series, sl);
            for algo in Algorithm::GAM_FAMILY {
                let (out, d) = run_point(&w, algo, scale.timeout(), scale.runs());
                rep.row(&[
                    &format!("{family:?}"),
                    &series,
                    &sl,
                    &algo,
                    &ms(d),
                    &out.stats.provenances,
                    &out.results.len(),
                    &out.stats.timed_out,
                ]);
            }
        }
    }
    rep
}

/// Figure 12: MoLESP and GAM vs the QGSTP-class baseline (DPBF) on a
/// scale-free knowledge graph, grouped by the number of seed sets m,
/// with LIMIT 1 (first result) to align with the single-result GSTP
/// contract.
pub fn fig12(scale: Scale) -> Report {
    let params = match scale {
        Scale::Quick => ScaleFreeParams {
            nodes: 2_000,
            edges_per_node: 3,
            labels: 20,
            types: 10,
            seed: 7,
        },
        Scale::Full => ScaleFreeParams {
            nodes: 100_000,
            edges_per_node: 3,
            labels: 50,
            types: 20,
            seed: 7,
        },
    };
    let queries_per_m = match scale {
        Scale::Quick => 5,
        Scale::Full => 20,
    };
    let g = pinned_graph(&format!("fig12-{scale:?}"), &format!("{params:?}"), || {
        scale_free(&params)
    });
    let mut rep = Report::new(
        "Figure 12: MoLESP & GAM vs DPBF (QGSTP-class) on a scale-free graph",
        &["m", "system", "avg_time_ms", "solved", "timeouts"],
    );
    let mut rng = StdRng::seed_from_u64(99);
    for m in 2..=6usize {
        // Sample CTP workloads (seeds within a bounded ball so results
        // exist, like keyword-query workloads).
        let mut workloads = Vec::new();
        while workloads.len() < queries_per_m {
            if let Some(w) = scale_free::sample(&g, m, 3, &mut rng) {
                workloads.push(w);
            }
        }
        for (name, runner) in systems_fig12(scale) {
            let mut total = Duration::ZERO;
            let mut solved = 0usize;
            let mut timeouts = 0usize;
            for w in &workloads {
                let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
                let (found, d, to) = runner(&g, &seeds);
                total += d;
                solved += found as usize;
                timeouts += to as usize;
            }
            rep.row(&[
                &m,
                &name,
                &ms(total / workloads.len() as u32),
                &solved,
                &timeouts,
            ]);
        }
    }
    rep
}

type Fig12Runner = Box<dyn Fn(&Graph, &SeedSets) -> (bool, Duration, bool)>;

fn systems_fig12(scale: Scale) -> Vec<(&'static str, Fig12Runner)> {
    let timeout = scale.timeout();
    let mk_search = move |algo: Algorithm| -> Fig12Runner {
        Box::new(move |g, seeds| {
            let (out, d) = crate::report::time_it(|| {
                evaluate_ctp(
                    g,
                    seeds,
                    algo,
                    Filters::none().with_timeout(timeout).with_max_results(1),
                    QueueOrder::SmallestFirst,
                )
            });
            (!out.results.is_empty(), d, out.stats.timed_out)
        })
    };
    vec![
        (
            "DPBF(QGSTP-class)",
            Box::new(|g, seeds| {
                let (t, d) = crate::report::time_it(|| dpbf(g, seeds, false));
                (t.is_some(), d, false)
            }),
        ),
        (
            "GreedyGSTP(heuristic)",
            Box::new(|g, seeds| {
                let (t, d) =
                    crate::report::time_it(|| cs_core::baseline::greedy_gstp(g, seeds, false));
                (t.is_some(), d, false)
            }),
        ),
        ("GAM", mk_search(Algorithm::Gam)),
        ("MoLESP", mk_search(Algorithm::MoLesp)),
    ]
}

/// CDF benchmark parameters per scale.
fn cdf_points(scale: Scale, m: usize) -> Vec<CdfParams> {
    let sizes: Vec<(usize, usize)> = match scale {
        Scale::Quick => vec![(8, 16), (32, 64), (96, 192)],
        Scale::Full => vec![
            (256, 512),
            (1_024, 2_048),
            (8_192, 16_384),
            (32_768, 65_536),
        ],
    };
    let mut out = Vec::new();
    for s_l in [3usize, 6] {
        for &(n_t, n_l) in &sizes {
            out.push(CdfParams {
                m,
                n_t,
                n_l,
                s_l,
                seed: 0xCDF,
            });
        }
    }
    out
}

/// The EQL query of the CDF benchmark (§5.3).
pub fn cdf_query(m: usize, uni: bool, timeout_ms: u64) -> String {
    let uni_kw = if uni { "UNI" } else { "" };
    if m == 2 {
        format!(
            r#"SELECT v, tl, l WHERE {{
                 (x, "c", tl)
                 (v, "g", bl)
                 CONNECT(bl, tl -> l) {uni_kw} TIMEOUT {timeout_ms}
               }}"#
        )
    } else {
        format!(
            r#"SELECT v, tl, l WHERE {{
                 (x, "c", tl)
                 (v, "g", bl1)
                 (v, "h", bl2)
                 CONNECT(tl, bl1, bl2 -> l) {uni_kw} TIMEOUT {timeout_ms}
               }}"#
        )
    }
}

/// Figures 13/14: extended-query evaluation on CDF graphs, comparing
/// the EQL+MoLESP pipeline against the path-semantics baselines.
pub fn fig13_14(m: usize, scale: Scale) -> Report {
    assert!(m == 2 || m == 3);
    let fig = if m == 2 { 13 } else { 14 };
    let mut rep = Report::new(
        &format!("Figure {fig}: CDF benchmark, m={m}"),
        &["edges", "SL", "system", "time_ms", "answers", "complete"],
    );
    let timeout = scale.timeout();
    for p in cdf_points(scale, m) {
        let built = cdf(&p);
        let g = &built.graph;
        let edges = g.edge_count();

        // --- EQL + MoLESP (bidirectional, returns trees).
        for (name, uni) in [
            ("MoLESP(any,return)", false),
            ("UNI-MoLESP(any,return)", true),
        ] {
            let q = cdf_query(m, uni, timeout.as_millis() as u64);
            // One session per graph scale: repeated runs (and the UNI
            // twin, whose BGP shape is identical) reuse cached plans —
            // the Fig. 13 plan-cache amortisation.
            let session = Session::new(g);
            let (res, d) = time_avg(scale.runs(), || session.run(&q).unwrap());
            let complete = res.stats.ctp_stats.iter().all(|(_, s, _)| !s.timed_out);
            rep.row(&[&edges, &p.s_l, &name, &ms(d), &res.rows(), &complete]);
        }

        // --- Path baselines operate between the BGP-bound leaves.
        let (tops, bottoms) = cdf_leaf_sets(g);
        let max_len = p.s_l + 2;

        // Virtuoso-like: check-only reachability, unidirectional. One
        // bounded BFS per source, collecting which targets are
        // reachable — the shared-closure evaluation a property-path
        // engine performs, not a per-pair probe.
        for (name, labels) in [
            ("Virtuoso(labelled,check)", Some(vec!["link".to_string()])),
            ("Virtuoso(any,check)", None),
        ] {
            let mut opts = PathOptions::directed(max_len);
            opts.labels = labels;
            let bottom_set: std::collections::HashSet<NodeId> = bottoms.iter().copied().collect();
            let (pairs, d) = time_avg(scale.runs(), || {
                let mut reachable_pairs = 0usize;
                for &t in &tops {
                    reachable_pairs +=
                        cs_core::baseline::reachable_targets(g, t, &bottom_set, &opts);
                }
                reachable_pairs
            });
            rep.row(&[&edges, &p.s_l, &name, &ms(d), &pairs, &true]);
        }

        // JEDI-like (labelled, returns paths) and Postgres-like (any
        // label, returns paths): semi-naive path tables, directed.
        for (name, labels) in [
            ("JEDI(labelled,return)", Some(vec!["link".to_string()])),
            ("Postgres(any,return)", None),
        ] {
            let mut opts = PathOptions::directed(max_len);
            opts.labels = labels;
            opts.max_paths = 2_000_000;
            // For m=3 these systems return raw paths that would still
            // need stitching (the separate Stitching row below measures
            // that); reported answers are the path count either way.
            let (count, d) = time_avg(scale.runs(), || {
                path_table(g, &tops, &bottoms, &opts).paths.len()
            });
            rep.row(&[&edges, &p.s_l, &name, &ms(d), &count, &true]);
        }

        // Neo4j-like: undirected, any label, returns paths — expected
        // to blow up; capped.
        {
            let mut opts = PathOptions::undirected(max_len);
            opts.max_paths = 200_000;
            let (count, d) = time_avg(scale.runs(), || {
                path_table(g, &tops, &bottoms, &opts).paths.len()
            });
            let complete = count < 200_000;
            rep.row(&[
                &edges,
                &p.s_l,
                &"Neo4j(any,return)",
                &ms(d),
                &count,
                &complete,
            ]);
        }

        // m=3 stitching: join per-root path triples (§2's path
        // stitching; Fig 14 baselines).
        if m == 3 {
            let seeds = built.workload();
            let seed_sets = SeedSets::from_sets(seeds.seeds.clone()).unwrap();
            let mut opts = PathOptions::undirected(max_len);
            opts.max_paths = 50_000;
            let (out, d) = time_avg(scale.runs(), || stitch(g, &seed_sets, &opts));
            rep.row(&[
                &edges,
                &p.s_l,
                &"Stitching(3-way join)",
                &ms(d),
                &(out.raw_combinations as usize),
                &(out.raw_combinations < 50_000),
            ]);
        }
    }
    rep
}

/// The c-target top leaves and g-target bottom leaves of a CDF graph
/// (what the benchmark BGPs bind).
fn cdf_leaf_sets(g: &Graph) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut tops = Vec::new();
    let mut bottoms = Vec::new();
    if let Some(c) = g.label_id("c") {
        for &e in g.edges_with_label(c) {
            tops.push(g.edge(e).dst);
        }
    }
    if let Some(gl) = g.label_id("g") {
        for &e in g.edges_with_label(gl) {
            bottoms.push(g.edge(e).dst);
        }
    }
    (tops, bottoms)
}

/// Table 1: the J1/J2/J3 query workload on the YAGO-like graph,
/// stressing multi-CTP queries, very large seed sets, and `N` seed
/// sets (§4.9 / §5.5.2). Also contrasts the Single vs Balanced queue
/// policies to show the §4.9 optimisation.
pub fn table1(scale: Scale) -> Report {
    use cs_graph::generate::{yago_like, YagoLikeParams};
    let params = match scale {
        Scale::Quick => YagoLikeParams {
            persons: 2_000,
            organisations: 100,
            places: 30,
            works: 300,
            seed: 0x9A90,
        },
        Scale::Full => YagoLikeParams::default(),
    };
    let g = pinned_graph(&format!("table1-{scale:?}"), &format!("{params:?}"), || {
        yago_like(&params)
    });
    let timeout = scale.timeout().as_millis() as u64;
    let mut rep = Report::new(
        "Table 1: J1-J3 on the YAGO-like graph",
        &["query", "system", "time_ms", "rows"],
    );

    // J1: 3 BGPs, 2 CTPs.
    let j1 = format!(
        r#"SELECT x, w1, w2 WHERE {{
             (x : type = "person", "worksFor", o)
             (o, "locatedIn", p)
             (y : type = "person", "bornIn", p)
             CONNECT(x, y -> w1) MAX 3 LIMIT 200 TIMEOUT {timeout}
             CONNECT(o, "place0" -> w2) MAX 3 LIMIT 200 TIMEOUT {timeout}
           }}"#
    );
    // J2: 2 BGPs, 1 CTP with one very large seed set (all persons).
    let j2 = format!(
        r#"SELECT x, w WHERE {{
             (x : type = "person", "bornIn", y)
             CONNECT(x, "org0" -> w) MAX 2 LIMIT 500 TIMEOUT {timeout}
           }}"#
    );
    // J3: a single CTP with an N seed set.
    let j3 = format!(
        r#"SELECT w WHERE {{
             CONNECT("person0", anything -> w) MAX 2 LIMIT 500 TIMEOUT {timeout}
           }}"#
    );

    let session = Session::new(&g);
    for (name, q) in [("J1", &j1), ("J2", &j2), ("J3", &j3)] {
        let (res, d) = time_avg(scale.runs(), || session.run(q).unwrap());
        rep.row(&[&name, &"EQL+MoLESP(balanced)", &ms(d), &res.rows()]);
    }

    // §4.9 ablation on J2's CTP: Single vs Balanced queue policy.
    let persons = g
        .label_id("person")
        .map(|t| g.nodes_with_type(t).to_vec())
        .unwrap_or_default();
    let org0 = g.node_by_label("org0").unwrap();
    let seeds = SeedSets::from_sets(vec![persons, vec![org0]]).unwrap();
    for (name, policy) in [
        ("J2-CTP single-queue", QueuePolicy::Single),
        ("J2-CTP balanced-queues", QueuePolicy::Balanced),
    ] {
        let (out, d) = time_avg(scale.runs(), || {
            evaluate_ctp_with_policy(
                &g,
                &seeds,
                Algorithm::MoLesp,
                Filters::none()
                    .with_max_edges(2)
                    .with_max_results(500)
                    .with_timeout(Duration::from_millis(timeout)),
                QueueOrder::SmallestFirst,
                policy,
            )
        });
        rep.row(&[&name, &"MoLESP", &ms(d), &out.results.len()]);
    }
    rep
}

/// The snapshot-store ablation printed by `all_figures`: for each
/// pinned benchmark dataset, how long a cold start pays to *generate*
/// the graph or to *parse* it from triples text, versus reloading the
/// CSG2 snapshot — and whether the reloaded graph's planner statistics
/// arrive warm (they must; the snapshot carries the sidecar).
pub fn snapshot_report(scale: Scale) -> Report {
    use cs_graph::generate::{yago_like, YagoLikeParams};
    type Dataset = (&'static str, Box<dyn Fn() -> Graph>);
    let mut rep = Report::new(
        "Snapshot store: cold generate / triples parse vs CSG2 load",
        &[
            "dataset",
            "generate_ms",
            "parse_ms",
            "save_ms",
            "load_ms",
            "load_mmap_ms",
            "parse_over_load",
            "stats_warm",
        ],
    );

    let datasets: Vec<Dataset> = match scale {
        Scale::Quick => vec![
            (
                "scale_free(2k nodes)",
                Box::new(|| {
                    scale_free(&ScaleFreeParams {
                        nodes: 2_000,
                        edges_per_node: 3,
                        labels: 20,
                        types: 10,
                        seed: 7,
                    })
                }),
            ),
            (
                "yago_like(2k persons)",
                Box::new(|| {
                    yago_like(&YagoLikeParams {
                        persons: 2_000,
                        organisations: 100,
                        places: 30,
                        works: 300,
                        seed: 0x9A90,
                    })
                }),
            ),
        ],
        Scale::Full => vec![
            (
                "scale_free(100k nodes)",
                Box::new(|| {
                    scale_free(&ScaleFreeParams {
                        nodes: 100_000,
                        edges_per_node: 3,
                        labels: 50,
                        types: 20,
                        seed: 7,
                    })
                }),
            ),
            (
                "yago_like(default)",
                Box::new(|| yago_like(&YagoLikeParams::default())),
            ),
        ],
    };

    let dir = snapshot_dir();
    let _ = std::fs::create_dir_all(&dir);
    for (name, build) in datasets {
        let (g, d_gen) = time_it(build);
        let text = cs_graph::ntriples::write_triples(&g);
        let (_parsed, d_parse) = time_avg(scale.runs(), || {
            cs_graph::ntriples::parse_triples(&text).unwrap()
        });
        let path = dir.join(format!(
            "ablation-{}.csg",
            name.split('(').next().unwrap_or(name)
        ));
        let (_, d_save) = time_it(|| snapshot::save_to(&g, &path).unwrap());
        let (loaded, d_load) = time_avg(scale.runs(), || snapshot::load_from_owned(&path).unwrap());
        // The zero-copy arm: mmap-or-error, so the column can never
        // silently report an owned fallback as a mapped load.
        let (mmap_loaded, d_mmap) = match snapshot::load_from_mmap(&path) {
            Ok(first) => {
                let (more, d) = time_avg(scale.runs(), || snapshot::load_from_mmap(&path).unwrap());
                drop(more);
                (Some(first), Some(d))
            }
            Err(_) => (None, None),
        };
        let warm = loaded.cardinalities_if_computed().is_some()
            && mmap_loaded
                .as_ref()
                .is_none_or(|m| m.cardinalities_if_computed().is_some());
        let d_mmap_str = d_mmap.map_or_else(|| "n/a".to_string(), ms);
        let ratio = format!(
            "{:.1}x",
            d_parse.as_secs_f64() / d_mmap.unwrap_or(d_load).as_secs_f64().max(1e-9)
        );
        rep.row(&[
            &name,
            &ms(d_gen),
            &ms(d_parse),
            &ms(d_save),
            &ms(d_load),
            &d_mmap_str,
            &ratio,
            &warm,
        ]);
    }
    rep
}

/// Namespacing shim: `scale_free::sample` used by [`fig12`].
mod scale_free {
    pub use cs_graph::generate::sample_ctp_seeds;

    pub fn sample(
        g: &cs_graph::Graph,
        m: usize,
        radius: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> Option<cs_graph::generate::Workload> {
        sample_ctp_seeds(g, m, radius, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_workloads_shape() {
        assert_eq!(family_workload(Family::Line, 3, 2).m(), 3);
        assert_eq!(family_workload(Family::Comb, 2, 2).m(), 6);
        assert_eq!(family_workload(Family::Star, 5, 2).m(), 5);
        assert_eq!("comb".parse::<Family>().unwrap(), Family::Comb);
        assert!("nope".parse::<Family>().is_err());
    }

    #[test]
    fn fig10_quick_has_rows() {
        let rep = fig10(Family::Line, Scale::Quick);
        // 2 series × 3 sL × 4 algorithms.
        assert_eq!(rep.len(), 24);
    }

    #[test]
    fn fig11_quick_star() {
        let rep = fig11(Family::Star, Scale::Quick);
        assert_eq!(rep.len(), 2 * 3 * 5);
        assert!(rep.render().contains("MoLESP"));
    }

    #[test]
    fn cdf_query_text_parses() {
        for m in [2, 3] {
            for uni in [false, true] {
                let q = cdf_query(m, uni, 100);
                cs_eql::parse(&q).expect("harness query must parse");
            }
        }
    }
}
