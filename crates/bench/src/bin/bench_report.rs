//! Aggregates the vendored criterion's `CS_BENCH_JSON` sink (one JSON
//! line per measured benchmark) into the repo-level machine-readable
//! bench report — the artifact the CI measured-bench lane records the
//! perf trajectory with.
//!
//! ```text
//! CS_BENCH_JSON=target/bench_raw.jsonl cargo bench
//! bench_report target/bench_raw.jsonl BENCH_5.json [key=value ...]
//! ```
//!
//! Extra `key=value` arguments land as metadata fields in the report
//! (e.g. `commit=$GITHUB_SHA runner=ubuntu-latest`).

use cs_bench::report::{bench_report_json, BenchRecord};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(input), Some(output)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_report <raw.jsonl> <out.json> [key=value ...]");
        return ExitCode::from(2);
    };

    let mut meta: Vec<(&str, String)> = Vec::new();
    for extra in &args[2..] {
        let Some((k, v)) = extra.split_once('=') else {
            eprintln!("error: metadata argument {extra:?} is not key=value");
            return ExitCode::from(2);
        };
        meta.push((k, v.to_string()));
    }

    let raw = match std::fs::read_to_string(input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in raw.lines().filter(|l| !l.trim().is_empty()) {
        match BenchRecord::from_json_line(line) {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    if records.is_empty() {
        eprintln!("error: {input} contains no parseable bench records");
        return ExitCode::FAILURE;
    }
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} unparseable line(s) in {input}");
    }

    let doc = bench_report_json(&records, &meta);
    if let Err(e) = std::fs::write(output, &doc) {
        eprintln!("error: cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {output}: {} benchmark(s), {} metadata field(s)",
        records.len(),
        meta.len()
    );
    ExitCode::SUCCESS
}
