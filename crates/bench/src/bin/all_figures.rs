//! Runs every figure/table harness at the chosen scale — the one-shot
//! reproduction entry point backing EXPERIMENTS.md.
//!
//! Usage: `all_figures [--full]`

use cs_bench::{fig10, fig11, fig12, fig13_14, scale_from_args, snapshot_report, table1, Family};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    for f in [Family::Line, Family::Comb, Family::Star] {
        fig10(f, scale).print();
        fig11(f, scale).print();
    }
    fig12(scale).print();
    fig13_14(2, scale).print();
    fig13_14(3, scale).print();
    table1(scale).print();
    // The snapshot-store ablation: what the disk-backed store saves a
    // cold process start (generate/parse vs CSG2 load, stats warm).
    snapshot_report(scale).print();
}
