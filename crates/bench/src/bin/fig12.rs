//! Regenerates Figure 12: MoLESP and GAM vs the QGSTP-class baseline
//! (DPBF) on a scale-free knowledge graph, grouped by seed-set count m.
//!
//! Usage: `fig12 [--full]`

use cs_bench::{fig12, scale_from_args};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    fig12(scale_from_args(&args)).print();
    println!("expected shape (paper 5.4.3): GAM competitive for small m but degrades as m grows; MoLESP stays fast across all m and beats the single-result GSTP solver per result.");
}
