//! Regenerates Figure 13: extended-query evaluation on CDF graphs with
//! m = 2, against the path-semantics baselines.
//!
//! Usage: `fig13 [--full]`

use cs_bench::{fig13_14, scale_from_args};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    fig13_14(2, scale_from_args(&args)).print();
    println!("expected shape (paper 5.5.1): check-only systems fastest; UNI-MoLESP within a small factor; undirected any-path enumeration (Neo4j-like) blows up; MoLESP is the only feasible bidirectional system and scales linearly.");
}
