//! Regression gate between two machine-readable bench reports
//! (`BENCH_N.json`, schema `cs-bench/1`).
//!
//! ```text
//! bench_compare <new.json> <baseline.json>
//! ```
//!
//! Only the *stable* benches are gated, each family at a tolerance
//! informed by its measured run-to-run variance:
//!
//! * pure CPU kernels (`sorted_union/*`, `history_insert_lookup/*`)
//!   gate at 1.30× — their spread is a few percent;
//! * the `eql_*` end-to-end figures gate at 1.60× — four back-to-back
//!   runs on the build container put their worst spread at 1.16×, and
//!   the wider bound absorbs shared-runner noise on top of that.
//!
//! The remaining end-to-end benches (partitioned search, bench-serve
//! latencies) are reported for the trajectory but never gated: their
//! runtime depends on thread scheduling and socket timing, so any
//! tolerance tight enough to matter would make the lane flaky.
//!
//! The parallel-speedup assertion (`chain8_molesp/par2` must not trail
//! `seq` by more than 25%) only runs when the host has 2+ cores — on a
//! single core the partitioned engine pays its coordination overhead
//! with no parallelism to show for it, and ~1.5× slower than
//! sequential is the expected, uninteresting outcome.

use cs_bench::report::BenchRecord;
use std::collections::HashMap;
use std::process::ExitCode;

/// Prefixes of benches stable enough to gate hard, with the maximum
/// tolerated mean-time ratio (new / baseline) for each family.
const STABLE_PREFIXES: &[(&str, f64)] = &[
    ("sorted_union/", 1.30),
    ("history_insert_lookup/", 1.30),
    ("eql_", 1.60),
];

/// Maximum tolerated `par2 / seq` ratio on multicore hosts.
const PAR_TOLERANCE: f64 = 1.25;

fn parse_report(text: &str) -> HashMap<String, u64> {
    text.lines()
        .filter_map(BenchRecord::from_json_line)
        .map(|r| (r.name, r.mean_ns))
        .collect()
}

/// Compares the stable microbenches of `new` against `baseline`.
/// Returns human-readable failure descriptions (empty = gate green).
fn gate_stable(new: &HashMap<String, u64>, baseline: &HashMap<String, u64>) -> Vec<String> {
    let mut failures = Vec::new();
    let mut gated = 0usize;
    for (name, &base_ns) in baseline {
        let Some(&(_, tolerance)) = STABLE_PREFIXES.iter().find(|(p, _)| name.starts_with(p))
        else {
            continue;
        };
        gated += 1;
        match new.get(name) {
            None => failures.push(format!(
                "{name}: present in baseline but missing from new report"
            )),
            Some(&new_ns) => {
                let ratio = new_ns as f64 / (base_ns as f64).max(1.0);
                let verdict = if ratio > tolerance { "FAIL" } else { "ok" };
                println!("  {name}: {base_ns} ns -> {new_ns} ns ({ratio:.2}x) {verdict}");
                if ratio > tolerance {
                    failures.push(format!(
                        "{name}: {new_ns} ns vs baseline {base_ns} ns ({ratio:.2}x > {tolerance:.2}x)"
                    ));
                }
            }
        }
    }
    if gated == 0 {
        failures.push("baseline contains no stable microbenches to gate".to_string());
    }
    failures
}

/// Checks the parallel-speedup assertion on `new`, or explains why it
/// was skipped. `cores` is the host's available parallelism.
fn gate_parallel(new: &HashMap<String, u64>, cores: usize) -> Vec<String> {
    if cores < 2 {
        println!("  parallel-speedup assertions skipped: {cores} core(s) available");
        return Vec::new();
    }
    let (Some(&seq), Some(&par2)) = (new.get("chain8_molesp/seq"), new.get("chain8_molesp/par2"))
    else {
        return vec!["chain8_molesp/{seq,par2} missing from new report on a multicore host".into()];
    };
    let ratio = par2 as f64 / (seq as f64).max(1.0);
    println!("  chain8_molesp par2/seq: {ratio:.2}x (limit {PAR_TOLERANCE:.2}x, {cores} cores)");
    if ratio > PAR_TOLERANCE {
        vec![format!(
            "chain8_molesp/par2 trails seq by {ratio:.2}x on a {cores}-core host (limit {PAR_TOLERANCE:.2}x)"
        )]
    } else {
        Vec::new()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(new_path), Some(base_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_compare <new.json> <baseline.json>");
        return ExitCode::from(2);
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => {
            let report = parse_report(&s);
            if report.is_empty() {
                eprintln!("error: {path} contains no parseable bench records");
                None
            } else {
                Some(report)
            }
        }
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            None
        }
    };
    let (Some(new), Some(baseline)) = (read(new_path), read(base_path)) else {
        return ExitCode::FAILURE;
    };

    println!("bench gate: {new_path} vs baseline {base_path}");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut failures = gate_stable(&new, &baseline);
    failures.extend(gate_parallel(&new, cores));

    if failures.is_empty() {
        println!("bench gate green ({} benches in new report)", new.len());
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("regression: {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, u64)]) -> HashMap<String, u64> {
        entries.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn within_tolerance_passes() {
        let base = report(&[("sorted_union/8", 100), ("history_insert_lookup/8", 200)]);
        let new = report(&[("sorted_union/8", 125), ("history_insert_lookup/8", 190)]);
        assert!(gate_stable(&new, &base).is_empty());
    }

    #[test]
    fn regression_fails() {
        let base = report(&[("sorted_union/64", 100)]);
        let new = report(&[("sorted_union/64", 140)]);
        let failures = gate_stable(&new, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("sorted_union/64"));
    }

    #[test]
    fn unstable_benches_are_not_gated() {
        let base = report(&[("sorted_union/8", 100), ("random64_molesp_max5/seq", 100)]);
        let new = report(&[("sorted_union/8", 100), ("random64_molesp_max5/seq", 900)]);
        assert!(gate_stable(&new, &base).is_empty());
    }

    #[test]
    fn eql_figures_gate_at_their_own_tolerance() {
        // 1.50x passes the 1.60x eql tier but would fail the 1.30x
        // microbench tier — the per-family tolerance must apply.
        let base = report(&[("eql_cdf_m2_full_pipeline", 100)]);
        let ok = report(&[("eql_cdf_m2_full_pipeline", 150)]);
        assert!(gate_stable(&ok, &base).is_empty());
        let slow = report(&[("eql_cdf_m2_full_pipeline", 170)]);
        let failures = gate_stable(&slow, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("1.60x"), "{}", failures[0]);
    }

    #[test]
    fn bench_serve_latencies_are_reported_not_gated() {
        let base = report(&[("sorted_union/8", 100), ("bench_serve/p50", 100)]);
        let new = report(&[("sorted_union/8", 100), ("bench_serve/p50", 900)]);
        assert!(gate_stable(&new, &base).is_empty());
    }

    #[test]
    fn missing_stable_bench_fails() {
        let base = report(&[("sorted_union/8", 100)]);
        let new = report(&[("history_insert_lookup/8", 90)]);
        assert_eq!(gate_stable(&new, &base).len(), 1);
    }

    #[test]
    fn empty_gate_set_fails() {
        let base = report(&[("something_else", 1)]);
        assert!(!gate_stable(&base.clone(), &base).is_empty());
    }

    #[test]
    fn parallel_gate_skips_on_one_core() {
        let new = report(&[("chain8_molesp/seq", 100), ("chain8_molesp/par2", 1000)]);
        assert!(gate_parallel(&new, 1).is_empty());
    }

    #[test]
    fn parallel_gate_enforces_on_multicore() {
        let new = report(&[("chain8_molesp/seq", 100), ("chain8_molesp/par2", 150)]);
        assert_eq!(gate_parallel(&new, 4).len(), 1);
        let ok = report(&[("chain8_molesp/seq", 100), ("chain8_molesp/par2", 110)]);
        assert!(gate_parallel(&ok, 4).is_empty());
    }

    #[test]
    fn parses_committed_report_format() {
        let doc = r#"{
  "schema": "cs-bench/1",
  "benchmarks": [
    {"name":"sorted_union/8","mean_ns":66,"iters":600000},
    {"name":"history_insert_lookup/8","mean_ns":92,"iters":487804}
  ]
}"#;
        let parsed = parse_report(doc);
        assert_eq!(parsed.get("sorted_union/8"), Some(&66));
        assert_eq!(parsed.len(), 2);
    }
}
