//! Regenerates Figure 10: complete CTP evaluation baselines (BFT,
//! BFT-M, BFT-AM, GAM) on Line / Comb / Star graphs.
//!
//! Usage: `fig10 [line|comb|star|all] [--full]`

use cs_bench::{fig10, scale_from_args, Family};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let families: Vec<Family> = match args.iter().find(|a| !a.starts_with("--")) {
        Some(f) if f != "all" => vec![f.parse().expect("line|comb|star|all")],
        _ => vec![Family::Line, Family::Comb, Family::Star],
    };
    for f in families {
        fig10(f, scale).print();
    }
    println!("expected shape (paper 5.4.1): BFT-M worse than BFT; BFT-AM worse still; GAM fastest and never times out.");
}
