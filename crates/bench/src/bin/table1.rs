//! Regenerates Table 1: the J1/J2/J3 query workload (multi-CTP query,
//! very large seed set, N seed set) on the YAGO-like graph, plus the
//! Single-vs-Balanced queue-policy ablation of paper section 4.9.
//!
//! Usage: `table1 [--full]`

use cs_bench::{scale_from_args, table1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    table1(scale_from_args(&args)).print();
    println!("expected shape (paper 5.5.2): J2/J3 are only tractable with the section-4.9 handling (balanced queues / N-set simplification).");
}
