//! Ablation study of the design choices called out in DESIGN.md §5:
//!
//! 1. each MoLESP ingredient in isolation (ESP / Mo / LESP) — what it
//!    costs and what it loses (provenances, completeness);
//! 2. exploration order (smallest-first vs FIFO vs largest-first vs
//!    score-guided) — completeness is order-independent, cost is not;
//! 3. queue policy (single vs balanced) on a skewed-seed workload.
//!
//! Usage: `ablation [--full]`

use cs_bench::{ms, scale_from_args, time_avg, Report, Scale};
use cs_core::score::{guided_order, Specificity};
use cs_core::{evaluate_ctp_with_policy, Algorithm, Filters, QueueOrder, QueuePolicy, SeedSets};
use cs_graph::generate::{comb, star, yago_like, YagoLikeParams};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let runs = if scale == Scale::Full { 3 } else { 1 };

    // --- 1. Ingredient ablation on Comb (where ESP alone is lossy)
    //        and Star (where LESP's sparing matters).
    let mut rep = Report::new(
        "Ablation 1: MoLESP ingredients",
        &["workload", "algorithm", "time_ms", "provenances", "results"],
    );
    let workloads = [
        ("comb(4,2,3,1)", comb(4, 2, 3, 1)),
        ("star(6,3)", star(6, 3)),
    ];
    for (wname, w) in &workloads {
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        for algo in Algorithm::GAM_FAMILY {
            let (out, d) = time_avg(runs, || {
                evaluate_ctp_with_policy(
                    &w.graph,
                    &seeds,
                    algo,
                    Filters::none(),
                    QueueOrder::SmallestFirst,
                    QueuePolicy::Single,
                )
            });
            rep.row(&[
                wname,
                &algo,
                &ms(d),
                &out.stats.provenances,
                &out.results.len(),
            ]);
        }
    }
    rep.print();

    // --- 2. Exploration-order ablation (MoLESP on Star).
    let mut rep = Report::new(
        "Ablation 2: exploration order (MoLESP, star(6,3))",
        &["order", "time_ms", "provenances", "results"],
    );
    let w = star(6, 3);
    let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
    let orders: Vec<(&str, QueueOrder)> = vec![
        ("smallest-first", QueueOrder::SmallestFirst),
        ("fifo", QueueOrder::Fifo),
        ("largest-first", QueueOrder::LargestFirst),
        (
            "score-guided(specificity)",
            guided_order(Arc::new(Specificity)),
        ),
    ];
    for (name, order) in orders {
        let (out, d) = time_avg(runs, || {
            evaluate_ctp_with_policy(
                &w.graph,
                &seeds,
                Algorithm::MoLesp,
                Filters::none(),
                order.clone(),
                QueuePolicy::Single,
            )
        });
        rep.row(&[&name, &ms(d), &out.stats.provenances, &out.results.len()]);
    }
    rep.print();

    // --- 3. Queue policy on a skewed workload (all persons vs one
    //        organisation).
    let mut rep = Report::new(
        "Ablation 3: queue policy on skewed seed sets",
        &["policy", "time_ms", "provenances", "results"],
    );
    let g = yago_like(&YagoLikeParams {
        persons: if scale == Scale::Full { 20_000 } else { 3_000 },
        organisations: 100,
        places: 30,
        works: 200,
        seed: 12,
    });
    let persons = g.nodes_with_type(g.label_id("person").unwrap()).to_vec();
    let org = g.node_by_label("org0").unwrap();
    let seeds = SeedSets::from_sets(vec![persons, vec![org]]).unwrap();
    for (name, policy) in [
        ("single", QueuePolicy::Single),
        ("balanced", QueuePolicy::Balanced),
    ] {
        let (out, d) = time_avg(runs, || {
            evaluate_ctp_with_policy(
                &g,
                &seeds,
                Algorithm::MoLesp,
                Filters::none().with_max_edges(2).with_max_results(200),
                QueueOrder::SmallestFirst,
                policy,
            )
        });
        rep.row(&[&name, &ms(d), &out.stats.provenances, &out.results.len()]);
    }
    rep.print();

    println!("reading: Mo adds provenances over ESP but restores results on Comb; LESP's sparing is near-free; order changes cost, never the result set; the balanced policy reaches the first results with fewer provenances on skewed seeds.");
}
