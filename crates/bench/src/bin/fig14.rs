//! Regenerates Figure 14: extended-query evaluation on CDF graphs with
//! m = 3 (Y-shaped connections), including path stitching.
//!
//! Usage: `fig14 [--full]`

use cs_bench::{fig13_14, scale_from_args};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    fig13_14(3, scale_from_args(&args)).print();
    println!("expected shape (paper 5.5.1): path stitching produces far more raw combinations than there are tree answers (duplicates + non-trees); UNI-MoLESP outperforms path-returning systems while returning actual connecting trees.");
}
