//! Regenerates Figure 11: GAM variants (GAM, ESP, MoESP, LESP,
//! MoLESP) — runtime and number of provenances on Line / Comb / Star.
//!
//! Usage: `fig11 [line|comb|star|all] [--full]`

use cs_bench::{fig11, scale_from_args, Family};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let families: Vec<Family> = match args.iter().find(|a| !a.starts_with("--")) {
        Some(f) if f != "all" => vec![f.parse().expect("line|comb|star|all")],
        _ => vec![Family::Line, Family::Comb, Family::Star],
    };
    for f in families {
        fig11(f, scale).print();
    }
    println!("expected shape (paper 5.4.2): ESP/LESP find 0 results on Line/Comb (pruned); MoESP = MoLESP provenances there; MoLESP faster than GAM; runtimes track provenance counts.");
}
