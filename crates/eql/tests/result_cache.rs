//! Cross-query result-cache integration tests: a cached session must
//! be *observably identical* to an uncached one — same rows, same
//! canonical tree order, same TOP-k tie-breaks — whether a query is
//! served cold, from an exact-signature replay, or by filtering a
//! dominating (subsumption) entry. Incomplete algorithm configurations
//! (e.g. MoESP at m = 3) may only be served as exact-signature hits.
//! Magic-set seed narrowing must not change SELECT semantics either.

use cs_eql::{EqlError, ExecOptions, QueryResult, ResultCacheMode, Session};
use cs_graph::generate::gnp;
use cs_graph::{figure1, Graph, GraphBuilder};
use proptest::prelude::*;

/// Options with the result cache disabled — the reference executions.
fn off() -> ExecOptions {
    ExecOptions {
        result_cache: ResultCacheMode::Off,
        ..ExecOptions::default()
    }
}

/// Order-sensitive observable outcome: the exact rendered text (row
/// order and tree indices included) or the error message. Cached
/// replays must reproduce this byte for byte, not merely as a set.
fn observed(g: &Graph, r: &Result<QueryResult, EqlError>) -> Result<String, String> {
    match r {
        Ok(q) => Ok(q.render(g)),
        Err(e) => Err(e.to_string()),
    }
}

/// Algorithms in a complete configuration at m = 2 (all of them).
const M2_ALGOS: [&str; 8] = [
    "bft", "bftm", "bftam", "gam", "esp", "moesp", "lesp", "molesp",
];
/// Algorithms in a complete configuration at m = 3.
const M3_ALGOS: [&str; 5] = ["bft", "bftm", "bftam", "gam", "molesp"];

fn m2_query(a: usize, k: usize, algo: &str) -> String {
    format!(r#"SELECT w WHERE {{ CONNECT("n0", "n{a}" -> w) MAX {k} ALGORITHM {algo} }}"#)
}

fn m3_query(a: usize, b: usize, k: usize, algo: &str) -> String {
    format!(r#"SELECT w WHERE {{ CONNECT("n0", "n{a}", "n{b}" -> w) MAX {k} ALGORITHM {algo} }}"#)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exact-signature replay ≡ fresh search, across every algorithm
    /// at m = 2, on random graphs: cold run, warm (replayed) run, and
    /// an uncached session render identically, and the warm run is one
    /// cache hit with zero misses.
    #[test]
    fn m2_replay_equals_fresh_search(seed in any::<u64>(), a in 1usize..9, k in 1usize..4) {
        let g = gnp(9, 0.2, seed);
        for algo in M2_ALGOS {
            let q = m2_query(a, k, algo);
            let reference = Session::with_options(&g, off()).run(&q);
            let session = Session::new(&g);
            let cold = session.run(&q);
            let warm = session.run(&q);
            prop_assert_eq!(observed(&g, &reference), observed(&g, &cold), "{} cold", algo);
            prop_assert_eq!(observed(&g, &cold), observed(&g, &warm), "{} warm", algo);
            if let Ok(w) = &warm {
                prop_assert_eq!(w.stats.result_cache_hits, 1, "{} must replay", algo);
                prop_assert_eq!(w.stats.result_cache_misses, 0);
            }
        }
    }

    /// The same replay property at m = 3 for the complete-config
    /// algorithms (and, as an exact-signature hit, even for the
    /// incomplete MoESP — exact hits replay whatever the configuration
    /// computed, complete or not).
    #[test]
    fn m3_replay_equals_fresh_search(seed in any::<u64>(), a in 1usize..5, b in 5usize..9, k in 2usize..5) {
        let g = gnp(9, 0.25, seed);
        for algo in M3_ALGOS.iter().chain(&["moesp"]) {
            let q = m3_query(a, b, k, algo);
            let reference = Session::with_options(&g, off()).run(&q);
            let session = Session::new(&g);
            let cold = session.run(&q);
            let warm = session.run(&q);
            prop_assert_eq!(observed(&g, &reference), observed(&g, &cold), "{} cold", algo);
            prop_assert_eq!(observed(&g, &cold), observed(&g, &warm), "{} warm", algo);
            if let Ok(w) = &warm {
                prop_assert_eq!(w.stats.result_cache_hits, 1, "{} must replay", algo);
            }
        }
    }

    /// Subsumption ≡ direct search: a probe whose MAX bound (or LABEL
    /// set) is dominated by a cached complete entry is answered by
    /// filtering that entry — and must render exactly like an uncached
    /// direct search, canonical order included.
    #[test]
    fn subsumed_probe_equals_direct_search(seed in any::<u64>(), a in 1usize..9, k in 1usize..3) {
        let g = gnp(9, 0.25, seed);
        let wide = m2_query(a, 3, "bft");
        let narrow = m2_query(a, k, "bft");
        let labelled = format!(
            r#"SELECT w WHERE {{ CONNECT("n0", "n{a}" -> w) LABEL "r0", "r1" MAX 3 ALGORITHM bft }}"#
        );

        let session = Session::new(&g);
        let warmup = session.run(&wide);
        prop_assert_eq!(
            observed(&g, &Session::with_options(&g, off()).run(&wide)),
            observed(&g, &warmup)
        );

        let probe = session.run(&narrow);
        prop_assert_eq!(
            observed(&g, &Session::with_options(&g, off()).run(&narrow)),
            observed(&g, &probe),
            "bound-dominated probe"
        );
        if let Ok(p) = &probe {
            prop_assert_eq!(p.stats.result_cache_subsumed, 1, "must be subsumption-served");
            prop_assert_eq!(p.stats.result_cache_misses, 0);
        }

        let by_label = session.run(&labelled);
        prop_assert_eq!(
            observed(&g, &Session::with_options(&g, off()).run(&labelled)),
            observed(&g, &by_label),
            "label-dominated probe"
        );
        if let Ok(p) = &by_label {
            prop_assert_eq!(p.stats.result_cache_subsumed, 1);
        }
    }

    /// TOP-k tie-breaks survive replay: SCORE … TOP k selects from the
    /// replayed canonical order exactly what it selects from a fresh
    /// search, so ties at the k-th slot break identically.
    #[test]
    fn top_k_tiebreaks_replay_identically(seed in any::<u64>(), a in 1usize..9, k in 1usize..4) {
        let g = gnp(9, 0.25, seed);
        let q = format!(
            r#"SELECT w WHERE {{ CONNECT("n0", "n{a}" -> w) MAX 3 SCORE edgecount TOP {k} ALGORITHM gam }}"#
        );
        let reference = Session::with_options(&g, off()).run(&q);
        let session = Session::new(&g);
        let cold = session.run(&q);
        let warm = session.run(&q);
        prop_assert_eq!(observed(&g, &reference), observed(&g, &cold));
        prop_assert_eq!(observed(&g, &cold), observed(&g, &warm));
        if let Ok(w) = &warm {
            prop_assert_eq!(w.stats.result_cache_hits, 1);
        }
    }

    /// An incomplete configuration (MoESP at m = 3 computes only the
    /// 2-provenance-set results) is never subsumption-served: its
    /// entries answer exact-signature repeats only, and a dominated
    /// probe runs a real search — matching the uncached session.
    #[test]
    fn incomplete_config_is_never_subsumption_served(seed in any::<u64>(), a in 1usize..5, b in 5usize..9) {
        let g = gnp(9, 0.25, seed);
        let wide = m3_query(a, b, 4, "moesp");
        let narrow = m3_query(a, b, 3, "moesp");

        let session = Session::new(&g);
        let first = session.run(&wide);
        let probe = session.run(&narrow);
        prop_assert_eq!(
            observed(&g, &Session::with_options(&g, off()).run(&narrow)),
            observed(&g, &probe)
        );
        if let Ok(p) = &probe {
            prop_assert_eq!(p.stats.result_cache_subsumed, 0, "incomplete entry must not subsume");
            prop_assert_eq!(p.stats.result_cache_misses, 1);
        }

        // The exact signature still replays.
        let repeat = session.run(&wide);
        prop_assert_eq!(observed(&g, &first), observed(&g, &repeat));
        if let Ok(r) = &repeat {
            prop_assert_eq!(r.stats.result_cache_hits, 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Magic-set seed narrowing.

/// Order-insensitive row answer, for comparing *different* query texts
/// with equal semantics (join row order may legitimately differ
/// between them). Rows are the query's answer; the `trees` map of a
/// narrowed query may omit CTP results that cannot contribute any join
/// row — `narrowed_trees_are_a_subset` below pins that relation.
fn rows_of(g: &Graph, r: &Result<QueryResult, EqlError>) -> Result<Vec<String>, String> {
    match r {
        Ok(q) => {
            let mut rows: Vec<String> = q.render(g).lines().skip(1).map(str::to_string).collect();
            rows.sort();
            Ok(rows)
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Asserts the narrowed run's per-variable trees are a subset of the
/// unnarrowed run's: narrowing may only drop trees, never invent them.
fn assert_trees_subset(g: &Graph, narrowed: &QueryResult, unnarrowed: &QueryResult) {
    for (var, ts) in &narrowed.trees {
        let full: Vec<String> = unnarrowed.trees[var]
            .iter()
            .map(|t| t.describe(g))
            .collect();
        for t in ts.iter() {
            assert!(
                full.contains(&t.describe(g)),
                "narrowed {var} tree [{}] absent from the unnarrowed run",
                t.describe(g)
            );
        }
    }
}

/// A random graph with node labels `n0..`, a random subset typed `"t"`,
/// and edges over the `r0..r3` vocabulary — gnp plus types, so CTP
/// terms with a `type = "t"` condition select a proper subset.
fn typed_graph(n: usize, typed: &[bool], edges: &[(usize, usize, u8)]) -> Graph {
    let mut b = GraphBuilder::new();
    let nodes: Vec<_> = (0..n)
        .map(|i| {
            if typed[i % typed.len()] {
                b.add_typed_node(&format!("n{i}"), &["t"])
            } else {
                b.add_node(&format!("n{i}"))
            }
        })
        .collect();
    for &(s, d, l) in edges {
        let (s, d) = (s % n, d % n);
        if s != d {
            b.add_edge(nodes[s], &format!("r{}", l % 4), nodes[d]);
        }
    }
    b.freeze()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Magic-set narrowing preserves SELECT semantics. The same query
    /// is executed twice: once narrowable, and once with a
    /// never-binding LIMIT on the shared-variable CTP, which makes
    /// that CTP ineligible for narrowing without changing its answer.
    /// Both must produce identical rows and trees.
    #[test]
    fn narrowing_preserves_select_semantics(
        typed in collection::vec(any::<bool>(), 1..8),
        edges in collection::vec((0usize..8, 0usize..8, 0u8..4), 6..24),
    ) {
        let g = typed_graph(8, &typed, &edges);
        let body = |suffix: &str| format!(
            r#"SELECT x, w1, w2 WHERE {{
                (x, "r0", y)
                CONNECT(x : type = "t", "n0" -> w1) MAX 3
                CONNECT(x, "n1" -> w2) MAX 3{suffix}
            }}"#
        );
        // LIMIT 500 can never bind on an 8-node graph with MAX 3, so
        // the two queries are semantically identical — but only the
        // first is eligible for magic-set narrowing.
        let narrowed = Session::with_options(&g, off()).run(&body(""));
        let unnarrowed = Session::with_options(&g, off()).run(&body(" LIMIT 500"));
        prop_assert_eq!(rows_of(&g, &narrowed), rows_of(&g, &unnarrowed));
        if let (Ok(n), Ok(u)) = (&narrowed, &unnarrowed) {
            assert_trees_subset(&g, n, u);
        }
    }
}

#[test]
fn narrowing_fires_and_is_recorded_on_figure1() {
    let g = figure1();
    let q = r#"SELECT x, w1, w2 WHERE {
        (x, "citizenOf", y)
        CONNECT(x : type = "entrepreneur", "France" -> w1) MAX 3
        CONNECT(x, "OrgB" -> w2) MAX 3
    }"#;
    // The BGP binds x to all five citizens; the typed CTP term keeps
    // the four entrepreneurs, so the plain-x CTP narrows 5 → 4.
    let r = Session::with_options(&g, off()).run(q).unwrap();
    assert_eq!(r.stats.seed_narrowings.len(), 1);
    let n = &r.stats.seed_narrowings[0];
    assert_eq!((n.ctp.as_str(), n.var.as_str()), ("w2", "x"));
    assert_eq!((n.from, n.to), (5, 4));

    // Semantics check against the ineligible (LIMIT-guarded) twin.
    let twin = Session::with_options(&g, off())
        .run(&q.replace("-> w2) MAX 3", "-> w2) MAX 3 LIMIT 500"))
        .unwrap();
    assert_eq!(twin.stats.seed_narrowings.len(), 0);
    assert_trees_subset(&g, &r, &twin);
    assert_eq!(
        rows_of(&g, &Ok(r)),
        rows_of(&g, &Ok(twin)),
        "narrowed row answers must equal the unnarrowed twin's"
    );
}

// ---------------------------------------------------------------------------
// Session-level cache behaviour.

#[test]
fn capacity_zero_bypasses_the_cache() {
    let g = figure1();
    let session = Session::with_options(
        &g,
        ExecOptions {
            result_cache_capacity: 0,
            ..ExecOptions::default()
        },
    );
    let q = r#"SELECT w WHERE { CONNECT("Bob", "Carole" -> w) MAX 3 }"#;
    let a = session.run(q).unwrap();
    let b = session.run(q).unwrap();
    assert_eq!(a.render(&g), b.render(&g));
    for r in [&a, &b] {
        assert_eq!(r.stats.result_cache_hits, 0);
        assert_eq!(r.stats.result_cache_misses, 0);
        assert_eq!(r.stats.result_cache_subsumed, 0);
    }
    assert_eq!(session.result_cache_len(), 0);
}

#[test]
fn batch_deduplicates_identical_ctp_jobs() {
    let g = figure1();
    let q = r#"SELECT w WHERE { CONNECT("Bob", "Carole" -> w) MAX 3 }"#;
    let session = Session::new(&g);
    let results = session.execute_batch(&[q, q, q]);
    assert_eq!(results.len(), 3);
    let rendered: Vec<String> = results
        .iter()
        .map(|r| r.as_ref().unwrap().render(&g))
        .collect();
    assert_eq!(rendered[0], rendered[1]);
    assert_eq!(rendered[1], rendered[2]);
    // One real search; the two duplicates replay it.
    assert_eq!(results[0].as_ref().unwrap().stats.result_cache_misses, 1);
    for r in &results[1..] {
        assert_eq!(r.as_ref().unwrap().stats.result_cache_hits, 1);
    }
    assert_eq!(session.result_cache_len(), 1);
    assert_eq!(session.result_cache_hits(), 2);
    assert_eq!(session.result_cache_misses(), 1);
}

#[test]
fn shared_cache_serves_a_sibling_session() {
    let shared = cs_eql::SharedResultCache::new(16);
    let opts = ExecOptions {
        result_cache: ResultCacheMode::Shared(shared.clone()),
        ..ExecOptions::default()
    };
    let g = std::sync::Arc::new(figure1());
    let a = Session::from_shared_with(g.clone(), opts.clone());
    let b = Session::from_shared_with(g.clone(), opts);
    let q = r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) MAX 3 }"#;
    let first = a.run(q).unwrap();
    let second = b.run(q).unwrap();
    assert_eq!(first.render(a.graph()), second.render(b.graph()));
    assert_eq!(second.stats.result_cache_hits, 1);
    assert_eq!(shared.counters().hits, 1);
    assert_eq!(shared.counters().misses, 1);
    assert_eq!(shared.len(), 1);
}
