//! Parallel result-ordering determinism: `threads` / `search_threads`
//! must never change a query's materialised output — row order, tree
//! indices, scores, and especially `SCORE … TOP k` — because
//! materialised CTP results are canonically ordered and the score sort
//! tie-breaks on the canonical edge set.

use cs_eql::{ExecOptions, QueryResult, Session};
use cs_graph::figure1;

fn run(threads: usize, search_threads: usize, q: &str) -> QueryResult {
    let g = figure1();
    let session = Session::with_options(
        &g,
        ExecOptions {
            threads,
            search_threads,
            ..ExecOptions::default()
        },
    );
    session.run(q).expect("query executes")
}

/// The full materialised fingerprint of a result: projected rows plus
/// every CTP's trees (as edge-id vectors) and scores.
fn fingerprint(r: &QueryResult) -> String {
    let mut out = String::new();
    for row in r.table.rows() {
        out.push_str(&format!("{row:?}\n"));
    }
    let mut vars: Vec<&String> = r.trees.keys().collect();
    vars.sort();
    for v in vars {
        out.push_str(&format!(
            "{v}: {:?}\n",
            r.trees[v]
                .iter()
                .map(|t| t.edges.to_vec())
                .collect::<Vec<_>>()
        ));
        if let Some(s) = r.scores.get(v) {
            out.push_str(&format!("{v} scores: {s:?}\n"));
        }
    }
    out
}

const TOPK: &str = r#"SELECT w WHERE {
    CONNECT("Bob", "Alice" -> w) MAX 4 SCORE edgecount TOP 3
}"#;

const MULTI_CTP: &str = r#"SELECT x, w1, w2 WHERE {
    (x : type = "entrepreneur", "citizenOf", "USA")
    CONNECT(x, "France" -> w1) MAX 3
    CONNECT(x, "Elon" -> w2) MAX 3
}"#;

#[test]
fn topk_is_thread_invariant() {
    let reference = fingerprint(&run(1, 1, TOPK));
    for (t, st) in [(4, 1), (1, 4), (2, 2), (0, 0), (1, 0), (0, 3)] {
        let got = fingerprint(&run(t, st, TOPK));
        assert_eq!(
            reference, got,
            "TOP-k output changed under threads={t}, search_threads={st}"
        );
    }
}

#[test]
fn multi_ctp_output_is_thread_invariant() {
    let reference = fingerprint(&run(1, 1, MULTI_CTP));
    for (t, st) in [(4, 1), (1, 4), (2, 2), (0, 0)] {
        let got = fingerprint(&run(t, st, MULTI_CTP));
        assert_eq!(
            reference, got,
            "materialised output changed under threads={t}, search_threads={st}"
        );
    }
}

#[test]
fn batch_execution_is_thread_invariant() {
    let g = figure1();
    let queries = [TOPK, MULTI_CTP];
    let reference: Vec<String> = Session::new(&g)
        .execute_batch(&queries)
        .into_iter()
        .map(|r| fingerprint(&r.expect("batch member executes")))
        .collect();
    for (t, st) in [(4, 1), (2, 2), (0, 0)] {
        let session = Session::with_options(
            &g,
            ExecOptions {
                threads: t,
                search_threads: st,
                ..ExecOptions::default()
            },
        );
        let got: Vec<String> = session
            .execute_batch(&queries)
            .into_iter()
            .map(|r| fingerprint(&r.expect("batch member executes")))
            .collect();
        assert_eq!(
            reference, got,
            "batch output changed under threads={t}, search_threads={st}"
        );
    }
}

#[test]
fn parallel_streaming_matches_materialised_set() {
    let g = figure1();
    let q = r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) MAX 4 }"#;
    let sequential = Session::new(&g);
    let prepared = sequential.prepare(q).unwrap();
    let materialised = sequential.execute(&prepared).unwrap();

    let parallel = Session::with_options(
        &g,
        ExecOptions {
            search_threads: 3,
            ..ExecOptions::default()
        },
    );
    let prepared_par = parallel.prepare(q).unwrap();
    let stream = parallel.execute_streaming(&prepared_par).unwrap();
    let streamed: Vec<Vec<cs_graph::EdgeId>> = stream.map(|t| t.edges.to_vec()).collect();

    let mut a = streamed.clone();
    a.sort();
    let mut b: Vec<Vec<cs_graph::EdgeId>> = materialised.trees["w"]
        .iter()
        .map(|t| t.edges.to_vec())
        .collect();
    b.sort();
    assert_eq!(a, b, "parallel stream lost or invented results");
    // The eager parallel stream yields canonical order directly.
    assert_eq!(a, streamed, "parallel stream is canonically ordered");
}

#[test]
fn parallel_stream_reports_worker_stats() {
    let g = figure1();
    let session = Session::with_options(
        &g,
        ExecOptions {
            search_threads: 2,
            ..ExecOptions::default()
        },
    );
    let prepared = session
        .prepare(r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) MAX 4 }"#)
        .unwrap();
    let mut stream = session.execute_streaming(&prepared).unwrap();
    assert!(stream.next().is_some());
    assert_eq!(stream.stats().workers.len(), 2);
    assert_eq!(
        stream
            .stats()
            .workers
            .iter()
            .map(|w| w.produced)
            .sum::<u64>(),
        stream.stats().provenances
    );
}
