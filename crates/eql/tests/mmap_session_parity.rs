//! End-to-end storage-backing parity: the same EQL queries through
//! [`Session`]s over an in-memory graph, an owned snapshot load, and a
//! zero-copy mmap load must produce identical results, identical
//! chosen plans, and identical search statistics (node/edge work
//! counts — not timings). The planner starts warm on both loaded
//! backings (the snapshot carries the statistics sidecar).

use cs_eql::{QueryResult, Session};
use cs_graph::generate::{scale_free, ScaleFreeParams};
use cs_graph::{snapshot, EdgeId, Graph};

fn dataset() -> Graph {
    scale_free(&ScaleFreeParams {
        nodes: 800,
        edges_per_node: 3,
        labels: 12,
        types: 6,
        seed: 0xC5C5,
    })
}

const QUERIES: &[&str] = &[
    r#"SELECT x, w WHERE { (x, "rel0", y) CONNECT(x, y -> w) MAX 2 LIMIT 5 }"#,
    r#"SELECT x, y WHERE { (x, "rel1", y) (y, "rel0", z) }"#,
    r#"ASK WHERE { (x : type = "type0", "rel2", y) }"#,
];

/// Everything comparable about one run: rendered rows, tree edge sets,
/// plan descriptions, and the deterministic part of the search stats.
fn observe(g: &Graph, r: &QueryResult) -> (Vec<String>, Vec<Vec<EdgeId>>, Vec<String>, String) {
    let rows: Vec<String> = r.render(g).lines().map(str::to_string).collect();
    let trees: Vec<Vec<EdgeId>> = r
        .trees
        .values()
        .flat_map(|ts| ts.iter().map(|t| t.edges.to_vec()))
        .collect();
    let plans: Vec<String> = r.stats.plans.iter().map(|p| format!("{p:?}")).collect();
    let search: String = r
        .stats
        .ctp_stats
        .iter()
        .map(|(var, s, _)| format!("{var}: {s:?}\n"))
        .collect();
    (rows, trees, plans, search)
}

#[test]
fn sessions_agree_across_storage_backings() {
    let g_mem = dataset();
    let mut path = std::env::temp_dir();
    path.push(format!("cs-eql-parity-{}.csg", std::process::id()));
    snapshot::save_to(&g_mem, &path).unwrap();

    let g_owned = snapshot::load_from_owned(&path).unwrap();
    assert!(!g_owned.is_memory_mapped());
    assert!(
        g_owned.cardinalities_if_computed().is_some(),
        "planner must start warm from the sidecar"
    );

    let backings: Vec<(&str, &Graph)> = {
        let mut v = vec![("memory", &g_mem), ("owned", &g_owned)];
        // Zero-copy only exists on little-endian unix; the two-way
        // comparison still runs elsewhere.
        if cfg!(all(unix, target_endian = "little")) {
            v.reserve(1);
        }
        v
    };
    let g_mapped;
    let mut backings = backings;
    #[cfg(all(unix, target_endian = "little"))]
    {
        g_mapped = snapshot::load_from_mmap(&path).unwrap();
        assert!(g_mapped.is_memory_mapped());
        assert!(g_mapped.cardinalities_if_computed().is_some());
        backings.push(("mmap", &g_mapped));
    }
    #[cfg(not(all(unix, target_endian = "little")))]
    {
        g_mapped = ();
        let _ = &g_mapped;
    }

    for q in QUERIES {
        let mut reference: Option<(String, _)> = None;
        for (name, g) in &backings {
            let session = Session::new(g);
            let result = session
                .run(q)
                .unwrap_or_else(|e| panic!("{name}: {q}: {e}"));
            assert_eq!(
                result.stats.plan_cache_misses, 1,
                "{name}: fresh session must plan once"
            );
            let seen = observe(g, &result);
            match &reference {
                None => reference = Some((name.to_string(), seen)),
                Some((ref_name, expected)) => {
                    assert_eq!(
                        expected, &seen,
                        "query {q:?}: {name} diverges from {ref_name}"
                    );
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
}
