//! Integration coverage of the EQL language surface: every construct
//! combination parsed AND executed, error reporting, and cross-checks
//! between per-CTP `ALGORITHM` overrides.

use cs_eql::{parse, EqlError, ExecOptions, Session};
use cs_graph::figure1;

#[test]
fn all_score_functions_run() {
    let g = figure1();
    for sigma in ["edgecount", "specificity", "labelrarity", "edgeweight"] {
        let q = format!(
            r#"SELECT w WHERE {{ CONNECT("Bob", "Alice" -> w) MAX 4 SCORE {sigma} TOP 3 }}"#
        );
        let r = Session::new(&g)
            .run(&q)
            .unwrap_or_else(|e| panic!("{sigma}: {e}"));
        assert!(r.rows() >= 1, "{sigma}");
        assert!(r.scores["w"].len() <= 3);
    }
}

#[test]
fn algorithm_overrides_agree() {
    let g = figure1();
    let mut canon: Vec<Vec<Vec<cs_graph::EdgeId>>> = Vec::new();
    for algo in ["bft", "bftm", "bftam", "gam", "moesp", "molesp"] {
        let q = format!(
            r#"SELECT w WHERE {{ CONNECT("Carole", "Falcon" -> w) MAX 4 ALGORITHM {algo} }}"#
        );
        let r = Session::new(&g).run(&q).unwrap();
        let mut c: Vec<_> = r.trees["w"].iter().map(|t| t.edges.to_vec()).collect();
        c.sort();
        canon.push(c);
    }
    for pair in canon.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
}

#[test]
fn filters_compose() {
    let g = figure1();
    let r = Session::new(&g)
        .run(
            r#"SELECT w WHERE {
            CONNECT("Bob", "Elon" -> w)
                LABEL "citizenOf", "affiliation", "funds", "founded", "investsIn", "parentOf"
                MAX 5 SCORE edgecount TOP 4 LIMIT 10 TIMEOUT 2000
        }"#,
        )
        .unwrap();
    assert!(r.rows() <= 4);
    for t in &r.trees["w"] {
        assert!(t.size() <= 5);
        for &e in t.edges.iter() {
            assert_ne!(g.edge_label(e), "CEO", "CEO label was filtered out");
        }
    }
}

#[test]
fn whitespace_comments_and_case_insensitivity() {
    let g = figure1();
    let r = Session::new(&g)
        .run("select x where {\n  # comment line\n  (x, \"founded\", y)  }")
        .unwrap();
    assert_eq!(r.rows(), 2); // distinct founders: Bob, Carole
}

#[test]
fn error_messages_are_actionable() {
    let g = figure1();
    let cases = [
        ("SELECT WHERE { (x, \"r\", y) }", "WHERE"),
        ("SELECT x WHERE { (x, \"r\") }", "expected"),
        ("SELECT x WHERE { (x, \"r\", y) } trailing", "end of input"),
        ("SELECT w WHERE { CONNECT(\"A\" -> w) }", "at least 2"),
    ];
    for (q, needle) in cases {
        match Session::new(&g).run(q) {
            Err(EqlError::Parse(e)) => {
                assert!(
                    e.message.to_lowercase().contains(&needle.to_lowercase()),
                    "query {q:?}: message {:?} should mention {needle:?}",
                    e.message
                );
            }
            other => panic!("{q:?} should fail to parse, got {other:?}"),
        }
    }
}

#[test]
fn ask_and_select_consistency() {
    let g = figure1();
    let queries = [
        r#"WHERE { CONNECT("Bob", "Doug" -> w) MAX 3 }"#,
        r#"WHERE { (x : type = "politician", "citizenOf", "France") CONNECT(x, "USA" -> w) MAX 4 }"#,
        r#"WHERE { CONNECT("OrgB", "Falcon" -> w) MAX 2 }"#,
    ];
    for body in queries {
        let ask = Session::new(&g).ask(&format!("ASK {body}")).unwrap();
        let select = Session::new(&g).run(&format!("SELECT w {body}")).unwrap();
        assert_eq!(ask, select.rows() > 0, "{body}");
    }
}

#[test]
fn default_algorithm_option_is_used() {
    let g = figure1();
    for algo in [
        cs_core::Algorithm::Gam,
        cs_core::Algorithm::MoLesp,
        cs_core::Algorithm::Bft,
    ] {
        let opts = ExecOptions {
            default_algorithm: algo,
            ..ExecOptions::default()
        };
        let r = Session::with_options(&g, opts)
            .run(r#"SELECT w WHERE { CONNECT("Alice", "Elon" -> w) MAX 3 }"#)
            .unwrap();
        assert!(r.rows() > 0, "{algo}");
    }
}

#[test]
fn multi_bgp_multi_ctp_query() {
    let g = figure1();
    let r = Session::new(&g)
        .run(
            r#"SELECT x, y, w1, w2 WHERE {
            (x, "founded", o1)
            (y, "investsIn", o2)
            CONNECT(x, y -> w1) MAX 3 LIMIT 50
            CONNECT(o1, o2 -> w2) MAX 3 LIMIT 50
        }"#,
        )
        .unwrap();
    // Joins over four shared variables; check schema integrity.
    for col in ["x", "y", "w1", "w2"] {
        assert!(r.table.col(col).is_some(), "missing column {col}");
    }
}

#[test]
fn parse_is_stable_under_reformat() {
    let a = parse(r#"SELECT x,w WHERE{(x,"r",y)CONNECT(x,y->w)MAX 3}"#).unwrap();
    let b = parse(
        r#"SELECT x , w
           WHERE {
             ( x , "r" , y )
             CONNECT( x , y -> w ) MAX 3
           }"#,
    )
    .unwrap();
    assert_eq!(a, b);
}
