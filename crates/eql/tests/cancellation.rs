//! Typed deadline / cancellation behaviour of the session layer: a
//! query over its [`ExecOptions::deadline`] budget fails with
//! [`EqlError::DeadlineExceeded`], a raised [`CancelFlag`] fails it
//! with [`EqlError::Cancelled`], and both stop the search *mid-flight*
//! through the engines' cooperative checks — "well before the untimed
//! runtime", per the acceptance bar. The per-CTP soft `TIMEOUT` clause
//! keeps its partial-result semantics.

use cs_core::CancelFlag;
use cs_eql::{EqlError, ExecOptions, Session};
use cs_graph::generate::random_connected;
use cs_graph::Graph;
use std::time::{Duration, Instant};

/// The `random64_molesp_max5` workload (the ROADMAP's long-search
/// bench case): a dense 64-node random graph, searched under `MAX 5`.
fn long_graph() -> Graph {
    random_connected(64, 192, 42)
}

const LONG_QUERY: &str = r#"SELECT w WHERE { CONNECT("n0", "n63" -> w) MAX 5 }"#;

/// Untimed runtime of the long query, measured once per process so the
/// "well before" assertions are calibrated to this machine.
fn untimed_runtime(g: &Graph) -> Duration {
    let t0 = Instant::now();
    let full = Session::new(g).run(LONG_QUERY).expect("untimed run");
    assert!(full.rows() > 0, "the long query must have results");
    t0.elapsed()
}

#[test]
fn deadline_exceeded_well_before_untimed_runtime() {
    let g = long_graph();
    let untimed = untimed_runtime(&g);

    let s = Session::with_options(
        &g,
        ExecOptions {
            deadline: Some(Duration::from_millis(20)),
            ..ExecOptions::default()
        },
    );
    let t = Instant::now();
    let err = s.run(LONG_QUERY).expect_err("deadline must fail the query");
    let elapsed = t.elapsed();
    assert!(matches!(err, EqlError::DeadlineExceeded), "{err}");
    assert_eq!(err.to_string(), "deadline exceeded");
    // The engines poll every 64 steps, so the stop lands within a
    // small multiple of the 20 ms budget — far from the full runtime.
    assert!(
        elapsed < untimed / 3,
        "deadline stop took {elapsed:?}, untimed runtime {untimed:?}"
    );
}

#[test]
fn deadline_exceeded_on_partitioned_search() {
    let g = long_graph();
    let untimed = untimed_runtime(&g);
    let s = Session::with_options(
        &g,
        ExecOptions {
            deadline: Some(Duration::from_millis(20)),
            search_threads: 2,
            ..ExecOptions::default()
        },
    );
    let t = Instant::now();
    let err = s.run(LONG_QUERY).expect_err("deadline must fail the query");
    let elapsed = t.elapsed();
    assert!(matches!(err, EqlError::DeadlineExceeded), "{err}");
    assert!(
        elapsed < untimed,
        "partitioned deadline stop took {elapsed:?}, untimed sequential {untimed:?}"
    );
}

#[test]
fn cancel_mid_search_returns_cancelled() {
    let g = long_graph();
    let untimed = untimed_runtime(&g);

    let flag = CancelFlag::new();
    let s = Session::with_options(
        &g,
        ExecOptions {
            cancel: Some(flag.clone()),
            ..ExecOptions::default()
        },
    );
    let t = Instant::now();
    let err = std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(15));
            flag.cancel();
        });
        s.run(LONG_QUERY).expect_err("cancel must fail the query")
    });
    let elapsed = t.elapsed();
    assert!(matches!(err, EqlError::Cancelled), "{err}");
    assert_eq!(err.to_string(), "cancelled");
    assert!(
        elapsed < untimed / 3,
        "cancel stop took {elapsed:?}, untimed runtime {untimed:?}"
    );
}

#[test]
fn pre_cancelled_query_fails_without_searching() {
    let g = long_graph();
    let flag = CancelFlag::new();
    flag.cancel();
    let s = Session::with_options(
        &g,
        ExecOptions {
            cancel: Some(flag),
            ..ExecOptions::default()
        },
    );
    let t = Instant::now();
    let err = s.run(LONG_QUERY).expect_err("pre-raised flag");
    assert!(matches!(err, EqlError::Cancelled), "{err}");
    assert!(t.elapsed() < Duration::from_millis(200));
}

#[test]
fn cancel_fails_ask_fast_path_and_batch() {
    let g = long_graph();
    let flag = CancelFlag::new();
    flag.cancel();
    let s = Session::with_options(
        &g,
        ExecOptions {
            cancel: Some(flag),
            ..ExecOptions::default()
        },
    );
    // The single-CTP ASK streaming fast path.
    let err = s
        .ask(r#"ASK WHERE { CONNECT("n0", "n63" -> w) MAX 5 }"#)
        .expect_err("ask under a raised flag");
    assert!(matches!(err, EqlError::Cancelled), "{err}");
    // Every query of a batch reports the cancellation.
    for r in s.execute_batch(&[LONG_QUERY, LONG_QUERY]) {
        assert!(matches!(r, Err(EqlError::Cancelled)));
    }
}

/// Regression: the per-CTP soft `TIMEOUT` clause still returns the
/// partial results found in time instead of the typed error — only the
/// hard [`ExecOptions::deadline`] fails the query.
#[test]
fn soft_ctp_timeout_keeps_partial_results() {
    let g = long_graph();
    let r = Session::new(&g)
        .run(r#"SELECT w WHERE { CONNECT("n0", "n63" -> w) MAX 5 TIMEOUT 1 }"#)
        .expect("soft timeout is not an error");
    let (_, stats, _) = &r.stats.ctp_stats[0];
    assert!(stats.timed_out, "1 ms must truncate the long search");
    assert!(!stats.cancelled);
}

/// A deadline generous enough for the whole query changes nothing.
#[test]
fn unreached_deadline_is_invisible() {
    let g = long_graph();
    let plain = Session::new(&g).run(LONG_QUERY).expect("plain");
    let s = Session::with_options(
        &g,
        ExecOptions {
            deadline: Some(Duration::from_secs(600)),
            cancel: Some(CancelFlag::new()),
            ..ExecOptions::default()
        },
    );
    let guarded = s.run(LONG_QUERY).expect("deadline not reached");
    assert_eq!(plain.rows(), guarded.rows());
    assert_eq!(plain.trees["w"].len(), guarded.trees["w"].len());
}
