//! Live-graph equivalence properties — the session-level counterpart
//! of the graph-level edit-script tests in `cs_graph`'s mutate module.
//!
//! The contract under test: a session that reaches a graph state
//! through [`Session::mutate`], with its plan cache and cross-query
//! result cache warmed at every intermediate generation, must render
//! every query byte-for-byte identically to a cache-free session over
//! the same state — and, at the end of the script, to a session over a
//! graph rebuilt from scratch through [`GraphBuilder`]. Stale cached
//! results must never be served, compaction must be observably
//! invisible, and a [`Watch`] polled across the script must converge
//! on exactly the fresh baseline answer by replaying its deltas.
//!
//! Byte-identical comparison against a rebuilt graph is sound because
//! node ids are mutation-stable and live edge ids enumerate in the
//! same relative order as the rebuilt (densified) ids: the canonical
//! result order compares edge-id sequences lexicographically, which a
//! monotone renumbering preserves, and rendering itself only ever
//! prints labels, never raw edge ids.

use cs_eql::{EqlError, ExecOptions, QueryResult, ResultCacheMode, Session};
use cs_graph::generate::gnp;
use cs_graph::{figure1, Graph, GraphBuilder, Mutation, NodeId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Options with both caches effectively out of the picture — the
/// reference executions every warm run is compared against.
fn reference_opts() -> ExecOptions {
    ExecOptions {
        result_cache: ResultCacheMode::Off,
        ..ExecOptions::default()
    }
}

/// Order-sensitive observable outcome: the exact rendered text or the
/// error message. Warm sessions must reproduce this byte for byte.
fn observed(g: &Graph, r: &Result<QueryResult, EqlError>) -> Result<String, String> {
    match r {
        Ok(q) => Ok(q.render(g)),
        Err(e) => Err(e.to_string()),
    }
}

/// Rebuilds the live state of `g` from scratch: nodes in id order,
/// live edges in id order, through a fresh [`GraphBuilder`]. The
/// result has generation 0, a dense edge-id space, and its own intern
/// order — everything a cold start from serialized data would have.
fn rebuild(g: &Graph) -> Graph {
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for n in g.node_ids() {
        let types: Vec<&str> = g.node_types(n).collect();
        ids.push(b.add_typed_node(g.node_label(n), &types));
    }
    for e in g.edge_ids() {
        let ed = g.edge(e);
        b.add_edge(
            ids[ed.src.index()],
            g.resolve(ed.label),
            ids[ed.dst.index()],
        );
    }
    b.freeze()
}

/// A script step that is resolvable against *any* graph state: node
/// references are indices modulo the current node count, edge removal
/// picks the k-th live edge modulo the current edge count. Resolution
/// happens at application time, so the same script drives every
/// session under comparison identically.
#[derive(Debug, Clone)]
enum EditOp {
    InsertNode { types: u8 },
    InsertEdge { src: u16, label: u8, dst: u16 },
    RemoveEdge { pick: u16 },
}

/// Weighted op choice (2 inserts-node : 4 inserts-edge : 3 removals),
/// encoded as a mapped tuple — the vendored proptest subset has no
/// `prop_oneof!`.
fn edit_op() -> impl Strategy<Value = EditOp> {
    (0u8..9, any::<u16>(), any::<u8>(), any::<u16>()).prop_map(|(kind, a, b, c)| match kind {
        0..=1 => EditOp::InsertNode { types: b },
        2..=5 => EditOp::InsertEdge {
            src: a,
            label: b,
            dst: c,
        },
        _ => EditOp::RemoveEdge { pick: a },
    })
}

/// Resolves one step against the current graph state. `fresh` numbers
/// inserted nodes (`z0`, `z1`, …) so labels stay unique across the
/// whole script; `pending` counts nodes inserted earlier in the same
/// uncommitted batch so in-batch endpoints are addressable.
fn resolve(
    g: &Graph,
    labels: &[&str],
    fresh: &mut usize,
    pending: &mut usize,
    op: &EditOp,
) -> Option<Mutation> {
    match op {
        EditOp::InsertNode { types } => {
            let label = format!("z{}", *fresh);
            *fresh += 1;
            *pending += 1;
            let mut t = Vec::new();
            if types & 1 != 0 {
                t.push("entrepreneur".to_string());
            }
            if types & 2 != 0 {
                t.push("company".to_string());
            }
            Some(Mutation::InsertNode { label, types: t })
        }
        EditOp::InsertEdge { src, label, dst } => {
            let count = g.node_count() + *pending;
            if count == 0 {
                return None;
            }
            Some(Mutation::InsertEdge {
                src: NodeId::new(*src as usize % count),
                label: labels[*label as usize % labels.len()].to_string(),
                dst: NodeId::new(*dst as usize % count),
            })
        }
        EditOp::RemoveEdge { pick } => {
            let live = g.edge_count();
            if live == 0 {
                return None;
            }
            g.edge_ids()
                .nth(*pick as usize % live)
                .map(|edge| Mutation::RemoveEdge { edge })
        }
    }
}

/// Applies one batch of script steps through `Session::mutate`,
/// resolving each step against the session's current graph.
fn apply_batch(
    session: &mut Session<'static>,
    batch: &[EditOp],
    labels: &[&str],
    fresh: &mut usize,
) {
    let mut pending = 0usize;
    let ops: Vec<Mutation> = batch
        .iter()
        .filter_map(|op| resolve(session.graph(), labels, fresh, &mut pending, op))
        .collect();
    session.mutate(ops).expect("resolved mutations must apply");
}

/// Edge-label vocabulary for scripts over `gnp` graphs: the generator's
/// own labels plus one the base graph has never interned.
const GNP_LABELS: [&str; 4] = ["r0", "r1", "r2", "live"];

/// Queries exercised over `gnp` bases: plain BGPs, an ASK, and CTPs
/// (both pattern-seeded and constant-seeded) across m = 2 and m = 3.
const GNP_QUERIES: [&str; 6] = [
    r#"SELECT x WHERE { (x, "r0", "n0") }"#,
    r#"SELECT x, y WHERE { (x, "r1", y) }"#,
    r#"ASK WHERE { ("n1", "r2", "n2") }"#,
    r#"SELECT w WHERE { CONNECT("n0", "n1" -> w) MAX 3 }"#,
    r#"SELECT w WHERE { CONNECT("n0", "n2", "n3" -> w) MAX 4 ALGORITHM gam }"#,
    r#"SELECT x, w WHERE { (x, "r1", y) CONNECT(x, y -> w) MAX 2 LIMIT 5 }"#,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After every batch of a random edit script, a warm session (plan
    /// + result caches on, answering the same queries generation after
    /// generation) renders identically to a cache-free reference over
    /// the same state — twice in a row, so the second, cache-hit run
    /// is checked too. At the end the state is rebuilt from scratch
    /// and the warm session must also match a session over *that*.
    #[test]
    fn mutated_session_equals_fresh_rebuild(
        seed in any::<u64>(),
        script in proptest::collection::vec(edit_op(), 1..24),
    ) {
        let mut session = Session::from_graph_with(gnp(8, 0.25, seed), ExecOptions::default());
        let mut fresh = 0usize;
        for batch in script.chunks(3) {
            apply_batch(&mut session, batch, &GNP_LABELS, &mut fresh);
            let state = session.graph().clone();
            let reference = Session::with_options(&state, reference_opts());
            for q in GNP_QUERIES {
                let want = observed(&state, &reference.run(q));
                let cold = observed(session.graph(), &session.run(q));
                let warm = observed(session.graph(), &session.run(q));
                prop_assert_eq!(&want, &cold, "post-batch run diverged: {}", q);
                prop_assert_eq!(&want, &warm, "cache-hit run diverged: {}", q);
            }
        }
        let rebuilt = rebuild(session.graph());
        let reference = Session::with_options(&rebuilt, reference_opts());
        for q in GNP_QUERIES {
            let want = observed(&rebuilt, &reference.run(q));
            let got = observed(session.graph(), &session.run(q));
            prop_assert_eq!(&want, &got, "rebuilt-from-scratch diverged: {}", q);
        }
    }

    /// Compaction is observably invisible: the same script applied to
    /// a session compacting after every single op and to one that
    /// never compacts renders every query identically at every
    /// generation, even though their edge-id spaces differ.
    #[test]
    fn forced_compaction_is_invisible(
        seed in any::<u64>(),
        script in proptest::collection::vec(edit_op(), 1..20),
    ) {
        let base = gnp(8, 0.25, seed);
        let mut eager = base.clone();
        eager.set_compaction_threshold(1);
        let mut lazy = Session::from_graph_with(base, ExecOptions::default());
        let mut eager = Session::from_graph_with(eager, ExecOptions::default());
        let (mut fresh_a, mut fresh_b) = (0usize, 0usize);
        let mut compacted = false;
        for batch in script.chunks(2) {
            apply_batch(&mut lazy, batch, &GNP_LABELS, &mut fresh_a);
            apply_batch(&mut eager, batch, &GNP_LABELS, &mut fresh_b);
            compacted |= lazy.graph().edge_count() > 0
                && eager.graph().edge_ids().last() != lazy.graph().edge_ids().last();
            for q in GNP_QUERIES {
                prop_assert_eq!(
                    observed(eager.graph(), &eager.run(q)),
                    observed(lazy.graph(), &lazy.run(q)),
                    "compaction changed an answer: {}",
                    q
                );
            }
        }
        // The threshold-1 session really does renumber (unless the
        // script degenerated to inserts only, which keeps ids dense).
        let _ = compacted;
    }

    /// Watches across a random edit script: replaying every emitted
    /// delta over the baseline row set reconstructs exactly the rows a
    /// fresh session computes over the final state — so the skip
    /// layers (generation, label footprint, reach probe) never hide a
    /// real change, with or without an interleaved result cache.
    #[test]
    fn watch_deltas_replay_to_fresh_answer(
        seed in any::<u64>(),
        script in proptest::collection::vec(edit_op(), 1..18),
    ) {
        let labels = ["citizenOf", "founded", "investsIn", "locatedIn"];
        let watched = [
            r#"SELECT x WHERE { (x, "citizenOf", "France") }"#,
            r#"SELECT w WHERE { CONNECT("Bob", "Alice" -> w) MAX 3 }"#,
            r#"SELECT x, w WHERE { (x : type = "entrepreneur", "citizenOf", "USA") CONNECT(x, "France" -> w) MAX 3 }"#,
        ];
        let _ = seed; // scripts vary; the base graph is fixed (figure1)
        let mut session = Session::from_graph_with(figure1(), ExecOptions::default());
        let mut watches: Vec<_> = watched
            .iter()
            .map(|q| session.watch(q).expect("watch baseline"))
            .collect();
        let mut live: Vec<BTreeSet<String>> = watches
            .iter()
            .map(|w| w.rows().iter().cloned().collect())
            .collect();
        let mut fresh = 0usize;
        for batch in script.chunks(3) {
            apply_batch(&mut session, batch, &labels, &mut fresh);
            for (w, rows) in watches.iter_mut().zip(live.iter_mut()) {
                let delta = w.poll(&session).expect("poll");
                prop_assert_eq!(delta.generation, session.graph().generation());
                for r in &delta.removed {
                    prop_assert!(rows.remove(r), "removed a row that was never live: {r}");
                }
                for r in &delta.added {
                    prop_assert!(rows.insert(r.clone()), "added an already-live row: {r}");
                }
            }
        }
        let final_state = session.graph().clone();
        let reference = Session::with_options(&final_state, reference_opts());
        for ((q, w), rows) in watched.iter().zip(&watches).zip(&live) {
            let baseline = reference.watch(q).expect("fresh baseline");
            let want: Vec<String> = baseline.rows().to_vec();
            let have: Vec<String> = rows.iter().cloned().collect();
            prop_assert_eq!(&want, &have, "replayed deltas diverged: {}", q);
            prop_assert_eq!(&want, &w.rows().to_vec(), "watch rows diverged: {}", q);
        }
    }
}

/// Deterministic regression: a result-cache entry computed before a
/// mutation must not answer after it — the exact stale-read the
/// generation-keyed cache exists to prevent.
#[test]
fn warm_result_cache_never_serves_pre_mutation_rows() {
    let q = r#"SELECT x WHERE { (x, "citizenOf", "France") }"#;
    let mut session = Session::from_graph_with(figure1(), ExecOptions::default());
    let before = session.run(q).expect("cold run");
    let warm = session.run(q).expect("warm run");
    assert_eq!(before.render(session.graph()), warm.render(session.graph()));
    // Bob acquires French citizenship; the cached answer is now stale.
    let bob = session.graph().node_by_label("Bob").unwrap();
    let france = session.graph().node_by_label("France").unwrap();
    session
        .mutate(vec![Mutation::InsertEdge {
            src: bob,
            label: "citizenOf".into(),
            dst: france,
        }])
        .expect("mutation applies");
    let after = session.run(q).expect("post-mutation run");
    let rendered = after.render(session.graph());
    assert!(
        rendered.contains("Bob"),
        "stale cached rows served:\n{rendered}"
    );
    assert_eq!(after.rows(), before.rows() + 1);
}
