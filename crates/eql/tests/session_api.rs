//! Session API integration tests: `prepare`+`execute` (cache cold and
//! warm) and `execute_batch` must return exactly what the one-shot
//! path returns, on fixed and random graphs/queries (vendored
//! proptest); `execute_streaming` must yield the same trees as
//! materialised execution.

use cs_eql::{execute, parse, EqlError, ExecOptions, QueryResult, Session};
use cs_graph::generate::gnp;
use cs_graph::{figure1, EdgeId, Graph};
use proptest::prelude::*;

/// The comparable content of a query result: sorted projected rows
/// (rendered through labels so tree indices don't leak) plus the
/// canonical edge sets per CTP variable.
type Canonical = (Vec<String>, Vec<(String, Vec<Vec<EdgeId>>)>);

fn canonical(g: &Graph, r: &QueryResult) -> Canonical {
    let mut rows: Vec<String> = r.render(g).lines().skip(1).map(str::to_string).collect();
    rows.sort();
    let mut trees: Vec<(String, Vec<Vec<EdgeId>>)> = r
        .trees
        .iter()
        .map(|(var, ts)| {
            let mut edges: Vec<Vec<EdgeId>> = ts.iter().map(|t| t.edges.to_vec()).collect();
            edges.sort();
            (var.clone(), edges)
        })
        .collect();
    trees.sort();
    (rows, trees)
}

/// Asserts two execution outcomes agree: both fail the same way, or
/// both succeed with identical canonical content.
fn assert_same_outcome(
    g: &Graph,
    a: &Result<QueryResult, EqlError>,
    b: &Result<QueryResult, EqlError>,
    label: &str,
) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(canonical(g, x), canonical(g, y), "{label}");
            assert_eq!(x.boolean, y.boolean, "{label}");
        }
        (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string(), "{label}"),
        (x, y) => panic!("{label}: outcomes diverge: {x:?} vs {y:?}"),
    }
}

/// A family of random star-join queries over the `gnp` label
/// vocabulary (`r0..r3` edge labels): same BGP shape throughout, with
/// per-case variable names, so a warm session hits the plan cache.
fn star_query(vars: (&str, &str, &str), lbl: usize, limit: usize) -> String {
    let (x, y, z) = vars;
    format!(
        r#"SELECT {x}, w WHERE {{
            ({x}, "r{lbl}", {y})
            ({x}, "r{}", {z})
            CONNECT({y}, {z} -> w) MAX 2 LIMIT {limit}
        }}"#,
        (lbl + 1) % 4
    )
}

fn one_shot(g: &Graph, q: &str, opts: &ExecOptions) -> Result<QueryResult, EqlError> {
    let ast = parse(q)?;
    execute(g, &ast, opts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold session, warm session, and batch all agree with the
    /// one-shot path on random graphs and star-join queries.
    #[test]
    fn session_paths_match_one_shot(seed in any::<u64>(), lbl in 0usize..4, limit in 1usize..6) {
        let g = gnp(9, 0.18, seed);
        let opts = ExecOptions::default();
        let q1 = star_query(("x", "y", "z"), lbl, limit);
        // Same shape, different variable names: a warm session must
        // serve this from the plan cache without changing results.
        let q2 = star_query(("a", "b", "c"), lbl, limit);

        let reference1 = one_shot(&g, &q1, &opts);
        let reference2 = one_shot(&g, &q2, &opts);

        // Cold path: fresh session per query.
        assert_same_outcome(&g, &Session::new(&g).run(&q1), &reference1, "cold q1");

        // Warm path: one session, q1 warms the cache, q2 hits it.
        let session = Session::new(&g);
        assert_same_outcome(&g, &session.run(&q1), &reference1, "warm q1");
        let warm = session.run(&q2);
        assert_same_outcome(&g, &warm, &reference2, "warm q2");
        if let Ok(r) = &warm {
            prop_assert!(r.stats.plan_cache_hits > 0, "q2 must hit the cache");
        }

        // Batch path: both queries through one dispatch (threads=0 ⇒
        // available parallelism).
        let batched = Session::with_options(&g, ExecOptions { threads: 0, ..opts.clone() })
            .execute_batch(&[&q1, &q2]);
        prop_assert_eq!(batched.len(), 2);
        assert_same_outcome(&g, &batched[0], &reference1, "batch q1");
        assert_same_outcome(&g, &batched[1], &reference2, "batch q2");
    }

    /// Prepared queries stay reusable: executing the same
    /// `PreparedQuery` twice gives identical results, the second time
    /// from the plan cache.
    #[test]
    fn prepared_reexecution_is_stable(seed in any::<u64>(), lbl in 0usize..4) {
        let g = gnp(8, 0.2, seed);
        let session = Session::new(&g);
        let Ok(prepared) = session.prepare(&star_query(("x", "y", "z"), lbl, 4)) else {
            unreachable!("star queries always parse");
        };
        let first = session.execute(&prepared);
        let second = session.execute(&prepared);
        assert_same_outcome(&g, &first, &second, "re-execution");
        if let Ok(r) = &second {
            prop_assert!(r.stats.plan_cache_hits > 0);
            prop_assert_eq!(r.stats.plan_cache_misses, 0);
        }
    }
}

#[test]
fn warm_session_reports_cache_hits_and_total_time() {
    let g = figure1();
    let session = Session::new(&g);
    let q = r#"SELECT x, w WHERE {
        (x : type = "entrepreneur", "citizenOf", "USA")
        CONNECT(x, "France" -> w) MAX 3
    }"#;
    let cold = session.run(q).unwrap();
    assert_eq!(cold.stats.plan_cache_hits, 0);
    assert_eq!(cold.stats.plan_cache_misses, 1);
    assert!(cold.stats.total_time >= cold.stats.bgp_time);
    assert!(!cold.stats.plans[0].cached);

    // Same shape, renamed variable: cache hit.
    let warm = session
        .run(
            r#"SELECT who, w WHERE {
                (who : type = "entrepreneur", "citizenOf", "USA")
                CONNECT(who, "France" -> w) MAX 3
            }"#,
        )
        .unwrap();
    assert_eq!(warm.stats.plan_cache_hits, 1);
    assert_eq!(warm.stats.plan_cache_misses, 0);
    assert!(warm.stats.plans[0].cached);
    assert_eq!(warm.rows(), cold.rows());
    assert_eq!(
        (session.plan_cache_hits(), session.plan_cache_misses()),
        (1, 1)
    );
}

#[test]
fn batch_reports_per_query_errors_without_aborting() {
    let g = figure1();
    let session = Session::new(&g);
    let results = session.execute_batch(&[
        r#"SELECT x WHERE { (x, "founded", y) }"#,
        "SELECT syntax error (",
        r#"ASK WHERE { CONNECT("Bob", "Elon" -> w) }"#,
    ]);
    assert_eq!(results.len(), 3);
    assert!(results[0].as_ref().unwrap().rows() > 0);
    assert!(matches!(results[1], Err(EqlError::Parse(_))));
    assert_eq!(results[2].as_ref().unwrap().boolean, Some(true));
}

#[test]
fn batch_matches_sequential_on_multi_ctp_queries() {
    let g = figure1();
    let queries = [
        r#"SELECT x, w1, w2 WHERE {
            (x : type = "entrepreneur", "citizenOf", "USA")
            CONNECT(x, "France" -> w1) LIMIT 20
            CONNECT(x, "Elon" -> w2) LIMIT 20
        }"#,
        r#"SELECT w WHERE { CONNECT("Bob", "Carole" -> w) MAX 3 }"#,
        r#"ASK WHERE {
            CONNECT(x : type = "entrepreneur", "USA" -> w1) MAX 2
            CONNECT(x, "France" -> w2) MAX 2
        }"#,
    ];
    let session = Session::with_options(
        &g,
        ExecOptions {
            threads: 0,
            ..ExecOptions::default()
        },
    );
    let refs: Vec<_> = queries.iter().map(|q| session.run(q)).collect();
    let batch = session.execute_batch(&queries);
    for ((r, b), q) in refs.iter().zip(&batch).zip(&queries) {
        assert_same_outcome(&g, r, b, q);
    }
}

#[test]
fn streaming_yields_same_trees_as_materialised() {
    let g = figure1();
    let session = Session::new(&g);
    let q = r#"SELECT x, w WHERE {
        (x : type = "entrepreneur", "citizenOf", "USA")
        CONNECT(x, "France" -> w) MAX 3
    }"#;
    let prepared = session.prepare(q).unwrap();
    let materialised = session.execute(&prepared).unwrap();
    let stream = session.execute_streaming(&prepared).unwrap();
    assert_eq!(stream.out_var(), "w");
    let streamed: Vec<_> = stream.collect();

    let mut a: Vec<Vec<EdgeId>> = streamed.iter().map(|t| t.edges.to_vec()).collect();
    let mut b: Vec<Vec<EdgeId>> = materialised.trees["w"]
        .iter()
        .map(|t| t.edges.to_vec())
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "streamed trees must equal materialised trees");
}

#[test]
fn streaming_take_is_early_termination() {
    let g = figure1();
    let session = Session::new(&g);
    let prepared = session
        .prepare(r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) MAX 5 }"#)
        .unwrap();
    let full = session.execute(&prepared).unwrap();
    let total = full.trees["w"].len();
    assert!(total > 2, "need several results for the take() test");

    let mut stream = session.execute_streaming(&prepared).unwrap();
    let first_two: Vec<_> = stream.by_ref().take(2).collect();
    assert_eq!(first_two.len(), 2);
    let (_, full_stats, _) = &full.stats.ctp_stats[0];
    assert!(
        stream.stats().provenances < full_stats.provenances,
        "early-terminated stream must do less work ({} vs {} provenances)",
        stream.stats().provenances,
        full_stats.provenances
    );
}

#[test]
fn streaming_rejects_unstreamable_queries() {
    let g = figure1();
    let session = Session::new(&g);
    let cases = [
        (r#"ASK WHERE { CONNECT("Bob", "Elon" -> w) }"#, "SELECT"),
        (r#"SELECT x WHERE { (x, "founded", y) }"#, "exactly one CTP"),
        (
            r#"SELECT w1, w2 WHERE {
                CONNECT("Bob", "Elon" -> w1)
                CONNECT("Bob", "Carole" -> w2)
            }"#,
            "exactly one CTP",
        ),
        (
            r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) SCORE edgecount TOP 2 }"#,
            "SCORE",
        ),
        (
            r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) ALGORITHM bft }"#,
            "GAM-family",
        ),
    ];
    for (q, needle) in cases {
        let prepared = session.prepare(q).unwrap();
        match session.execute_streaming(&prepared) {
            Err(EqlError::Validate(msg)) => {
                assert!(
                    msg.contains(needle),
                    "{q}: {msg:?} should mention {needle:?}"
                )
            }
            Err(other) => panic!("{q}: unexpected error {other}"),
            Ok(_) => panic!("{q}: must not stream"),
        }
    }
}

#[test]
fn streaming_respects_limit_filter() {
    let g = figure1();
    let session = Session::new(&g);
    let prepared = session
        .prepare(r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) MAX 5 LIMIT 3 }"#)
        .unwrap();
    let streamed: Vec<_> = session.execute_streaming(&prepared).unwrap().collect();
    assert_eq!(streamed.len(), 3);
}

#[test]
fn deprecated_shims_agree_with_session() {
    #![allow(deprecated)]
    let g = figure1();
    let q = r#"SELECT w WHERE { CONNECT("Bob", "Carole" -> w) MAX 3 }"#;
    let via_shim = cs_eql::run_query(&g, q).unwrap();
    let via_session = Session::new(&g).run(q).unwrap();
    assert_eq!(canonical(&g, &via_shim), canonical(&g, &via_session));
    assert_eq!(
        cs_eql::run_ask(&g, r#"ASK WHERE { CONNECT("Bob", "Elon" -> w) }"#).unwrap(),
        Session::new(&g)
            .ask(r#"ASK WHERE { CONNECT("Bob", "Elon" -> w) }"#)
            .unwrap()
    );
}

// ---------------------------------------------------------------------------
// Owned-graph sessions and the snapshot store.

#[test]
fn owned_session_matches_borrowed_session() {
    let g = figure1();
    let q = r#"SELECT x, w WHERE {
        (x : type = "entrepreneur", "citizenOf", "USA")
        CONNECT(x, "France" -> w) MAX 3
    }"#;
    let borrowed = Session::new(&g).run(q).unwrap();
    let owned_session = Session::from_graph(figure1());
    let owned = owned_session.run(q).unwrap();
    assert_eq!(
        canonical(&g, &borrowed),
        canonical(owned_session.graph(), &owned)
    );
}

#[test]
fn open_snapshot_runs_identical_queries_with_warm_plans() {
    let g = figure1();
    let mut path = std::env::temp_dir();
    path.push(format!("cs-eql-session-{}.csg", std::process::id()));
    cs_graph::snapshot::save_to(&g, &path).unwrap();

    let session = Session::open_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // The statistics arrived through the snapshot sidecar: warm before
    // the first query, and equal to a fresh computation — the planner
    // never pays a stats pass.
    let warm = session
        .graph()
        .cardinalities_if_computed()
        .expect("snapshot-backed session must start with warm statistics");
    assert_eq!(warm, g.cardinalities());

    let q = r#"SELECT x, w WHERE {
        (x : type = "entrepreneur", "citizenOf", "USA")
        CONNECT(x, "France" -> w) MAX 3
    }"#;
    let from_file = session.run(q).unwrap();
    let in_memory = Session::new(&g).run(q).unwrap();
    assert_eq!(
        canonical(session.graph(), &from_file),
        canonical(&g, &in_memory),
        "file-backed session must answer exactly like the in-memory one"
    );
    // Same plans, too: the warm statistics must produce the access
    // paths the in-memory planner picks.
    let render = |r: &QueryResult| {
        r.stats
            .plans
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&from_file), render(&in_memory));

    // Streaming works from an owned graph (the stream borrows the
    // session).
    let prepared = session.prepare(q).unwrap();
    let streamed: Vec<_> = session.execute_streaming(&prepared).unwrap().collect();
    assert_eq!(streamed.len(), from_file.trees["w"].len());
}

#[test]
fn open_snapshot_missing_file_errors() {
    match Session::open_snapshot("/no/such/dir/missing.csg") {
        Ok(_) => panic!("opening a missing snapshot must fail"),
        Err(e) => assert!(e.to_string().contains("missing.csg")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The ISSUE-5 round-trip property: for random generated graphs,
    /// save → load yields identical query results under the same EQL
    /// query, with the same plans, and with the planner statistics
    /// warm on load (snapshot equality against a fresh computation —
    /// no recomputation happened).
    #[test]
    fn snapshot_roundtrip_preserves_query_results(seed in any::<u64>(), lbl in 0usize..4, limit in 1usize..6) {
        let g = gnp(9, 0.18, seed);
        let mut path = std::env::temp_dir();
        path.push(format!("cs-eql-roundtrip-{}-{seed}-{lbl}-{limit}.csg", std::process::id()));
        cs_graph::snapshot::save_to(&g, &path).unwrap();
        let session = Session::open_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Warm statistics, equal to a fresh pass over the original.
        let warm = session.graph().cardinalities_if_computed().expect("warm stats");
        prop_assert_eq!(warm, g.cardinalities());

        let q = star_query(("x", "y", "z"), lbl, limit);
        let from_file = session.run(&q);
        let in_memory = Session::new(&g).run(&q);
        assert_same_outcome(&g, &in_memory, &from_file, &q);
        if let (Ok(a), Ok(b)) = (&in_memory, &from_file) {
            let plans = |r: &QueryResult| {
                r.stats.plans.iter().map(|p| p.to_string()).collect::<Vec<_>>()
            };
            prop_assert_eq!(plans(a), plans(b), "plans must match");
        }
    }
}
