//! Cross-query CTP **result caching** with subsumption — the ROADMAP's
//! "plan cache, one level up": cache the *results* of a connection
//! search keyed by a canonical [`CtpSignature`], so a repetitive query
//! stream (the production shape `csqd` serves) skips the graph search
//! entirely.
//!
//! Two ways a probe is answered with zero graph work:
//!
//! * **Exact hit** — the probe's signature (graph identity, algorithm,
//!   `UNI`/`LABEL`/`MAX`/`LIMIT` bounds, normalised per-position seed
//!   fingerprints) equals a cached entry's: the stored trees are
//!   replayed as-is, in canonical order.
//! * **Subsumption hit** — a cached entry *dominates* the probe: same
//!   seed sets (or supersets whose surplus seeds provably cannot
//!   interfere, see below), no `LIMIT` on the entry, and entry bounds
//!   at least as loose (`MAX` ≥, `LABEL` ⊇). The answer is the entry's
//!   trees filtered by the probe's per-tree constraints
//!   (seed-membership, size, labels), which preserves the canonical
//!   order.
//!
//! ## Why seed-superset subsumption is restricted
//!
//! A CTP result (paper Def. 2.8) contains **exactly one node from each
//! explicit seed set** — so shrinking a seed set does not shrink the
//! result set, it *changes* it: nodes removed from the set are freed to
//! appear as internal tree nodes, producing results the superset
//! search excluded. Concretely, with the path `a – x – b` and sets
//! `S₁ = {a, x}`, `S₂ = {b}`, the probe `S₁′ = {a}` has the result
//! `a–x–b`, which the cached superset search rejected (two `S₁`
//! nodes). Filtering a superset entry is therefore *sound but
//! incomplete* in general. The cache serves a dominated probe only
//! when every surplus seed (in the entry's set but not the probe's)
//! has graph degree ≤ 1 and belongs to no probe seed set — such a node
//! can never be an internal node or a leaf of any probe result, so
//! filtering is provably exact. Equal seed sets (the common case for
//! repeated and bound-dominated queries) trivially satisfy this.
//!
//! Entries whose configuration is not complete for their `m`
//! ([`Algorithm::complete_for`]), whose search was capped by `LIMIT`,
//! or that contain an `N` (`All`) seed position — all cases where the
//! stored result set is interleaving- or engine-dependent — are served
//! as **exact-signature hits only**, never by subsumption.
//!
//! ## Live graphs
//!
//! Entries are keyed by a [`GraphToken`] carrying the graph's
//! **mutation generation** ([`cs_graph::Graph::generation`]) alongside
//! its address and node/edge counts. A mutation batch bumps the
//! generation, so every entry inserted before the batch misses
//! wholesale — no stale tree can ever be replayed. The dead entries
//! are garbage, not a hazard; [`ResultCache::purge_stale`] evicts them
//! eagerly (which [`Session::mutate`](crate::Session::mutate) does
//! after every effective batch).

use cs_core::parallel::CtpJob;
use cs_core::{Algorithm, ResultSet, ResultTree, SearchOutcome, SearchStats, SeedSpec};
use cs_graph::{Graph, NodeId};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default capacity (entries) of a result cache.
pub const DEFAULT_RESULT_CACHE_CAPACITY: usize = 64;

/// Best-effort identity of the graph **state** a cached result belongs
/// to: the graph's address, its node/edge counts, and its mutation
/// generation.
///
/// The address plus the counts pin an entry to one loaded graph; the
/// generation pins it to one point in that graph's mutation history,
/// so entries inserted before a [`Graph::apply`](cs_graph::Graph::apply)
/// batch stop matching the moment the batch lands. A
/// [`SharedResultCache`] must only be attached to sessions over the
/// same graph; the token turns an accidental mismatch into misses
/// rather than wrong answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphToken {
    addr: usize,
    nodes: usize,
    edges: usize,
    generation: u64,
}

impl GraphToken {
    /// The token of a loaded graph at its current generation.
    pub fn of(g: &Graph) -> GraphToken {
        GraphToken {
            addr: g as *const Graph as usize,
            nodes: g.node_count(),
            edges: g.edge_count(),
            generation: g.generation(),
        }
    }
}

/// Normalised fingerprint of one seed-set position: the sorted,
/// deduplicated node set, or the `N` (`All`) marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedFingerprint {
    /// An explicit seed set, sorted and deduplicated.
    Set(Vec<NodeId>),
    /// The whole node set `N` (§4.9).
    All,
}

/// The canonical cache key of one CTP search: graph identity,
/// algorithm, the filters that shape the result set, and the
/// normalised seed fingerprints.
///
/// Deliberately *excluded*: timeouts, deadlines, and cancel flags
/// (searches stopped by them are never inserted, and a cached complete
/// result is always a valid answer for a time-budgeted probe) and the
/// exploration order/queue policy (the EQL executor always uses
/// smallest-first, and a complete search's result *set* is
/// order-independent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtpSignature {
    graph: GraphToken,
    algorithm: Algorithm,
    uni: bool,
    labels: Option<Vec<String>>,
    max_edges: Option<usize>,
    max_results: Option<usize>,
    seeds: Vec<SeedFingerprint>,
}

impl CtpSignature {
    /// Builds the signature of a CTP job over `g`, or `None` when the
    /// job is uncacheable (a provenance-budgeted search returns
    /// deliberately truncated, budget-dependent results).
    pub fn of(g: &Graph, job: &CtpJob) -> Option<CtpSignature> {
        if job.filters.max_provenances.is_some() {
            return None;
        }
        let seeds = job
            .seeds
            .specs()
            .iter()
            .map(|s| match s {
                SeedSpec::Set(nodes) => {
                    let mut v = nodes.clone();
                    v.sort_unstable();
                    v.dedup();
                    SeedFingerprint::Set(v)
                }
                SeedSpec::All => SeedFingerprint::All,
            })
            .collect();
        let labels = job.filters.labels.as_ref().map(|ls| {
            let mut ls = ls.clone();
            ls.sort();
            ls.dedup();
            ls
        });
        Some(CtpSignature {
            graph: GraphToken::of(g),
            algorithm: job.algorithm,
            uni: job.filters.uni,
            labels,
            max_edges: job.filters.max_edges,
            max_results: job.filters.max_results,
            seeds,
        })
    }

    /// Number of seed sets.
    pub fn m(&self) -> usize {
        self.seeds.len()
    }

    /// True if any position is the `N` seed set.
    fn has_all(&self) -> bool {
        self.seeds.iter().any(|s| matches!(s, SeedFingerprint::All))
    }

    /// True if this probe may be answered by a dominating entry at all:
    /// its configuration must be complete for its `m` (an incomplete
    /// config's result set is interleaving-dependent — the direct
    /// search must run) and every position must be explicit.
    fn subsumption_eligible(&self) -> bool {
        self.algorithm.complete_for(self.m()) && !self.has_all()
    }

    /// True if `self` (a cached, subsumable entry) dominates `probe`:
    /// filtering `self`'s trees by `probe`'s per-tree constraints
    /// provably reproduces the probe's complete result set.
    fn dominates(&self, probe: &CtpSignature, g: &Graph) -> bool {
        if self.graph != probe.graph || self.uni != probe.uni || self.m() != probe.m() {
            return false;
        }
        // Label domination: the entry searched all labels, or a
        // superset of the probe's.
        match (&self.labels, &probe.labels) {
            (None, _) => {}
            (Some(_), None) => return false,
            (Some(e), Some(p)) => {
                if !p.iter().all(|l| e.binary_search(l).is_ok()) {
                    return false;
                }
            }
        }
        // Size-bound domination.
        match (self.max_edges, probe.max_edges) {
            (None, _) => {}
            (Some(_), None) => return false,
            (Some(e), Some(p)) => {
                if p > e {
                    return false;
                }
            }
        }
        // Seed domination: per position, the probe set is contained in
        // the entry set, and every surplus seed is provably inert
        // (degree ≤ 1 and in no probe set): Def. 2.8's
        // exactly-one-node-per-set constraint makes unrestricted
        // superset filtering incomplete — see the module docs.
        for (es, ps) in self.seeds.iter().zip(&probe.seeds) {
            let (SeedFingerprint::Set(e), SeedFingerprint::Set(p)) = (es, ps) else {
                return false;
            };
            if !is_subset(p, e) {
                return false;
            }
            if p.len() != e.len() {
                let surplus_ok = e.iter().all(|n| {
                    p.binary_search(n).is_ok()
                        || (g.degree(*n) <= 1
                            && probe.seeds.iter().all(|other| match other {
                                SeedFingerprint::Set(o) => o.binary_search(n).is_err(),
                                SeedFingerprint::All => false,
                            }))
                });
                if !surplus_ok {
                    return false;
                }
            }
        }
        true
    }

    /// True if a dominating entry's tree satisfies this probe's
    /// per-tree constraints: its bound seeds lie in the probe's sets,
    /// its size respects `MAX`, and its edges respect `LABEL`.
    fn admits(&self, t: &ResultTree, g: &Graph) -> bool {
        if self.max_edges.is_some_and(|k| t.size() > k) {
            return false;
        }
        for (i, fp) in self.seeds.iter().enumerate() {
            let SeedFingerprint::Set(p) = fp else {
                return false;
            };
            if p.binary_search(&t.seeds[i]).is_err() {
                return false;
            }
        }
        if let Some(labels) = &self.labels {
            if !t.edges.iter().all(|&e| {
                labels
                    .binary_search_by(|l| l.as_str().cmp(g.edge_label(e)))
                    .is_ok()
            }) {
                return false;
            }
        }
        true
    }
}

/// `a ⊆ b` over sorted, deduplicated slices (merge walk).
fn is_subset(a: &[NodeId], b: &[NodeId]) -> bool {
    let mut bi = 0usize;
    for x in a {
        while bi < b.len() && b[bi] < *x {
            bi += 1;
        }
        if bi >= b.len() || b[bi] != *x {
            return false;
        }
        bi += 1;
    }
    true
}

/// One cached search.
struct CacheEntry {
    sig: CtpSignature,
    /// The result trees, canonically sorted
    /// ([`ResultTree::canonical_cmp`]).
    trees: Arc<[ResultTree]>,
    /// Counters of the search that produced the entry (replayed on
    /// hits, so `--stats` attributes the original search cost).
    stats: SearchStats,
    duration: Duration,
    /// May this entry answer dominated probes by filtering?
    subsumable: bool,
}

impl CacheEntry {
    fn replay(&self) -> SearchOutcome {
        SearchOutcome {
            results: ResultSet::from_trees(self.trees.iter().cloned()),
            stats: self.stats.clone(),
            duration: self.duration,
        }
    }
}

/// How a cache probe was answered.
pub enum CacheLookup {
    /// Exact signature hit: the stored outcome, replayed.
    Exact(SearchOutcome),
    /// A dominating entry answered the probe by filtering; the outcome
    /// keeps canonical order, `filtered_out` counts the dropped trees.
    Subsumed {
        /// The filtered outcome.
        outcome: SearchOutcome,
        /// Cached trees the probe's constraints rejected.
        filtered_out: u64,
    },
    /// No usable entry; the search must run.
    Miss,
}

/// Monotonic counters of one result cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Exact-signature hits.
    pub hits: u64,
    /// Probes no entry could answer.
    pub misses: u64,
    /// Probes answered by filtering a dominating entry.
    pub subsumed: u64,
    /// Cached trees rejected while answering subsumption hits.
    pub trees_filtered: u64,
}

/// An LRU cache of CTP search results, keyed by [`CtpSignature`], with
/// a subsumption lookup (see the module docs for the exactness rules).
///
/// Like the plan cache, the store is a small vector in LRU order — the
/// subsumption lookup scans anyway, and capacities are tens of
/// entries. `capacity == 0` disables the cache (every probe misses,
/// nothing is stored).
pub struct ResultCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    counters: CacheCounters,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new(DEFAULT_RESULT_CACHE_CAPACITY)
    }
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (0 disables).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            entries: Vec::new(),
            capacity,
            counters: CacheCounters::default(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cache's monotonic hit/miss counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Evicts every entry whose [`GraphToken`] differs from `current`
    /// — the post-mutation hygiene pass. Correctness never needs this
    /// (a stale token can only miss), but a mutating workload would
    /// otherwise fill the LRU with dead generations. Returns the
    /// number of entries dropped.
    pub fn purge_stale(&mut self, current: GraphToken) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.sig.graph == current);
        before - self.entries.len()
    }

    /// Answers a probe: exact hit, subsumption hit, or miss. Hits
    /// refresh the entry's LRU position.
    pub fn lookup(&mut self, g: &Graph, probe: &CtpSignature) -> CacheLookup {
        if self.capacity == 0 {
            return CacheLookup::Miss;
        }
        if let Some(pos) = self.entries.iter().rposition(|e| e.sig == *probe) {
            self.counters.hits += 1;
            let entry = self.entries.remove(pos);
            let outcome = entry.replay();
            self.entries.push(entry);
            return CacheLookup::Exact(outcome);
        }
        if probe.subsumption_eligible() {
            if let Some(pos) = self
                .entries
                .iter()
                .rposition(|e| e.subsumable && e.sig.dominates(probe, g))
            {
                let entry = &self.entries[pos];
                let mut kept: Vec<ResultTree> = Vec::new();
                let mut filtered_out = 0u64;
                for t in entry.trees.iter() {
                    if probe.admits(t, g) {
                        kept.push(t.clone());
                    } else {
                        filtered_out += 1;
                    }
                }
                // A capped probe is served only when the cap provably
                // never binds — otherwise the uncached search would
                // return a (scheduling-dependent) subset the filter
                // cannot reproduce, so the real search runs.
                if probe.max_results.is_none_or(|k| kept.len() <= k) {
                    self.counters.subsumed += 1;
                    self.counters.trees_filtered += filtered_out;
                    let outcome = SearchOutcome {
                        results: ResultSet::from_trees(kept),
                        stats: self.entries[pos].stats.clone(),
                        duration: self.entries[pos].duration,
                    };
                    let entry = self.entries.remove(pos);
                    self.entries.push(entry);
                    return CacheLookup::Subsumed {
                        outcome,
                        filtered_out,
                    };
                }
            }
        }
        self.counters.misses += 1;
        CacheLookup::Miss
    }

    /// Inserts a finished search under its signature. Incomplete
    /// outcomes (timeout / budget / cancel) are never cached; an
    /// existing entry with the same signature is refreshed instead of
    /// duplicated. The stored trees are canonically sorted.
    pub fn insert(&mut self, sig: CtpSignature, outcome: &SearchOutcome) {
        if self.capacity == 0 || !outcome.complete() {
            return;
        }
        let mut trees: Vec<ResultTree> = outcome.results.trees().to_vec();
        trees.sort_by(ResultTree::canonical_cmp);
        // Subsumable entries must hold the *complete, deterministic*
        // result set of their signature: a complete-config algorithm,
        // no LIMIT cap (a capped subset is scheduling-dependent), and
        // no `N` position (its bindings are roots at discovery time —
        // engine-dependent). Everything else still serves exact hits.
        let subsumable =
            sig.algorithm.complete_for(sig.m()) && sig.max_results.is_none() && !sig.has_all();
        if let Some(pos) = self.entries.iter().position(|e| e.sig == sig) {
            self.entries.remove(pos);
        }
        self.entries.push(CacheEntry {
            sig,
            trees: trees.into(),
            stats: outcome.stats.clone(),
            duration: outcome.duration,
            subsumable,
        });
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
    }
}

/// A result cache shared across sessions (and threads): the handle
/// `csqd` clones into every connection's [`ExecOptions`](crate::ExecOptions),
/// so all tenants of one served graph reuse each other's searches.
///
/// All sessions sharing the handle must query the **same graph**; the
/// per-entry [`GraphToken`] demotes an accidental mismatch to misses.
#[derive(Clone, Default)]
pub struct SharedResultCache(Arc<Mutex<ResultCache>>);

impl SharedResultCache {
    /// A shared cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> SharedResultCache {
        SharedResultCache(Arc::new(Mutex::new(ResultCache::new(capacity))))
    }

    /// Runs `f` with the cache locked. A poisoned lock is recovered:
    /// the cache holds only derived data, so the worst a panicking
    /// holder can leave behind is a stale LRU order.
    pub fn with<R>(&self, f: impl FnOnce(&mut ResultCache) -> R) -> R {
        let mut guard = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// The shared cache's monotonic counters.
    pub fn counters(&self) -> CacheCounters {
        self.with(|c| c.counters())
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.with(|c| c.len())
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for SharedResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (len, counters) = self.with(|c| (c.len(), c.counters()));
        f.debug_struct("SharedResultCache")
            .field("len", &len)
            .field("counters", &counters)
            .finish()
    }
}

/// Where a session's CTP result cache lives.
#[derive(Clone, Default)]
pub enum ResultCacheMode {
    /// No result caching: every CTP dispatch searches the graph.
    Off,
    /// A private per-session cache of
    /// [`ExecOptions::result_cache_capacity`](crate::ExecOptions::result_cache_capacity)
    /// entries (the default).
    #[default]
    On,
    /// A [`SharedResultCache`] handle — one cache across many sessions
    /// over the same graph (the `csqd` connection-sharing mode).
    Shared(SharedResultCache),
}

impl std::fmt::Debug for ResultCacheMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResultCacheMode::Off => write!(f, "Off"),
            ResultCacheMode::On => write!(f, "On"),
            ResultCacheMode::Shared(_) => write!(f, "Shared(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_core::parallel::evaluate_job;
    use cs_core::{Filters, QueueOrder, QueuePolicy, SeedSets};
    use cs_graph::GraphBuilder;

    fn job(seeds: Vec<Vec<NodeId>>, algorithm: Algorithm, filters: Filters) -> CtpJob {
        CtpJob {
            seeds: SeedSets::from_sets(seeds).unwrap(),
            algorithm,
            filters,
            order: QueueOrder::SmallestFirst,
            policy: QueuePolicy::Single,
        }
    }

    fn run(g: &Graph, j: &CtpJob) -> SearchOutcome {
        evaluate_job(g, j, 1)
    }

    /// `a – x – b`, plus a pendant node `p` hanging off `b`.
    fn path_with_pendant() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let x = b.add_node("x");
        let bb = b.add_node("b");
        let p = b.add_node("p");
        b.add_edge(a, "r", x);
        b.add_edge(x, "r", bb);
        b.add_edge(bb, "r", p);
        (b.freeze(), vec![a, x, bb, p])
    }

    #[test]
    fn exact_hit_replays_identical_trees() {
        let (g, ns) = path_with_pendant();
        let j = job(
            vec![vec![ns[0]], vec![ns[2]]],
            Algorithm::MoLesp,
            Filters::none(),
        );
        let out = run(&g, &j);
        let sig = CtpSignature::of(&g, &j).unwrap();
        let mut cache = ResultCache::new(8);
        assert!(matches!(cache.lookup(&g, &sig), CacheLookup::Miss));
        cache.insert(sig.clone(), &out);
        let CacheLookup::Exact(replayed) = cache.lookup(&g, &sig) else {
            panic!("expected an exact hit");
        };
        assert_eq!(replayed.results.canonical(), out.results.canonical());
        assert_eq!(cache.counters().hits, 1);
        assert_eq!(cache.counters().misses, 1);
    }

    #[test]
    fn bound_dominated_probe_is_subsumed_exactly() {
        let (g, ns) = path_with_pendant();
        let wide = job(
            vec![vec![ns[0]], vec![ns[2]]],
            Algorithm::MoLesp,
            Filters::none(),
        );
        let narrow = job(
            vec![vec![ns[0]], vec![ns[2]]],
            Algorithm::MoLesp,
            Filters::none().with_max_edges(2),
        );
        let mut cache = ResultCache::new(8);
        cache.insert(CtpSignature::of(&g, &wide).unwrap(), &run(&g, &wide));
        let probe = CtpSignature::of(&g, &narrow).unwrap();
        let CacheLookup::Subsumed { outcome, .. } = cache.lookup(&g, &probe) else {
            panic!("expected a subsumption hit");
        };
        let direct = run(&g, &narrow);
        assert_eq!(outcome.results.canonical(), direct.results.canonical());
        assert_eq!(cache.counters().subsumed, 1);
    }

    /// The Def. 2.8 counterexample from the module docs: filtering a
    /// seed-superset entry would *miss* `a–x–b` (the superset search
    /// rejected it: two `S₁` nodes), and `x` has degree 2, so the
    /// cache must refuse to subsume and run the direct search.
    #[test]
    fn interfering_seed_superset_is_not_subsumed() {
        let (g, ns) = path_with_pendant();
        let (a, x, b) = (ns[0], ns[1], ns[2]);
        let sup = job(
            vec![vec![a, x], vec![b]],
            Algorithm::MoLesp,
            Filters::none(),
        );
        let sub = job(vec![vec![a], vec![b]], Algorithm::MoLesp, Filters::none());
        let sup_out = run(&g, &sup);
        // The superset search indeed lacks a–x–b…
        assert!(sup_out.results.trees().iter().all(|t| t.size() < 2));
        let mut cache = ResultCache::new(8);
        cache.insert(CtpSignature::of(&g, &sup).unwrap(), &sup_out);
        // …so the dominated probe must MISS (x interferes: degree 2).
        assert!(matches!(
            cache.lookup(&g, &CtpSignature::of(&g, &sub).unwrap()),
            CacheLookup::Miss
        ));
        // And the direct search finds the 2-edge connection.
        assert!(run(&g, &sub).results.trees().iter().any(|t| t.size() == 2));
    }

    /// A surplus seed of degree ≤ 1 outside every probe set cannot
    /// appear in any probe result, so the superset entry answers
    /// exactly.
    #[test]
    fn inert_seed_superset_is_subsumed_exactly() {
        let (g, ns) = path_with_pendant();
        let (a, b, p) = (ns[0], ns[2], ns[3]);
        // p is pendant (degree 1): {a, p} ⊇ {a} is inert surplus.
        let sup = job(
            vec![vec![a, p], vec![b]],
            Algorithm::MoLesp,
            Filters::none(),
        );
        let sub = job(vec![vec![a], vec![b]], Algorithm::MoLesp, Filters::none());
        let mut cache = ResultCache::new(8);
        cache.insert(CtpSignature::of(&g, &sup).unwrap(), &run(&g, &sup));
        let CacheLookup::Subsumed { outcome, .. } =
            cache.lookup(&g, &CtpSignature::of(&g, &sub).unwrap())
        else {
            panic!("expected a subsumption hit (pendant surplus is inert)");
        };
        assert_eq!(
            outcome.results.canonical(),
            run(&g, &sub).results.canonical()
        );
    }

    #[test]
    fn incomplete_config_entry_serves_exact_hits_only() {
        let (g, ns) = path_with_pendant();
        // MoESP with m = 3 is an incomplete configuration.
        let e = job(
            vec![vec![ns[0]], vec![ns[2]], vec![ns[3]]],
            Algorithm::MoEsp,
            Filters::none(),
        );
        let out = run(&g, &e);
        let sig = CtpSignature::of(&g, &e).unwrap();
        let mut cache = ResultCache::new(8);
        cache.insert(sig.clone(), &out);
        assert!(matches!(cache.lookup(&g, &sig), CacheLookup::Exact(_)));
        // A bound-dominated probe of the same incomplete config misses.
        let probe_job = job(
            vec![vec![ns[0]], vec![ns[2]], vec![ns[3]]],
            Algorithm::MoEsp,
            Filters::none().with_max_edges(2),
        );
        let probe = CtpSignature::of(&g, &probe_job).unwrap();
        assert!(matches!(cache.lookup(&g, &probe), CacheLookup::Miss));
    }

    #[test]
    fn capped_probe_falls_through_when_cap_would_bind() {
        let (g, ns) = path_with_pendant();
        let wide = job(
            vec![vec![ns[0]], vec![ns[3]]],
            Algorithm::MoLesp,
            Filters::none(),
        );
        let out = run(&g, &wide);
        let found = out.results.len();
        assert!(found >= 1);
        let mut cache = ResultCache::new(8);
        cache.insert(CtpSignature::of(&g, &wide).unwrap(), &out);
        // Cap below the filtered count: the cache must not serve a
        // "first k" subset the real search might not return.
        if found > 1 {
            let tight = job(
                vec![vec![ns[0]], vec![ns[3]]],
                Algorithm::MoLesp,
                Filters::none().with_max_results(1),
            );
            assert!(matches!(
                cache.lookup(&g, &CtpSignature::of(&g, &tight).unwrap()),
                CacheLookup::Miss
            ));
        }
        // Cap at/above the count can never bind: served by filtering.
        let loose = job(
            vec![vec![ns[0]], vec![ns[3]]],
            Algorithm::MoLesp,
            Filters::none().with_max_results(found),
        );
        assert!(matches!(
            cache.lookup(&g, &CtpSignature::of(&g, &loose).unwrap()),
            CacheLookup::Subsumed { .. }
        ));
    }

    #[test]
    fn incomplete_outcomes_and_budgeted_jobs_are_not_cached() {
        let (g, ns) = path_with_pendant();
        let j = job(
            vec![vec![ns[0]], vec![ns[2]]],
            Algorithm::MoLesp,
            Filters::none(),
        );
        let mut out = run(&g, &j);
        out.stats.timed_out = true;
        let mut cache = ResultCache::new(8);
        cache.insert(CtpSignature::of(&g, &j).unwrap(), &out);
        assert!(cache.is_empty(), "incomplete outcomes must not be cached");
        let budgeted = job(
            vec![vec![ns[0]], vec![ns[2]]],
            Algorithm::MoLesp,
            Filters::none().with_max_provenances(10),
        );
        assert!(CtpSignature::of(&g, &budgeted).is_none());
    }

    #[test]
    fn lru_evicts_oldest_and_capacity_zero_disables() {
        let (g, ns) = path_with_pendant();
        let mk = |max: usize| {
            job(
                vec![vec![ns[0]], vec![ns[2]]],
                Algorithm::MoLesp,
                Filters::none().with_max_edges(max),
            )
        };
        let mut cache = ResultCache::new(2);
        for max in [2usize, 3, 4] {
            let j = mk(max);
            cache.insert(CtpSignature::of(&g, &j).unwrap(), &run(&g, &j));
        }
        assert_eq!(cache.len(), 2);
        // The max=2 entry was evicted; max=4 and max=3 remain.
        assert!(matches!(
            cache.lookup(&g, &CtpSignature::of(&g, &mk(4)).unwrap()),
            CacheLookup::Exact(_)
        ));
        let mut disabled = ResultCache::new(0);
        let j = mk(2);
        disabled.insert(CtpSignature::of(&g, &j).unwrap(), &run(&g, &j));
        assert!(disabled.is_empty());
        assert!(matches!(
            disabled.lookup(&g, &CtpSignature::of(&g, &j).unwrap()),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn label_dominated_probe_filters_by_edge_label() {
        let mut b = GraphBuilder::new();
        let s = b.add_node("s");
        let t = b.add_node("t");
        let u = b.add_node("u");
        b.add_edge(s, "good", t);
        b.add_edge(s, "bad", u);
        b.add_edge(u, "bad", t);
        let g = b.freeze();
        let wide = job(vec![vec![s], vec![t]], Algorithm::MoLesp, Filters::none());
        let narrow = job(
            vec![vec![s], vec![t]],
            Algorithm::MoLesp,
            Filters::none().with_labels(["good"]),
        );
        let mut cache = ResultCache::new(8);
        cache.insert(CtpSignature::of(&g, &wide).unwrap(), &run(&g, &wide));
        let CacheLookup::Subsumed {
            outcome,
            filtered_out,
        } = cache.lookup(&g, &CtpSignature::of(&g, &narrow).unwrap())
        else {
            panic!("expected a subsumption hit");
        };
        assert!(filtered_out >= 1, "the bad-labelled tree is filtered");
        assert_eq!(
            outcome.results.canonical(),
            run(&g, &narrow).results.canonical()
        );
    }

    #[test]
    fn shared_cache_is_cloneable_and_poison_safe() {
        let shared = SharedResultCache::new(4);
        let clone = shared.clone();
        let (g, ns) = path_with_pendant();
        let j = job(
            vec![vec![ns[0]], vec![ns[2]]],
            Algorithm::MoLesp,
            Filters::none(),
        );
        let sig = CtpSignature::of(&g, &j).unwrap();
        shared.with(|c| c.insert(sig.clone(), &run(&g, &j)));
        assert_eq!(clone.len(), 1);
        assert!(clone.with(|c| matches!(c.lookup(&g, &sig), CacheLookup::Exact(_))));
        assert_eq!(clone.counters().hits, 1);
        assert!(format!("{shared:?}").contains("len"));
        assert!(format!("{:?}", ResultCacheMode::Shared(shared)).contains("Shared"));
    }

    /// A mutation bumps the graph's generation, so every pre-batch
    /// entry stops matching — and `purge_stale` evicts the corpses.
    #[test]
    fn mutation_invalidates_by_generation() {
        let (mut g, ns) = path_with_pendant();
        let j = job(
            vec![vec![ns[0]], vec![ns[2]]],
            Algorithm::MoLesp,
            Filters::none(),
        );
        let mut cache = ResultCache::new(8);
        cache.insert(CtpSignature::of(&g, &j).unwrap(), &run(&g, &j));
        assert!(matches!(
            cache.lookup(&g, &CtpSignature::of(&g, &j).unwrap()),
            CacheLookup::Exact(_)
        ));
        g.insert_edge(ns[0], "r", ns[3]);
        // Same address, new generation: the old entry misses wholesale
        // (exact *and* subsumption paths are both token-gated).
        assert!(matches!(
            cache.lookup(&g, &CtpSignature::of(&g, &j).unwrap()),
            CacheLookup::Miss
        ));
        assert_eq!(cache.purge_stale(GraphToken::of(&g)), 1);
        assert!(cache.is_empty());
        // Post-mutation entries serve the live overlay's results.
        let out = run(&g, &j);
        cache.insert(CtpSignature::of(&g, &j).unwrap(), &out);
        let CacheLookup::Exact(replayed) = cache.lookup(&g, &CtpSignature::of(&g, &j).unwrap())
        else {
            panic!("expected an exact hit on the new generation");
        };
        assert_eq!(replayed.results.canonical(), out.results.canonical());
        assert_eq!(cache.purge_stale(GraphToken::of(&g)), 0);
    }

    #[test]
    fn graph_token_separates_graphs() {
        let (g1, ns) = path_with_pendant();
        let (g2, _) = path_with_pendant();
        let j = job(
            vec![vec![ns[0]], vec![ns[2]]],
            Algorithm::MoLesp,
            Filters::none(),
        );
        let mut cache = ResultCache::new(8);
        cache.insert(CtpSignature::of(&g1, &j).unwrap(), &run(&g1, &j));
        assert!(matches!(
            cache.lookup(&g2, &CtpSignature::of(&g2, &j).unwrap()),
            CacheLookup::Miss
        ));
    }
}
