//! The session-based execution API: prepare once, execute many,
//! batch across queries, stream results.
//!
//! The free functions of [`crate::exec`] parse, plan, and execute from
//! scratch on every call, so nothing survives between queries. A
//! [`Session`] is the stateful counterpart: it owns the graph
//! reference, the [`ExecOptions`], and an LRU [`cs_engine::PlanCache`]
//! keyed by BGP *shape* (labels/types with variable names
//! canonicalised), so structurally identical BGPs across a query
//! stream reuse plans — the paper's Fig. 13 per-label plan-cache idea
//! generalised to whole patterns.
//!
//! On top of the cache the session adds the ROADMAP's two scale
//! levers:
//!
//! * [`Session::execute_batch`] collects the CTP jobs of *many*
//!   queries into one [`cs_core::parallel::evaluate_ctps_parallel`] dispatch, so a batch
//!   saturates the worker pool even when each query has a single CTP;
//! * [`Session::execute_streaming`] returns a pull-based
//!   [`ResultStream`] that advances the CTP search only as far as the
//!   results the caller consumes (TOP-k-style early termination).
//!
//! ```
//! use cs_eql::Session;
//! use cs_graph::figure1;
//!
//! let g = figure1();
//! let session = Session::new(&g);
//! let prepared = session
//!     .prepare(r#"SELECT x, w WHERE {
//!         (x : type = "entrepreneur", "citizenOf", "USA")
//!         CONNECT(x, "France" -> w) MAX 3
//!     }"#)
//!     .unwrap();
//! // Execute the prepared query as often as you like — parsing,
//! // validation, and component grouping happened once.
//! let first = session.execute(&prepared).unwrap();
//! let again = session.execute(&prepared).unwrap();
//! assert_eq!(first.rows(), again.rows());
//! // The second execution reused the cached plan.
//! assert!(again.stats.plan_cache_hits > 0);
//! ```

use crate::ast::{QueryAst, QueryForm};
use crate::exec::{
    ask_truncated, build_ctp_jobs, ctp_filters, dispatch_jobs, enforce_exclusions, grow_ask_limits,
    join_all, materialise_ctps, pick_policy, query_bgps, seed_specs, CtpMaterialisation, EqlError,
    ExecOptions, ExecStats, QueryControl, QueryResult,
};
use crate::parser::parse;
use crate::result_cache::{
    CacheCounters, CacheLookup, CtpSignature, GraphToken, ResultCache, ResultCacheMode,
    SharedResultCache,
};
use cs_core::parallel::{resolve_search_threads, resolve_threads, CtpJob};
use cs_core::{
    evaluate_ctp_streaming, stream_ctp, Algorithm, CtpStream, QueueOrder, QueuePolicy, ResultTree,
    SearchOutcome, SearchStats, SeedSets,
};
use cs_engine::{eval_bgp_with_plan, Bgp, PlanCache, Table};
use cs_graph::{Applied, Graph, Mutation, NodeId};
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// A stateful query-execution context over one graph.
///
/// Sessions are cheap to create but meant to be held: the plan cache
/// only pays off across queries. A session is single-threaded by
/// design (`!Sync` — the plan cache sits behind a [`RefCell`]); CTP
/// evaluation inside one query or batch still fans out over
/// [`ExecOptions::threads`] workers. Use one session per thread.
///
/// A session either borrows its graph ([`Session::new`]), owns it
/// ([`Session::from_graph`], [`Session::open_snapshot`]), or shares it
/// ([`Session::from_shared`]) — the owning and sharing forms are
/// `Session<'static>`, so a file-backed dataset can be served without
/// keeping a graph binding alive elsewhere. The shared form is what a
/// server uses: N connections hold one `Arc<Graph>` (one mmap-loaded
/// snapshot), each with its own session and plan cache.
pub struct Session<'g> {
    graph: GraphHandle<'g>,
    opts: ExecOptions,
    cache: RefCell<PlanCache>,
    results: ResultCacheHandle,
}

/// The three ways a session holds its graph.
enum GraphHandle<'g> {
    Borrowed(&'g Graph),
    Owned(Box<Graph>),
    Shared(std::sync::Arc<Graph>),
}

impl GraphHandle<'_> {
    fn get(&self) -> &Graph {
        match self {
            GraphHandle::Borrowed(g) => g,
            GraphHandle::Owned(g) => g,
            GraphHandle::Shared(g) => g,
        }
    }
}

/// Where this session's CTP result cache lives, resolved once from
/// [`ExecOptions::result_cache`] at construction.
enum ResultCacheHandle {
    Off,
    Local(RefCell<ResultCache>),
    Shared(SharedResultCache),
}

impl ResultCacheHandle {
    fn from_opts(opts: &ExecOptions) -> ResultCacheHandle {
        match &opts.result_cache {
            ResultCacheMode::Off => ResultCacheHandle::Off,
            ResultCacheMode::On if opts.result_cache_capacity == 0 => ResultCacheHandle::Off,
            ResultCacheMode::On => {
                ResultCacheHandle::Local(RefCell::new(ResultCache::new(opts.result_cache_capacity)))
            }
            ResultCacheMode::Shared(h) => ResultCacheHandle::Shared(h.clone()),
        }
    }

    /// Runs `f` with the cache, or returns `None` when caching is off.
    fn with<R>(&self, f: impl FnOnce(&mut ResultCache) -> R) -> Option<R> {
        match self {
            ResultCacheHandle::Off => None,
            ResultCacheHandle::Local(c) => Some(f(&mut c.borrow_mut())),
            ResultCacheHandle::Shared(s) => Some(s.with(f)),
        }
    }
}

/// How the result cache answered one CTP job of a dispatch round —
/// the per-job attribution [`ExecStats`] counters are folded from.
#[derive(Clone, Copy)]
pub(crate) enum CacheEvent {
    /// Exact signature hit.
    Hit,
    /// Subsumption hit; carries the number of trees filtered out.
    Subsumed(u64),
    /// No usable entry: the search ran.
    Miss,
    /// The job bypassed the cache (caching off or uncacheable job).
    Bypass,
}

/// Folds a dispatch round's per-job cache events into a query's stats.
pub(crate) fn fold_cache_events(stats: &mut ExecStats, events: &[CacheEvent]) {
    for e in events {
        match e {
            CacheEvent::Hit => stats.result_cache_hits += 1,
            CacheEvent::Subsumed(filtered) => {
                stats.result_cache_subsumed += 1;
                stats.result_cache_trees_filtered += filtered;
            }
            CacheEvent::Miss => stats.result_cache_misses += 1,
            CacheEvent::Bypass => {}
        }
    }
}

/// A parsed, validated, component-grouped query, produced by
/// [`Session::prepare`] and executable any number of times via
/// [`Session::execute`] without re-parsing.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    ast: QueryAst,
    /// The BGP components (Def. 2.4) of the query's edge patterns,
    /// grouped once at prepare time.
    bgps: Vec<Bgp>,
}

impl PreparedQuery {
    /// The parsed query.
    pub fn ast(&self) -> &QueryAst {
        &self.ast
    }

    /// The query form (`SELECT` or `ASK`).
    pub fn form(&self) -> QueryForm {
        self.ast.form
    }

    /// Number of BGP components step (A) will evaluate.
    pub fn bgp_count(&self) -> usize {
        self.bgps.len()
    }

    /// Executes this query on `session` — sugar for
    /// [`Session::execute`].
    pub fn execute(&self, session: &Session<'_>) -> Result<QueryResult, EqlError> {
        session.execute(self)
    }
}

impl Session<'static> {
    /// A session that *owns* its graph — the constructor behind every
    /// file- or generator-backed dataset, where no caller holds the
    /// graph binding.
    pub fn from_graph(graph: Graph) -> Session<'static> {
        Session::from_graph_with(graph, ExecOptions::default())
    }

    /// An owning session with explicit options.
    pub fn from_graph_with(graph: Graph, opts: ExecOptions) -> Session<'static> {
        let cache = RefCell::new(PlanCache::new(opts.plan_cache_capacity));
        let results = ResultCacheHandle::from_opts(&opts);
        Session {
            graph: GraphHandle::Owned(Box::new(graph)),
            opts,
            cache,
            results,
        }
    }

    /// Opens a session over a `.csg` snapshot file
    /// ([`cs_graph::snapshot::load_from`]): the session owns the loaded
    /// graph, and when the snapshot carries a statistics section the
    /// BGP planner starts warm — no first-query stats pass.
    pub fn open_snapshot(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Session<'static>, cs_graph::snapshot::SnapshotError> {
        Session::open_snapshot_with(path, ExecOptions::default())
    }

    /// A session over a shared, reference-counted graph. Many sessions
    /// (one per connection, one per thread — sessions are `!Sync`) can
    /// hold the same `Arc<Graph>`, so a server keeps a single graph in
    /// memory regardless of how many clients it serves.
    pub fn from_shared(graph: std::sync::Arc<Graph>) -> Session<'static> {
        Session::from_shared_with(graph, ExecOptions::default())
    }

    /// [`Session::from_shared`] with explicit options. This is the
    /// server constructor: passing
    /// [`ResultCacheMode::Shared`] in the options makes
    /// every connection's session probe and feed one cross-session
    /// result cache over the shared graph.
    pub fn from_shared_with(graph: std::sync::Arc<Graph>, opts: ExecOptions) -> Session<'static> {
        let cache = RefCell::new(PlanCache::new(opts.plan_cache_capacity));
        let results = ResultCacheHandle::from_opts(&opts);
        Session {
            graph: GraphHandle::Shared(graph),
            opts,
            cache,
            results,
        }
    }

    /// [`Session::open_snapshot`] with explicit options.
    pub fn open_snapshot_with(
        path: impl AsRef<std::path::Path>,
        opts: ExecOptions,
    ) -> Result<Session<'static>, cs_graph::snapshot::SnapshotError> {
        let graph = cs_graph::snapshot::load_from(path)?;
        Ok(Session::from_graph_with(graph, opts))
    }
}

impl<'g> Session<'g> {
    /// A session over `g` with default [`ExecOptions`].
    pub fn new(graph: &'g Graph) -> Self {
        Session::with_options(graph, ExecOptions::default())
    }

    /// A session over `g` with explicit options.
    pub fn with_options(graph: &'g Graph, opts: ExecOptions) -> Self {
        let cache = RefCell::new(PlanCache::new(opts.plan_cache_capacity));
        let results = ResultCacheHandle::from_opts(&opts);
        Session {
            graph: GraphHandle::Borrowed(graph),
            opts,
            cache,
            results,
        }
    }

    /// The graph this session queries.
    pub fn graph(&self) -> &Graph {
        self.graph.get()
    }

    /// The session's execution options.
    pub fn options(&self) -> &ExecOptions {
        &self.opts
    }

    /// Mutable access to the options (e.g. to change `threads` between
    /// queries). The plan cache is kept — except that changing
    /// `plan_cache_capacity` takes effect only for new sessions.
    pub fn options_mut(&mut self) -> &mut ExecOptions {
        &mut self.opts
    }

    /// Plans served from the session's shape-keyed cache so far.
    pub fn plan_cache_hits(&self) -> u64 {
        self.cache.borrow().hits()
    }

    /// Plans built from scratch so far.
    pub fn plan_cache_misses(&self) -> u64 {
        self.cache.borrow().misses()
    }

    /// Number of plans currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// The result cache's counters. For a session on a
    /// [`ResultCacheMode::Shared`] cache these are the
    /// *shared* totals across every attached session; all zero when
    /// caching is off.
    pub fn result_cache_counters(&self) -> CacheCounters {
        self.results.with(|c| c.counters()).unwrap_or_default()
    }

    /// CTP searches answered by an exact result-cache hit.
    pub fn result_cache_hits(&self) -> u64 {
        self.result_cache_counters().hits
    }

    /// CTP searches the result cache could not answer.
    pub fn result_cache_misses(&self) -> u64 {
        self.result_cache_counters().misses
    }

    /// CTP searches answered by filtering a dominating cached entry.
    pub fn result_cache_subsumed_hits(&self) -> u64 {
        self.result_cache_counters().subsumed
    }

    /// Number of entries in the result cache.
    pub fn result_cache_len(&self) -> usize {
        self.results.with(|c| c.len()).unwrap_or(0)
    }

    /// Evaluates a round of CTP jobs through the result cache: probes
    /// every job under one cache lock, dispatches only the misses
    /// (lock released — searches never serialise on the cache), then
    /// re-locks to insert the freshly computed complete outcomes.
    /// Returns the outcomes in job order plus the per-job cache events
    /// for stats attribution.
    fn dispatch_cached(&self, jobs: &[CtpJob]) -> (Vec<SearchOutcome>, Vec<CacheEvent>) {
        let g = self.graph();
        if matches!(self.results, ResultCacheHandle::Off) {
            let outs = dispatch_jobs(g, jobs, self.opts.threads, self.opts.search_threads);
            return (outs, vec![CacheEvent::Bypass; jobs.len()]);
        }
        let sigs: Vec<Option<CtpSignature>> = jobs.iter().map(|j| CtpSignature::of(g, j)).collect();
        // Batch dedup: a job whose signature already appeared earlier
        // in this dispatch is deferred to a second round, so the first
        // occurrence's freshly inserted outcome serves it as a plain
        // hit instead of redoing the identical search. (If the first
        // occurrence's outcome was incomplete and thus uncacheable,
        // the second round's miss path still searches it for real.)
        let firsts: Vec<bool> = sigs
            .iter()
            .enumerate()
            .map(|(i, sig)| match sig {
                None => true,
                Some(s) => !sigs[..i].iter().flatten().any(|p| p == s),
            })
            .collect();
        let mut slots: Vec<Option<SearchOutcome>> = Vec::with_capacity(jobs.len());
        slots.resize_with(jobs.len(), || None);
        let mut events: Vec<CacheEvent> = vec![CacheEvent::Bypass; jobs.len()];
        for round in 0..2 {
            let idx: Vec<usize> = (0..jobs.len())
                .filter(|&i| firsts[i] == (round == 0))
                .collect();
            if idx.is_empty() {
                continue;
            }
            // Probe every job of this round under one lock, so a
            // concurrent sharer cannot evict between lookups.
            self.results.with(|cache| {
                for &i in &idx {
                    match &sigs[i] {
                        None => events[i] = CacheEvent::Bypass,
                        Some(s) => match cache.lookup(g, s) {
                            CacheLookup::Exact(outcome) => {
                                slots[i] = Some(outcome);
                                events[i] = CacheEvent::Hit;
                            }
                            CacheLookup::Subsumed {
                                outcome,
                                filtered_out,
                            } => {
                                slots[i] = Some(outcome);
                                events[i] = CacheEvent::Subsumed(filtered_out);
                            }
                            CacheLookup::Miss => events[i] = CacheEvent::Miss,
                        },
                    }
                }
            });
            // The lock is released while the misses run the real
            // searches, then retaken to publish their outcomes.
            let miss_idx: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| slots[i].is_none())
                .collect();
            let miss_jobs: Vec<CtpJob> = miss_idx.iter().map(|&i| jobs[i].clone()).collect();
            let outs = dispatch_jobs(g, &miss_jobs, self.opts.threads, self.opts.search_threads);
            self.results.with(|cache| {
                for (&i, o) in miss_idx.iter().zip(&outs) {
                    if matches!(events[i], CacheEvent::Miss) {
                        if let Some(sig) = &sigs[i] {
                            cache.insert(sig.clone(), o);
                        }
                    }
                }
            });
            let mut fresh = outs.into_iter();
            for &i in &miss_idx {
                // cs-lint: allow(L002): `fresh` holds exactly one
                // outcome per miss index by construction.
                slots[i] = Some(fresh.next().expect("one dispatched outcome per miss"));
            }
        }
        let outcomes = slots
            .into_iter()
            // cs-lint: allow(L002): every index is either a probe hit
            // or a member of exactly one round's miss set.
            .map(|s| s.expect("every job slot filled after two rounds"))
            .collect();
        (outcomes, events)
    }

    /// Applies a batch of graph mutations through the session — the
    /// live-graph entry point that keeps every cache honest:
    ///
    /// * the batch lands atomically via [`cs_graph::Graph::apply`],
    ///   bumping the graph's generation;
    /// * plans whose label footprint intersects the batch's labels are
    ///   dropped from the plan cache (label-free shapes survive);
    /// * stale result-cache entries — already unreachable, since the
    ///   [`GraphToken`] they are keyed by carries the old generation —
    ///   are purged eagerly.
    ///
    /// Only sessions that *own* their graph can mutate: borrowed
    /// sessions ([`Session::new`]) and shared sessions with other live
    /// `Arc` holders return [`EqlError::Mutate`] (a server mutates by
    /// cloning, mutating the clone, and swapping the `Arc` — see
    /// `csqd`).
    ///
    /// ```
    /// use cs_eql::Session;
    /// use cs_graph::{figure1, matching_nodes, Mutation, Predicate};
    ///
    /// let mut session = Session::from_graph(figure1());
    /// let doug = matching_nodes(session.graph(), &Predicate::label("Doug"))[0];
    /// let mars = session.mutate(vec![Mutation::InsertNode {
    ///     label: "Mars".into(),
    ///     types: vec!["place".into()],
    /// }]).unwrap().nodes[0];
    /// session.mutate(vec![Mutation::InsertEdge {
    ///     src: doug,
    ///     label: "migratedTo".into(),
    ///     dst: mars,
    /// }]).unwrap();
    /// assert!(session
    ///     .ask(r#"ASK WHERE { ("Doug", "migratedTo", "Mars") }"#)
    ///     .unwrap());
    /// ```
    pub fn mutate(&mut self, ops: Vec<Mutation>) -> Result<Applied, EqlError> {
        // Pre-validate endpoints: `Graph::apply` treats a dangling
        // endpoint as a programming error (it panics), but mutations
        // arriving through a session are data, not code. An edge may
        // reference nodes inserted earlier in the same batch — their
        // ids are assigned sequentially from the current node count.
        {
            let mut count = self.graph.get().node_count();
            for op in &ops {
                match op {
                    Mutation::InsertNode { .. } => count += 1,
                    Mutation::InsertEdge { src, dst, .. } => {
                        for n in [src, dst] {
                            if n.index() >= count {
                                return Err(EqlError::Mutate(format!(
                                    "edge endpoint n{} does not exist \
                                     (graph has {count} nodes at this point in the batch)",
                                    n.0,
                                )));
                            }
                        }
                    }
                    Mutation::RemoveEdge { .. } => {}
                }
            }
        }
        let before = self.graph.get().generation();
        let g = match &mut self.graph {
            GraphHandle::Owned(g) => g.as_mut(),
            GraphHandle::Shared(arc) => std::sync::Arc::get_mut(arc).ok_or_else(|| {
                EqlError::Mutate(
                    "cannot mutate a shared graph while other references are live; \
                     clone, mutate, and swap the Arc instead (the csqd epoch swap)"
                        .into(),
                )
            })?,
            GraphHandle::Borrowed(_) => {
                return Err(EqlError::Mutate(
                    "cannot mutate a borrowed graph: use an owning session \
                     (Session::from_graph / Session::open_snapshot)"
                        .into(),
                ))
            }
        };
        let applied = g.apply(ops);
        if applied.generation == before {
            return Ok(applied); // no-op batch: nothing to invalidate
        }
        let g = self.graph.get();
        match g.mutations_since(before) {
            Some(recs) => {
                let mut labels: Vec<&str> = recs
                    .iter()
                    .flat_map(|r| r.labels.iter())
                    .map(|&l| g.resolve(l))
                    .collect();
                labels.sort_unstable();
                labels.dedup();
                self.cache
                    .borrow_mut()
                    .invalidate_labels(labels.iter().copied());
            }
            // Past the log horizon (can't happen for one batch, but
            // stay defensive): drop everything.
            None => self.cache.borrow_mut().clear(),
        }
        self.results.with(|c| c.purge_stale(GraphToken::of(g)));
        Ok(applied)
    }

    /// Parses, validates, and component-groups a query. The returned
    /// [`PreparedQuery`] can be executed repeatedly without paying for
    /// parsing again.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery, EqlError> {
        let ast = parse(text)?;
        self.prepare_ast(ast)
    }

    /// Prepares a programmatically built AST: re-checks the invariants
    /// the parser enforces (duplicate CTP output variables) and groups
    /// the edge patterns into BGP components.
    pub fn prepare_ast(&self, ast: QueryAst) -> Result<PreparedQuery, EqlError> {
        if let Some(v) = ast.duplicate_out_var() {
            return Err(EqlError::Validate(crate::ast::duplicate_out_var_message(v)));
        }
        let bgps = query_bgps(&ast);
        Ok(PreparedQuery { ast, bgps })
    }

    /// Parses and executes a query in one call — the session-aware
    /// replacement for the deprecated `run_query` free function.
    pub fn run(&self, text: &str) -> Result<QueryResult, EqlError> {
        let prepared = self.prepare(text)?;
        self.execute(&prepared)
    }

    /// Executes a prepared query — steps (A)–(C) of the paper's
    /// evaluation strategy (§3), with step (A) plans served from the
    /// session's shape-keyed cache.
    pub fn execute(&self, q: &PreparedQuery) -> Result<QueryResult, EqlError> {
        let g = self.graph();
        let ast = &q.ast;
        let t_total = Instant::now();
        let control = QueryControl::begin(&self.opts);
        let mut stats = ExecStats {
            graph_generation: g.generation(),
            ..ExecStats::default()
        };

        // ---- Step (A): plan each BGP component through the session
        // cache and evaluate the plans.
        let t0 = Instant::now();
        let bgp_tables = self.eval_bgps(&q.bgps, &mut stats);
        stats.bgp_time = t0.elapsed();
        control.check()?;

        // ---- Step (B): evaluate the CTPs. All CTPs of a query are
        // independent searches (their seed sets derive only from step
        // A), so they are collected into [`CtpJob`]s and — when more
        // than one worker is configured — dispatched through the §6
        // coarse-grained parallel evaluator. The control is armed into
        // every job, so a raised cancel flag or an elapsed deadline
        // stops the searches mid-flight.
        let t1 = Instant::now();
        let mut built = build_ctp_jobs(g, ast, &bgp_tables, &self.opts)?;
        control.arm_jobs(&mut built.jobs);
        stats.seed_narrowings = built.narrowings;
        let materialised = self.run_ctp_rounds(
            ast,
            &bgp_tables,
            &mut built.jobs,
            &built.job_cols,
            &built.deepenable,
            &built.exclusions,
            &control,
            &mut stats,
        )?;
        stats.ctp_time = t1.elapsed();

        Ok(assemble(
            ast,
            bgp_tables,
            materialised,
            stats,
            Some(t_total),
        ))
    }

    /// Step (B)'s evaluate–probe–deepen loop: dispatches the jobs,
    /// materialises the outcomes, and — for ASK — raises the
    /// deepenable result caps while the join probe stays empty and a
    /// truncated search might still produce the joining tree. Each
    /// round replaces the previous attempt's per-CTP stats.
    #[allow(clippy::too_many_arguments)]
    fn run_ctp_rounds(
        &self,
        ast: &QueryAst,
        bgp_tables: &[Table],
        jobs: &mut [CtpJob],
        job_cols: &[Vec<Option<String>>],
        deepenable: &[bool],
        exclusions: &[Vec<NodeId>],
        control: &QueryControl,
        stats: &mut ExecStats,
    ) -> Result<CtpMaterialisation, EqlError> {
        loop {
            let (mut outcomes, events) = self.dispatch_cached(jobs);
            control.classify(&outcomes)?;
            fold_cache_events(stats, &events);

            stats.ctp_stats.clear();
            // Deepening decisions read the *raw* outcomes (a cap-hit
            // must stay visible); the exclusivity re-check of narrowed
            // jobs runs after, and after the raw outcome was cached.
            let truncated = ask_truncated(jobs, &outcomes, deepenable);
            let timed_out = outcomes.iter().any(|o| o.stats.timed_out);
            enforce_exclusions(&mut outcomes, exclusions);

            let materialised = materialise_ctps(self.graph(), ast, outcomes, job_cols, stats);

            // SELECT returns everything found; ASK stops as soon as
            // the join is witnessed, or no truncated search can change
            // it.
            if ast.form == QueryForm::Select || !truncated || timed_out {
                return Ok(materialised);
            }
            let mut probe = bgp_tables.to_vec();
            probe.extend(materialised.0.iter().cloned());
            if !join_all(probe).is_empty() {
                return Ok(materialised);
            }
            grow_ask_limits(jobs, deepenable);
        }
    }

    /// Parses and executes an `ASK` query, returning its boolean
    /// answer.
    ///
    /// Single-CTP ASK queries without edge patterns take a streaming
    /// fast path: the search is evaluated through
    /// [`cs_core::evaluate_ctp_streaming`] and stopped the moment the
    /// first witness appears.
    ///
    /// ```
    /// use cs_eql::Session;
    /// use cs_graph::figure1;
    /// let g = figure1();
    /// let session = Session::new(&g);
    /// assert!(session
    ///     .ask(r#"ASK WHERE { CONNECT("Bob", "Elon" -> w) }"#)
    ///     .unwrap());
    /// assert!(!session
    ///     .ask(r#"ASK WHERE { (x, "founded", "France") }"#)
    ///     .unwrap());
    /// ```
    pub fn ask(&self, text: &str) -> Result<bool, EqlError> {
        let prepared = self.prepare(text)?;
        if let Some(answer) = self.try_streaming_ask(&prepared)? {
            return Ok(answer);
        }
        let res = self.execute(&prepared)?;
        Ok(res.boolean.unwrap_or(res.rows() > 0))
    }

    /// The ASK fast path: when the query is a single GAM-family CTP
    /// with no edge patterns (so its table joins nothing), existence
    /// is decided by streaming the search and stopping at the first
    /// result. Returns `None` when the query doesn't qualify and must
    /// go through the materialised path.
    fn try_streaming_ask(&self, q: &PreparedQuery) -> Result<Option<bool>, EqlError> {
        let ast = &q.ast;
        if ast.form != QueryForm::Ask || !ast.patterns.is_empty() || ast.ctps.len() != 1 {
            return Ok(None);
        }
        let ctp = &ast.ctps[0];
        let algorithm = ctp.algorithm.unwrap_or(self.opts.default_algorithm);
        if !Algorithm::GAM_FAMILY.contains(&algorithm) {
            return Ok(None);
        }
        let (specs, _) = seed_specs(self.graph(), ctp, 0, &[]);
        let seeds = SeedSets::new(specs)?;
        // `evaluate_ctp_streaming` runs single-queue; defer to the
        // materialised path when the policy heuristic wants balancing.
        if pick_policy(&seeds, self.opts.balance_ratio) != QueuePolicy::Single {
            return Ok(None);
        }
        let control = QueryControl::begin(&self.opts);
        control.check()?;
        let mut filters = ctp_filters(ctp, &self.opts);
        control.arm(&mut filters);
        let outcome = evaluate_ctp_streaming(
            self.graph(),
            &seeds,
            algorithm,
            filters,
            QueueOrder::SmallestFirst,
            |_| false, // first witness decides: stop immediately
        );
        control.classify(std::slice::from_ref(&outcome))?;
        Ok(Some(!outcome.results.is_empty()))
    }

    /// Executes a batch of queries with the CTP jobs of *all* queries
    /// collected into a single [`cs_core::parallel::evaluate_ctps_parallel`] dispatch, so
    /// the worker pool (`ExecOptions::threads`; `0` = available
    /// parallelism) is saturated across query boundaries — the
    /// cross-query batching lever on top of the per-query batching of
    /// step (B).
    ///
    /// Results are returned in input order; a query that fails to
    /// parse or seed reports its error without aborting the rest of
    /// the batch. Step (B) runs once for the whole batch, so each
    /// result's `ctp_time` reports the shared dispatch time, and
    /// `total_time` is the sum of the per-step times (a per-query
    /// wall clock would mostly measure the other queries). ASK
    /// queries whose join probe stays empty continue deepening from
    /// *grown* result caps — the batch dispatch was their first
    /// round.
    pub fn execute_batch(&self, queries: &[&str]) -> Vec<Result<QueryResult, EqlError>> {
        struct Staged {
            prepared: PreparedQuery,
            stats: ExecStats,
            bgp_tables: Vec<Table>,
            job_cols: Vec<Vec<Option<String>>>,
            deepenable: Vec<bool>,
            exclusions: Vec<Vec<NodeId>>,
            n_jobs: usize,
        }

        let g = self.graph();
        let control = QueryControl::begin(&self.opts);
        let mut staged: Vec<Result<Staged, EqlError>> = Vec::with_capacity(queries.len());
        let mut all_jobs: Vec<CtpJob> = Vec::new();
        for text in queries {
            let one = self.prepare(text).and_then(|prepared| {
                let mut stats = ExecStats {
                    graph_generation: g.generation(),
                    ..ExecStats::default()
                };
                let t0 = Instant::now();
                let bgp_tables = self.eval_bgps(&prepared.bgps, &mut stats);
                stats.bgp_time = t0.elapsed();
                control.check()?;
                let mut built = build_ctp_jobs(g, &prepared.ast, &bgp_tables, &self.opts)?;
                control.arm_jobs(&mut built.jobs);
                stats.seed_narrowings = built.narrowings;
                let n_jobs = built.jobs.len();
                all_jobs.extend(built.jobs);
                Ok(Staged {
                    prepared,
                    stats,
                    bgp_tables,
                    job_cols: built.job_cols,
                    deepenable: built.deepenable,
                    exclusions: built.exclusions,
                    n_jobs,
                })
            });
            staged.push(one);
        }

        // The one cross-query dispatch, through the result cache: a
        // batch repeating a CTP pays for its search once.
        let t1 = Instant::now();
        let (outcomes, events) = self.dispatch_cached(&all_jobs);
        let dispatch_time = t1.elapsed();

        let mut outcome_iter = outcomes.into_iter();
        let mut job_base = 0usize;
        staged
            .into_iter()
            .map(|one| {
                let mut st = match one {
                    Ok(st) => st,
                    Err(e) => return Err(e),
                };
                let jobs = &all_jobs[job_base..job_base + st.n_jobs];
                fold_cache_events(&mut st.stats, &events[job_base..job_base + st.n_jobs]);
                job_base += st.n_jobs;
                let mut outs: Vec<_> = outcome_iter.by_ref().take(st.n_jobs).collect();
                // A cancelled/past-deadline batch fails each affected
                // query; queries whose searches already finished keep
                // their results.
                control.classify(&outs)?;

                let truncated = ask_truncated(jobs, &outs, &st.deepenable);
                let timed_out = outs.iter().any(|o| o.stats.timed_out);
                enforce_exclusions(&mut outs, &st.exclusions);
                let materialised =
                    materialise_ctps(g, &st.prepared.ast, outs, &st.job_cols, &mut st.stats);
                st.stats.ctp_time = dispatch_time;

                if st.prepared.ast.form == QueryForm::Ask && truncated && !timed_out {
                    let mut probe = st.bgp_tables.clone();
                    probe.extend(materialised.0.iter().cloned());
                    if join_all(probe).is_empty() {
                        // The batch dispatch was this query's first
                        // deepening round: continue from grown result
                        // caps (re-running at the initial caps would
                        // repeat the search the probe just rejected).
                        let mut retry_jobs = jobs.to_vec();
                        grow_ask_limits(&mut retry_jobs, &st.deepenable);
                        let t2 = Instant::now();
                        let deepened = self.run_ctp_rounds(
                            &st.prepared.ast,
                            &st.bgp_tables,
                            &mut retry_jobs,
                            &st.job_cols,
                            &st.deepenable,
                            &st.exclusions,
                            &control,
                            &mut st.stats,
                        )?;
                        st.stats.ctp_time += t2.elapsed();
                        return Ok(assemble(
                            &st.prepared.ast,
                            st.bgp_tables,
                            deepened,
                            st.stats,
                            None,
                        ));
                    }
                }
                Ok(assemble(
                    &st.prepared.ast,
                    st.bgp_tables,
                    materialised,
                    st.stats,
                    None,
                ))
            })
            .collect()
    }

    /// Opens a pull-based stream over a query's connecting trees: the
    /// CTP search advances only as far as the results the caller
    /// consumes, so `stream.take(k)` is TOP-k-style early termination
    /// — the consumer the ROADMAP noted was missing for
    /// [`cs_core::evaluate_ctp_streaming`]'s machinery.
    ///
    /// Streaming requires a `SELECT` query with exactly one CTP, a
    /// GAM-family algorithm (BFT is batch-only), and no `SCORE`
    /// clause (ranking needs the materialised result set). Edge
    /// patterns are allowed: step (A) runs eagerly (through the plan
    /// cache) to derive the CTP's seed sets, and the stream yields the
    /// CTP's trees — per-seed bindings travel on each
    /// [`ResultTree::seeds`].
    ///
    /// With [`ExecOptions::search_threads`] `> 1` the stream is backed
    /// by the partitioned parallel engine: the search runs to
    /// completion across the workers when the stream is opened, and
    /// the iterator then yields the canonical-ordered results. That
    /// trades per-result laziness (`take(k)` no longer bounds the
    /// search) for multi-core latency on the full result set — use
    /// `search_threads == 1` (the default) when pull-paced early
    /// termination is what matters.
    pub fn execute_streaming(&self, q: &PreparedQuery) -> Result<ResultStream<'_>, EqlError> {
        let ast = &q.ast;
        if ast.form != QueryForm::Select {
            return Err(EqlError::Validate(
                "streaming execution requires a SELECT query (use `ask` for ASK)".into(),
            ));
        }
        if ast.ctps.len() != 1 {
            return Err(EqlError::Validate(format!(
                "streaming execution requires exactly one CTP, query has {}",
                ast.ctps.len()
            )));
        }
        let ctp = &ast.ctps[0];
        if ctp.filters.score.is_some() {
            return Err(EqlError::Validate(
                "SCORE/TOP ranks the full result set and cannot stream; \
                 drop the clause or use `execute`"
                    .into(),
            ));
        }
        let algorithm = ctp.algorithm.unwrap_or(self.opts.default_algorithm);
        if !Algorithm::GAM_FAMILY.contains(&algorithm) {
            return Err(EqlError::Validate(format!(
                "streaming execution requires a GAM-family algorithm, got {algorithm}"
            )));
        }

        let control = QueryControl::begin(&self.opts);
        let mut stats = ExecStats {
            graph_generation: self.graph().generation(),
            ..ExecStats::default()
        };
        let t0 = Instant::now();
        let bgp_tables = self.eval_bgps(&q.bgps, &mut stats);
        stats.bgp_time = t0.elapsed();
        control.check()?;

        let (specs, _) = seed_specs(self.graph(), ctp, 0, &bgp_tables);
        let seeds = SeedSets::new(specs)?;
        let policy = pick_policy(&seeds, self.opts.balance_ratio);
        let mut filters = ctp_filters(ctp, &self.opts);
        filters.max_results = ctp.filters.limit;
        // Armed control: the lazily pulled stream stops early when the
        // flag is raised or the budget elapses (visible as
        // `stats().cancelled` / `stats().timed_out`); the eager
        // partitioned path below reports the typed error directly.
        control.arm(&mut filters);

        let intra = resolve_search_threads(
            self.opts.search_threads,
            resolve_threads(self.opts.threads),
            1,
        );
        let inner = if intra > 1 {
            // Partitioned engine: evaluate across the workers now,
            // stream the canonical-ordered outcome.
            let start = Instant::now();
            let outcome = cs_core::evaluate_ctp_partitioned(
                self.graph(),
                &seeds,
                algorithm,
                filters,
                QueueOrder::SmallestFirst,
                policy,
                intra,
            );
            control.classify(std::slice::from_ref(&outcome))?;
            StreamInner::Eager {
                trees: outcome.results.into_trees().into_iter(),
                stats: outcome.stats,
                start,
            }
        } else {
            StreamInner::Lazy(Box::new(stream_ctp(
                self.graph(),
                seeds,
                algorithm,
                filters,
                QueueOrder::SmallestFirst,
                policy,
            )))
        };
        Ok(ResultStream {
            inner,
            out_var: ctp.out_var.clone(),
            exec_stats: stats,
        })
    }

    /// Step (A): plan every BGP component through the session cache
    /// and evaluate the plans, recording plans and cache-hit deltas in
    /// `stats`.
    fn eval_bgps(&self, bgps: &[Bgp], stats: &mut ExecStats) -> Vec<Table> {
        let mut cache = self.cache.borrow_mut();
        let (h0, m0) = (cache.hits(), cache.misses());
        let tables = bgps
            .iter()
            .map(|bgp| {
                let plan = cache.plan(self.graph(), bgp);
                let table = eval_bgp_with_plan(self.graph(), bgp, &plan);
                stats.plans.push(plan);
                table
            })
            .collect();
        stats.plan_cache_hits += cache.hits() - h0;
        stats.plan_cache_misses += cache.misses() - m0;
        tables
    }
}

/// Step (C): join the BGP and CTP tables, project the head, and wrap
/// everything into a [`QueryResult`].
fn assemble(
    ast: &QueryAst,
    bgp_tables: Vec<Table>,
    materialised: CtpMaterialisation,
    mut stats: ExecStats,
    t_total: Option<Instant>,
) -> QueryResult {
    let (ctp_tables, trees, scores) = materialised;
    let t2 = Instant::now();
    let mut tables: Vec<Table> = bgp_tables;
    tables.extend(ctp_tables);
    let joined = join_all(tables);
    let head_refs: Vec<&str> = ast.head.iter().map(String::as_str).collect();
    let table = joined.project(&head_refs).distinct();
    stats.join_time = t2.elapsed();

    let boolean = match ast.form {
        QueryForm::Ask => Some(!joined.is_empty()),
        QueryForm::Select => None,
    };
    // Batched executions interleave several queries on one clock, so
    // their per-query total is the sum of this query's step times.
    stats.total_time = match t_total {
        Some(t) => t.elapsed(),
        None => stats.bgp_time + stats.ctp_time + stats.join_time,
    };

    QueryResult {
        table,
        trees,
        scores,
        stats,
        boolean,
    }
}

/// The two stream backings: the sequential engine pulled lazily, or a
/// completed partitioned search iterated eagerly.
enum StreamInner<'g> {
    Lazy(Box<CtpStream<'g>>),
    Eager {
        trees: std::vec::IntoIter<ResultTree>,
        stats: SearchStats,
        start: Instant,
    },
}

/// A pull-based stream over one query's connecting trees, created by
/// [`Session::execute_streaming`].
///
/// With the default sequential backing, dropping the stream abandons
/// the remaining search — consuming `k` trees costs roughly what a
/// `LIMIT k` execution would, without having to know `k` up front.
/// With [`ExecOptions::search_threads`] `> 1` the backing search ran
/// to completion on the partitioned parallel engine when the stream
/// was opened, and iteration only hands out the buffered results.
pub struct ResultStream<'g> {
    inner: StreamInner<'g>,
    out_var: String,
    exec_stats: ExecStats,
}

impl ResultStream<'_> {
    /// The CTP output variable the streamed trees bind.
    pub fn out_var(&self) -> &str {
        &self.out_var
    }

    /// Step (A) statistics: BGP time, plans, and plan-cache counters
    /// (CTP search counters accumulate in [`ResultStream::stats`]).
    pub fn exec_stats(&self) -> &ExecStats {
        &self.exec_stats
    }

    /// The search statistics accumulated so far; with the sequential
    /// backing they keep growing while the stream is pulled, with the
    /// partitioned backing they are the completed search's totals
    /// (including the per-worker breakdown).
    pub fn stats(&self) -> &SearchStats {
        match &self.inner {
            StreamInner::Lazy(s) => s.stats(),
            StreamInner::Eager { stats, .. } => stats,
        }
    }

    /// Wall-clock time since the stream was opened.
    pub fn elapsed(&self) -> Duration {
        match &self.inner {
            StreamInner::Lazy(s) => s.elapsed(),
            StreamInner::Eager { start, .. } => start.elapsed(),
        }
    }
}

impl Iterator for ResultStream<'_> {
    type Item = ResultTree;

    fn next(&mut self) -> Option<ResultTree> {
        match &mut self.inner {
            StreamInner::Lazy(s) => s.next(),
            StreamInner::Eager { trees, .. } => trees.next(),
        }
    }
}
