//! Recursive-descent parser for the EQL surface syntax.
//!
//! ```text
//! query   := SELECT head WHERE '{' (edge_pattern | ctp)* '}'
//! head    := ident (',' ident)*
//! edge_pattern := '(' term ',' term ',' term ')'
//! ctp     := CONNECT '(' term (',' term)+ '->' ident ')' filter*
//! filter  := UNI | LABEL str (',' str)* | MAX int | SCORE ident [TOP int]
//!          | TIMEOUT int(ms) | LIMIT int | ALGORITHM ident
//! term    := string | ident [':' cond (AND cond)*]
//! cond    := ('label' | 'type' | ident) ('=' | '<' | '<=' | '~') value
//! value   := string | int | float
//! ```
//!
//! The paper's query Q1 is written:
//!
//! ```text
//! SELECT x, y, z, w WHERE {
//!   (x : type = "entrepreneur", "citizenOf", "USA")
//!   (y : type = "entrepreneur", "citizenOf", "France")
//!   (z : type = "politician",  "citizenOf", "France")
//!   CONNECT(x, y, z -> w)
//! }
//! ```

use crate::ast::{CtpAst, CtpFiltersAst, EdgePatternAst, QueryAst, TermAst};
use crate::lexer::{lex, Token, TokenKind};
use cs_core::Algorithm;
use cs_graph::{CmpOp, Condition, Predicate, PropRef, Value};
use std::fmt;
use std::time::Duration;

/// A parse (or validation) error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// Byte offset in the query text.
    pub pos: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            pos: self.peek().pos,
        })
    }

    fn expect_tok(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    /// Consumes an identifier and returns it.
    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected an identifier, found {other}")),
        }
    }

    /// True if the next token is the given keyword (case-insensitive);
    /// consumes it if so.
    fn keyword(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = &self.peek().kind {
            if s.eq_ignore_ascii_case(kw) {
                self.next();
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn query(&mut self) -> Result<QueryAst, ParseError> {
        let (form, head) = if self.keyword("ASK") {
            (crate::ast::QueryForm::Ask, Vec::new())
        } else if self.keyword("SELECT") {
            let mut head = vec![self.ident()?];
            while self.peek().kind == TokenKind::Comma {
                self.next();
                head.push(self.ident()?);
            }
            (crate::ast::QueryForm::Select, head)
        } else {
            return self.err("queries start with SELECT or ASK");
        };
        if !self.keyword("WHERE") {
            return self.err("expected WHERE after the query head");
        }
        self.expect_tok(&TokenKind::LBrace)?;

        let mut patterns = Vec::new();
        let mut ctps = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.next();
                    break;
                }
                TokenKind::LParen => patterns.push(self.edge_pattern()?),
                TokenKind::Ident(s) if s.eq_ignore_ascii_case("CONNECT") => ctps.push(self.ctp()?),
                other => {
                    return self.err(format!(
                        "expected an edge pattern, CONNECT, or `}}`, found {other}"
                    ))
                }
            }
        }
        self.expect_tok(&TokenKind::Eof)?;
        let q = QueryAst {
            form,
            head,
            patterns,
            ctps,
        };
        self.validate(&q)?;
        Ok(q)
    }

    fn edge_pattern(&mut self) -> Result<EdgePatternAst, ParseError> {
        self.expect_tok(&TokenKind::LParen)?;
        let src = self.term()?;
        self.expect_tok(&TokenKind::Comma)?;
        let edge = self.term()?;
        self.expect_tok(&TokenKind::Comma)?;
        let dst = self.term()?;
        self.expect_tok(&TokenKind::RParen)?;
        Ok(EdgePatternAst { src, edge, dst })
    }

    fn ctp(&mut self) -> Result<CtpAst, ParseError> {
        assert!(self.keyword("CONNECT"));
        self.expect_tok(&TokenKind::LParen)?;
        let mut terms = vec![self.term()?];
        loop {
            match &self.peek().kind {
                TokenKind::Comma => {
                    self.next();
                    terms.push(self.term()?);
                }
                TokenKind::Arrow => break,
                other => return self.err(format!("expected `,` or `->`, found {other}")),
            }
        }
        self.expect_tok(&TokenKind::Arrow)?;
        let out_var = self.ident()?;
        self.expect_tok(&TokenKind::RParen)?;
        if terms.len() < 2 {
            return self.err("a CTP connects at least 2 node groups");
        }

        let mut filters = CtpFiltersAst::default();
        let mut algorithm = None;
        loop {
            if self.keyword("UNI") {
                filters.uni = true;
            } else if self.keyword("LABEL") {
                let mut labels = vec![self.string()?];
                while self.peek().kind == TokenKind::Comma {
                    self.next();
                    labels.push(self.string()?);
                }
                filters.labels = Some(labels);
            } else if self.keyword("MAX") {
                filters.max_edges = Some(self.usize_lit()?);
            } else if self.keyword("SCORE") {
                let name = self.ident()?;
                if cs_core::score::by_name(&name).is_none() {
                    return self.err(format!("unknown score function `{name}`"));
                }
                let top = if self.keyword("TOP") {
                    Some(self.usize_lit()?)
                } else {
                    None
                };
                filters.score = Some((name, top));
            } else if self.keyword("TIMEOUT") {
                filters.timeout = Some(Duration::from_millis(self.usize_lit()? as u64));
            } else if self.keyword("LIMIT") {
                filters.limit = Some(self.usize_lit()?);
            } else if self.keyword("ALGORITHM") {
                let name = self.ident()?;
                match name.parse::<Algorithm>() {
                    Ok(a) => algorithm = Some(a),
                    Err(e) => return self.err(e),
                }
            } else {
                break;
            }
        }

        Ok(CtpAst {
            terms,
            out_var,
            filters,
            algorithm,
        })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Str(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected a string literal, found {other}")),
        }
    }

    fn usize_lit(&mut self) -> Result<usize, ParseError> {
        match self.peek().kind {
            TokenKind::Int(i) if i >= 0 => {
                self.next();
                Ok(i as usize)
            }
            ref other => self.err(format!("expected a non-negative integer, found {other}")),
        }
    }

    fn term(&mut self) -> Result<TermAst, ParseError> {
        match &self.peek().kind {
            TokenKind::Str(s) => {
                let t = TermAst::constant(s);
                self.next();
                Ok(t)
            }
            TokenKind::Ident(_) => {
                let var = self.ident()?;
                if self.peek().kind == TokenKind::Colon {
                    self.next();
                    let pred = self.predicate()?;
                    Ok(TermAst::pred(&var, pred))
                } else {
                    Ok(TermAst::var(&var))
                }
            }
            other => self.err(format!(
                "expected a variable or string constant, found {other}"
            )),
        }
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let mut pred = Predicate {
            conditions: vec![self.condition()?],
        };
        while self.peek_keyword("AND") {
            self.next();
            pred.conditions.push(self.condition()?);
        }
        Ok(pred)
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        let prop_name = self.ident()?;
        let prop = match prop_name.to_ascii_lowercase().as_str() {
            "label" => PropRef::Label,
            "type" => PropRef::Type,
            _ => PropRef::Named(prop_name),
        };
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Tilde => CmpOp::Like,
            ref other => return self.err(format!("expected `=`, `<`, `<=` or `~`, found {other}")),
        };
        self.next();
        let constant = match &self.peek().kind {
            TokenKind::Str(s) => Value::str(s),
            TokenKind::Int(i) => Value::Int(*i),
            TokenKind::Float(x) => Value::Float(*x),
            other => return self.err(format!("expected a literal value, found {other}")),
        };
        self.next();
        Ok(Condition { prop, op, constant })
    }

    /// Static validation (Defs. 2.5, 2.6).
    fn validate(&self, q: &QueryAst) -> Result<(), ParseError> {
        let body = q.body_vars();
        for h in &q.head {
            if !body.iter().any(|v| v == h) {
                return Err(ParseError {
                    message: format!("head variable `{h}` does not occur in the body"),
                    pos: 0,
                });
            }
        }
        if q.patterns.is_empty() && q.ctps.is_empty() {
            return Err(ParseError {
                message: "the body must contain at least one pattern (k + l > 0)".into(),
                pos: 0,
            });
        }
        if let Some(v) = q.duplicate_out_var() {
            return Err(ParseError {
                message: crate::ast::duplicate_out_var_message(v),
                pos: 0,
            });
        }
        // Each underlined variable appears exactly once in the query
        // body (Def. 2.6); it may appear in the head.
        for (i, c) in q.ctps.iter().enumerate() {
            let mut occurrences = 0usize;
            for p in &q.patterns {
                for t in [&p.src, &p.edge, &p.dst] {
                    if t.var.as_deref() == Some(c.out_var.as_str()) {
                        occurrences += 1;
                    }
                }
            }
            for (j, c2) in q.ctps.iter().enumerate() {
                for t in &c2.terms {
                    if t.var.as_deref() == Some(c.out_var.as_str()) {
                        occurrences += 1;
                    }
                }
                if i != j && c2.out_var == c.out_var {
                    occurrences += 1;
                }
            }
            if occurrences > 0 {
                return Err(ParseError {
                    message: format!(
                        "CTP output variable `{}` must appear exactly once in the query",
                        c.out_var
                    ),
                    pos: 0,
                });
            }
            // All CTP variables pairwise distinct (Def. 2.5).
            let mut names: Vec<&str> = c.terms.iter().filter_map(|t| t.var.as_deref()).collect();
            names.push(&c.out_var);
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            if names.len() != before {
                return Err(ParseError {
                    message: format!("variables of CTP `{}` must be pairwise distinct", c.out_var),
                    pos: 0,
                });
            }
        }
        Ok(())
    }
}

/// Parses an EQL query.
pub fn parse(input: &str) -> Result<QueryAst, ParseError> {
    let toks = lex(input).map_err(|e| ParseError {
        message: e.message,
        pos: e.pos,
    })?;
    Parser { toks, pos: 0 }.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: &str = r#"
        SELECT x, y, z, w WHERE {
            (x : type = "entrepreneur", "citizenOf", "USA")
            (y : type = "entrepreneur", "citizenOf", "France")
            (z : type = "politician",  "citizenOf", "France")
            CONNECT(x, y, z -> w)
        }
    "#;

    #[test]
    fn parses_q1() {
        let q = parse(Q1).unwrap();
        assert_eq!(q.head, ["x", "y", "z", "w"]);
        assert_eq!(q.patterns.len(), 3);
        assert_eq!(q.ctps.len(), 1);
        let c = &q.ctps[0];
        assert_eq!(c.out_var, "w");
        assert_eq!(c.terms.len(), 3);
        assert_eq!(c.terms[0].var.as_deref(), Some("x"));
    }

    #[test]
    fn parses_all_filters() {
        let q = parse(
            r#"SELECT w WHERE {
                CONNECT("Alice", "Bob" -> w)
                    UNI LABEL "a", "b" MAX 7 SCORE edgecount TOP 3
                    TIMEOUT 500 LIMIT 9 ALGORITHM molesp
            }"#,
        )
        .unwrap();
        let f = &q.ctps[0].filters;
        assert!(f.uni);
        assert_eq!(
            f.labels.as_deref(),
            Some(&["a".to_string(), "b".to_string()][..])
        );
        assert_eq!(f.max_edges, Some(7));
        assert_eq!(f.score, Some(("edgecount".to_string(), Some(3))));
        assert_eq!(f.timeout, Some(Duration::from_millis(500)));
        assert_eq!(f.limit, Some(9));
        assert_eq!(q.ctps[0].algorithm, Some(Algorithm::MoLesp));
    }

    #[test]
    fn predicate_conjunction() {
        let q =
            parse(r#"SELECT x WHERE { (x : label ~ "*lice" AND type = "entrepreneur", "r", y) }"#)
                .unwrap();
        assert_eq!(q.patterns[0].src.pred.conditions.len(), 2);
    }

    #[test]
    fn numeric_property_condition() {
        let q = parse(r#"SELECT x WHERE { (x : age < 50, "r", y) }"#).unwrap();
        let c = &q.patterns[0].src.pred.conditions[0];
        assert_eq!(c.prop, PropRef::Named("age".into()));
        assert_eq!(c.op, CmpOp::Lt);
    }

    #[test]
    fn rejects_head_not_in_body() {
        let e = parse(r#"SELECT q WHERE { (x, "r", y) }"#).unwrap_err();
        assert!(e.message.contains("head variable"));
    }

    #[test]
    fn rejects_reused_out_var() {
        let e = parse(r#"SELECT w WHERE { (w, "r", y) CONNECT(x, y -> w) }"#).unwrap_err();
        assert!(e.message.contains("exactly once"));
    }

    #[test]
    fn rejects_duplicate_out_vars_across_ctps() {
        let e = parse(r#"SELECT x WHERE { CONNECT(x, y -> w) CONNECT(a, b -> w) }"#).unwrap_err();
        assert!(
            e.message.contains("duplicate CTP output variable"),
            "{}",
            e.message
        );
    }

    #[test]
    fn rejects_duplicate_ctp_vars() {
        let e = parse(r#"SELECT w WHERE { CONNECT(x, x -> w) }"#).unwrap_err();
        assert!(e.message.contains("pairwise distinct"));
    }

    #[test]
    fn rejects_single_group_ctp() {
        let e = parse(r#"SELECT w WHERE { CONNECT(x -> w) }"#).unwrap_err();
        assert!(e.message.contains("at least 2"));
    }

    #[test]
    fn rejects_unknown_score_and_algorithm() {
        assert!(parse(r#"SELECT w WHERE { CONNECT(x, y -> w) SCORE nope }"#)
            .unwrap_err()
            .message
            .contains("unknown score function"));
        assert!(
            parse(r#"SELECT w WHERE { CONNECT(x, y -> w) ALGORITHM nope }"#)
                .unwrap_err()
                .message
                .contains("unknown algorithm")
        );
    }

    #[test]
    fn rejects_empty_body() {
        assert!(parse("SELECT x WHERE { }").is_err());
    }

    #[test]
    fn error_positions_point_into_text() {
        let e = parse("SELECT x WHERE [").unwrap_err();
        assert!(e.pos >= 15);
        assert!(e.to_string().contains("byte"));
    }
}

#[cfg(test)]
mod ask_parser_tests {
    use super::*;
    use crate::ast::QueryForm;

    #[test]
    fn ask_form_parses() {
        let q = parse(r#"ASK WHERE { (x, "r", y) }"#).unwrap();
        assert_eq!(q.form, QueryForm::Ask);
        assert!(q.head.is_empty());
        let q = parse(r#"SELECT x WHERE { (x, "r", y) }"#).unwrap();
        assert_eq!(q.form, QueryForm::Select);
    }

    #[test]
    fn other_verbs_rejected() {
        let e = parse(r#"DESCRIBE x WHERE { (x, "r", y) }"#).unwrap_err();
        assert!(e.message.contains("SELECT or ASK"));
    }
}
