//! Tokeniser for the EQL surface syntax.

use std::fmt;

/// A lexical token with its byte offset (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the input.
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognised by the parser,
    /// case-insensitively).
    Ident(String),
    /// A double-quoted string literal (escapes: `\"` and `\\`).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `~`
    Tilde,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Float(x) => write!(f, "float {x}"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Tilde => write!(f, "`~`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset.
    pub pos: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises EQL text. `#` starts a line comment.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    pos: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    pos: i,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    pos: i,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    pos: i,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    pos: i,
                });
                i += 1;
            }
            ':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    pos: i,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    pos: i,
                });
                i += 1;
            }
            '~' => {
                tokens.push(Token {
                    kind: TokenKind::Tilde,
                    pos: i,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        pos: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        pos: i,
                    });
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    let (kind, next) = lex_number(input, i)?;
                    tokens.push(Token { kind, pos: i });
                    i = next;
                } else {
                    return Err(LexError {
                        message: "expected `->` or a negative number after `-`".into(),
                        pos: i,
                    });
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                pos: start,
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                _ => {
                                    return Err(LexError {
                                        message: "unknown escape".into(),
                                        pos: i,
                                    })
                                }
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            // Multi-byte UTF-8: copy the full char.
                            let ch_len = utf8_len(b);
                            s.push_str(&input[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    pos: start,
                });
            }
            _ if c.is_ascii_digit() => {
                let (kind, next) = lex_number(input, i)?;
                tokens.push(Token { kind, pos: i });
                i = next;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    pos: start,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    pos: i,
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: input.len(),
    });
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

fn lex_number(input: &str, start: usize) -> Result<(TokenKind, usize), LexError> {
    let bytes = input.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    let text = &input[start..i];
    if is_float {
        text.parse::<f64>()
            .map(|x| (TokenKind::Float(x), i))
            .map_err(|e| LexError {
                message: format!("bad float: {e}"),
                pos: start,
            })
    } else {
        text.parse::<i64>()
            .map(|x| (TokenKind::Int(x), i))
            .map_err(|e| LexError {
                message: format!("bad integer: {e}"),
                pos: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds(r#"SELECT x, w WHERE { (x, "r", y) }"#),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Comma,
                TokenKind::Ident("w".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::LBrace,
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::Comma,
                TokenKind::Str("r".into()),
                TokenKind::Comma,
                TokenKind::Ident("y".into()),
                TokenKind::RParen,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_and_numbers() {
        assert_eq!(
            kinds("x <= 3 < -2.5 = ~ ->"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Le,
                TokenKind::Int(3),
                TokenKind::Lt,
                TokenKind::Float(-2.5),
                TokenKind::Eq,
                TokenKind::Tilde,
                TokenKind::Arrow,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        assert_eq!(
            kinds(r#""a\"b" "héllo""#),
            vec![
                TokenKind::Str("a\"b".into()),
                TokenKind::Str("héllo".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("x # the rest is ignored\ny"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("- x").is_err());
        let e = lex("\"bad\\q\"").unwrap_err();
        assert!(e.to_string().contains("escape"));
    }

    #[test]
    fn positions_recorded() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
    }
}
