//! Abstract syntax of EQL queries (paper Defs. 2.3–2.6, 2.11).

use cs_core::Algorithm;
use cs_graph::Predicate;
use std::time::Duration;

/// One position of an edge pattern or CTP: a (possibly hidden) variable
/// plus the predicate constraining it. The paper's short syntax hides
/// the variable behind a constant; lowering assigns hidden names.
#[derive(Debug, Clone, PartialEq)]
pub struct TermAst {
    /// Variable name; `None` for the hidden variable of a constant.
    pub var: Option<String>,
    /// The predicate (empty for a bare variable).
    pub pred: Predicate,
}

impl TermAst {
    /// A bare variable.
    pub fn var(name: &str) -> Self {
        TermAst {
            var: Some(name.to_string()),
            pred: Predicate::any(),
        }
    }

    /// A constant (label-equality over a hidden variable).
    pub fn constant(label: &str) -> Self {
        TermAst {
            var: None,
            pred: Predicate::label(label),
        }
    }

    /// A variable with a predicate.
    pub fn pred(name: &str, pred: Predicate) -> Self {
        TermAst {
            var: Some(name.to_string()),
            pred,
        }
    }
}

/// An edge pattern `(p1, p2, p3)` (Def. 2.3).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePatternAst {
    /// Source-node term.
    pub src: TermAst,
    /// Edge term.
    pub edge: TermAst,
    /// Target-node term.
    pub dst: TermAst,
}

/// The CTP filters (paper §2, "CTP filters").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CtpFiltersAst {
    /// `UNI`.
    pub uni: bool,
    /// `LABEL "l1", "l2", …`.
    pub labels: Option<Vec<String>>,
    /// `MAX n`.
    pub max_edges: Option<usize>,
    /// `SCORE σ [TOP k]`.
    pub score: Option<(String, Option<usize>)>,
    /// `TIMEOUT ms`.
    pub timeout: Option<Duration>,
    /// `LIMIT k` (stop after k results).
    pub limit: Option<usize>,
}

/// A connecting tree pattern `(g1, …, gm, v_{m+1})` (Def. 2.5), written
/// `CONNECT(t1, …, tm -> w)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CtpAst {
    /// The m seed terms.
    pub terms: Vec<TermAst>,
    /// The underlined output variable bound to connecting trees.
    pub out_var: String,
    /// Attached filters.
    pub filters: CtpFiltersAst,
    /// Per-CTP algorithm override (`ALGORITHM molesp`), defaulting to
    /// the executor's choice.
    pub algorithm: Option<Algorithm>,
}

/// A parsed EQL query (Def. 2.6 core query + Def. 2.11 filters):
/// `SELECT head WHERE { edge patterns + CTPs }`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAst {
    /// The query form.
    pub form: QueryForm,
    /// Head variables (the projection; empty for `ASK`).
    pub head: Vec<String>,
    /// Edge patterns; connected components form the BGPs.
    pub patterns: Vec<EdgePatternAst>,
    /// The CTPs.
    pub ctps: Vec<CtpAst>,
}

/// The shared error message for [`QueryAst::duplicate_out_var`]
/// violations (used verbatim by both parse- and execute-time checks).
pub(crate) fn duplicate_out_var_message(var: &str) -> String {
    format!("duplicate CTP output variable `{var}`: each CTP must bind a distinct output variable")
}

/// Whether the query returns bindings or only checks satisfiability
/// (the "check-only" semantics class of the paper's Virtuoso
/// baselines, §5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryForm {
    /// `SELECT …`: return the projected bindings.
    #[default]
    Select,
    /// `ASK …`: return whether at least one answer exists; CTPs
    /// without an explicit `LIMIT` evaluate with `LIMIT 1`.
    Ask,
}

impl QueryAst {
    /// The first CTP output variable bound by more than one CTP, if
    /// any. Duplicates would silently overwrite each other's tree and
    /// score entries during execution, so both the parser and the
    /// executor reject them via this check.
    pub fn duplicate_out_var(&self) -> Option<&str> {
        self.ctps.iter().enumerate().find_map(|(i, c)| {
            self.ctps[..i]
                .iter()
                .any(|c2| c2.out_var == c.out_var)
                .then_some(c.out_var.as_str())
        })
    }

    /// All body variable names (explicit ones), in first-appearance
    /// order — hidden constant variables excluded.
    pub fn body_vars(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let push = |v: &Option<String>, out: &mut Vec<String>| {
            if let Some(name) = v {
                if !out.iter().any(|x| x == name) {
                    out.push(name.clone());
                }
            }
        };
        for p in &self.patterns {
            push(&p.src.var, &mut out);
            push(&p.edge.var, &mut out);
            push(&p.dst.var, &mut out);
        }
        for c in &self.ctps {
            for t in &c.terms {
                push(&t.var, &mut out);
            }
            if !out.iter().any(|x| x == &c.out_var) {
                out.push(c.out_var.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_vars_dedup_and_order() {
        let q = QueryAst {
            form: QueryForm::Select,
            head: vec!["x".into()],
            patterns: vec![EdgePatternAst {
                src: TermAst::var("x"),
                edge: TermAst::constant("r"),
                dst: TermAst::var("y"),
            }],
            ctps: vec![CtpAst {
                terms: vec![TermAst::var("x"), TermAst::var("z")],
                out_var: "w".into(),
                filters: CtpFiltersAst::default(),
                algorithm: None,
            }],
        };
        assert_eq!(q.body_vars(), ["x", "y", "z", "w"]);
    }

    #[test]
    fn term_constructors() {
        let t = TermAst::constant("Alice");
        assert!(t.var.is_none());
        assert_eq!(t.pred.eq_label(), Some("Alice"));
        let v = TermAst::var("x");
        assert!(v.pred.is_any());
    }
}
