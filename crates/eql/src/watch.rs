//! Standing queries over a live graph: register a query with
//! [`Session::watch`], mutate the graph, and [`Watch::poll`] emits the
//! **result delta** — which answer rows appeared and which disappeared
//! — instead of making the caller re-run and re-diff by hand.
//!
//! A poll is layered so the expensive step (full re-evaluation) runs
//! only when the mutations could actually change the answer:
//!
//! 1. **Generation check** — the graph's
//!    [`generation`](cs_graph::Graph::generation) is unchanged since
//!    the last poll: nothing to do ([`WatchSkip::Unchanged`]).
//! 2. **Label footprint** — every label a mutation batch touched
//!    (edge labels, inserted-node labels and types, from the graph's
//!    [`mutation log`](cs_graph::Graph::mutations_since)) is disjoint
//!    from the labels the query can observe: the answer provably did
//!    not change ([`WatchSkip::LabelsDisjoint`]). Queries with an
//!    unconstrained traversal (a CTP without `LABEL`, a non-equality
//!    edge predicate) observe every label and never take this skip.
//! 3. **Reach probe** — for pattern-free queries, each CTP runs the
//!    [`cs_core::delta`] probe: a result tree can appear or disappear
//!    only if it contains a delta-touched node, so if some explicit
//!    seed set is unreachable from every touched node (within `MAX`,
//!    through `LABEL`-allowed edges), the delta is provably irrelevant
//!    ([`WatchSkip::DeltaUnreachable`]).
//! 4. **Re-evaluate and diff** — otherwise the query re-runs (plans
//!    and caches already invalidated by [`Session::mutate`]) and the
//!    canonical row renderings are diffed against the previous
//!    snapshot.
//!
//! Rows are rendered with node identities (`Alice(n0)`), so the diff
//! is stable across re-evaluations and graph compactions (node ids
//! survive [`compact`](cs_graph::Graph::compact); edge ids do not, and
//! are therefore never part of a rendering).
//!
//! ```
//! use cs_eql::Session;
//! use cs_graph::{figure1, matching_nodes, Predicate};
//!
//! let mut session = Session::from_graph(figure1());
//! let mut watch = session
//!     .watch(r#"SELECT x WHERE { (x, "citizenOf", "France") }"#)
//!     .unwrap();
//!
//! // An unrelated mutation is skipped without re-evaluating…
//! session.mutate(vec![cs_graph::Mutation::InsertNode {
//!     label: "Mars".into(),
//!     types: vec!["place".into()],
//! }]).unwrap();
//! let delta = watch.poll(&session).unwrap();
//! assert!(delta.skipped.is_some() && delta.is_empty());
//!
//! // …while a matching edge insert is reported as an added row.
//! let bob = matching_nodes(session.graph(), &Predicate::label("Bob"))[0];
//! let france = matching_nodes(session.graph(), &Predicate::label("France"))[0];
//! session.mutate(vec![cs_graph::Mutation::InsertEdge {
//!     src: bob,
//!     label: "citizenOf".into(),
//!     dst: france,
//! }]).unwrap();
//! let delta = watch.poll(&session).unwrap();
//! assert_eq!(delta.added.len(), 1);
//! assert!(delta.added[0].contains("Bob"));
//! ```

use crate::ast::{QueryAst, QueryForm, TermAst};
use crate::exec::{ctp_filters, seed_specs, EqlError, QueryResult};
use crate::session::{PreparedQuery, Session};
use cs_core::delta::{probe_delta, DEFAULT_PROBE_BUDGET};
use cs_core::SeedSets;
use cs_engine::Binding;
use cs_graph::{Graph, NodeId};

/// Why a [`Watch::poll`] proved re-evaluation unnecessary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchSkip {
    /// The graph generation is unchanged since the last poll.
    Unchanged,
    /// Every mutated label is outside the query's label footprint.
    LabelsDisjoint,
    /// The [`cs_core::delta`] reach probe proved no result tree
    /// through the delta can exist.
    DeltaUnreachable,
}

/// One poll's outcome: the rows that appeared and disappeared since
/// the previous poll (empty on a skip), and how the poll was decided.
#[derive(Debug)]
pub struct WatchDelta {
    /// The graph generation this delta is current as of.
    pub generation: u64,
    /// Rendered rows present now but not at the previous poll.
    pub added: Vec<String>,
    /// Rendered rows present at the previous poll but gone now.
    pub removed: Vec<String>,
    /// `Some` when a relevance layer proved re-evaluation unnecessary
    /// (`added`/`removed` are then empty by construction); `None` when
    /// the query actually re-ran.
    pub skipped: Option<WatchSkip>,
    /// Nodes the reach probe visited (0 unless layer 3 ran).
    pub probe_visited: usize,
}

impl WatchDelta {
    /// True if the answer did not change.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A standing query created by [`Session::watch`]: holds the prepared
/// query, the last generation polled, and the canonical rendering of
/// the current answer rows.
///
/// A watch must be polled against the session it was created on (or a
/// successor over a clone of the same graph, as the server's epoch
/// swap produces — generations are preserved by [`Graph::clone`]).
pub struct Watch {
    prepared: PreparedQuery,
    generation: u64,
    /// Sorted canonical renderings of the current answer rows.
    rows: Vec<String>,
    /// Sorted label footprint of the query; meaningful only when
    /// `wildcard` is false.
    labels: Vec<String>,
    /// True if the query can observe edges/nodes of any label, so the
    /// footprint skip never applies.
    wildcard: bool,
}

impl Session<'_> {
    /// Registers a standing `SELECT` query: executes it once for the
    /// baseline answer and returns the [`Watch`] to poll after
    /// mutations. See the [module docs](crate::watch) for the
    /// relevance layers a poll goes through.
    pub fn watch(&self, text: &str) -> Result<Watch, EqlError> {
        let prepared = self.prepare(text)?;
        if prepared.ast().form != QueryForm::Select {
            return Err(EqlError::Validate(
                "watch requires a SELECT query (poll an ASK by re-running it)".into(),
            ));
        }
        let result = self.execute(&prepared)?;
        let rows = render_rows(self.graph(), &result);
        let (labels, wildcard) = label_footprint(prepared.ast());
        Ok(Watch {
            prepared,
            generation: self.graph().generation(),
            rows,
            labels,
            wildcard,
        })
    }
}

impl Watch {
    /// The generation the watch last synchronised with.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The current answer's rendered rows, sorted.
    pub fn rows(&self) -> &[String] {
        &self.rows
    }

    /// Brings the watch up to date with `session`'s graph and returns
    /// what changed. Skips re-evaluation when a relevance layer proves
    /// the mutations cannot affect the answer.
    pub fn poll(&mut self, session: &Session<'_>) -> Result<WatchDelta, EqlError> {
        let g = session.graph();
        let generation = g.generation();
        if generation == self.generation {
            return Ok(self.skip(generation, WatchSkip::Unchanged, 0));
        }
        // The mutation log tells us *what* changed since the last
        // poll; past the log horizon we must assume everything did.
        let (touched, batch_labels) = match g.mutations_since(self.generation) {
            None => return self.reevaluate(session, generation, 0),
            Some(recs) => {
                let mut touched: Vec<NodeId> = recs
                    .iter()
                    .flat_map(|r| r.touched_nodes.iter().copied())
                    .collect();
                touched.sort_unstable();
                touched.dedup();
                let mut labels: Vec<&str> = recs
                    .iter()
                    .flat_map(|r| r.labels.iter())
                    .map(|&l| g.resolve(l))
                    .collect();
                labels.sort_unstable();
                labels.dedup();
                let labels: Vec<String> = labels.into_iter().map(str::to_string).collect();
                (touched, labels)
            }
        };
        // Layer 2: label-footprint disjointness.
        if !self.wildcard
            && batch_labels
                .iter()
                .all(|l| self.labels.binary_search(l).is_err())
        {
            self.generation = generation;
            return Ok(self.skip(generation, WatchSkip::LabelsDisjoint, 0));
        }
        // Layer 3: the reach probe, for pattern-free queries (with
        // patterns, the seed sets themselves derive from mutable BGP
        // tables and the probe's targets would be stale).
        if self.prepared.ast().patterns.is_empty() {
            if let Some(visited) = self.probe(session, &touched) {
                self.generation = generation;
                return Ok(self.skip(generation, WatchSkip::DeltaUnreachable, visited));
            }
        }
        self.reevaluate(session, generation, 0)
    }

    /// Runs the reach probe for every CTP; `Some(visited)` when *all*
    /// of them prove the delta irrelevant, `None` when any CTP may be
    /// affected (or a probe could not be set up — conservative).
    fn probe(&self, session: &Session<'_>, touched: &[NodeId]) -> Option<usize> {
        let g = session.graph();
        let mut visited = 0usize;
        for ctp in &self.prepared.ast().ctps {
            let (specs, _) = seed_specs(g, ctp, 0, &[]);
            let Ok(seeds) = SeedSets::new(specs) else {
                return None;
            };
            let filters = ctp_filters(ctp, session.options());
            let out = probe_delta(g, &seeds, &filters, touched, DEFAULT_PROBE_BUDGET);
            visited += out.visited;
            if out.relevant {
                return None;
            }
        }
        Some(visited)
    }

    fn skip(&self, generation: u64, why: WatchSkip, probe_visited: usize) -> WatchDelta {
        WatchDelta {
            generation,
            added: Vec::new(),
            removed: Vec::new(),
            skipped: Some(why),
            probe_visited,
        }
    }

    fn reevaluate(
        &mut self,
        session: &Session<'_>,
        generation: u64,
        probe_visited: usize,
    ) -> Result<WatchDelta, EqlError> {
        let result = session.execute(&self.prepared)?;
        let rows = render_rows(session.graph(), &result);
        let (added, removed) = diff_sorted(&self.rows, &rows);
        self.rows = rows;
        self.generation = generation;
        Ok(WatchDelta {
            generation,
            added,
            removed,
            skipped: None,
            probe_visited,
        })
    }
}

/// Renders every answer row into its canonical string form, sorted.
/// Node bindings render as `name(nID)`; tree bindings render their
/// edge sets by endpoint identities and label strings (edge ids are
/// not compaction-stable and never appear).
pub(crate) fn render_rows(g: &Graph, result: &QueryResult) -> Vec<String> {
    let vars = result.table.vars();
    let mut out: Vec<String> = result
        .table
        .rows()
        .map(|row| {
            row.iter()
                .zip(vars)
                .map(|(b, v)| format!("{v}={}", render_binding(g, result, v, *b)))
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

fn render_node(g: &Graph, n: NodeId) -> String {
    format!("{}(n{})", g.node_label(n), n.0)
}

fn render_binding(g: &Graph, result: &QueryResult, var: &str, b: Binding) -> String {
    match b {
        Binding::Node(n) => render_node(g, n),
        Binding::Edge(e) => {
            let d = g.edge(e);
            format!(
                "{}-{}-{}",
                render_node(g, d.src),
                g.resolve(d.label),
                render_node(g, d.dst)
            )
        }
        Binding::Tree(_) => match result.tree(var, b) {
            None => "t?".to_string(),
            Some(t) => {
                let mut edges: Vec<String> = t
                    .edges
                    .iter()
                    .map(|&e| {
                        let d = g.edge(e);
                        format!(
                            "{}-{}-{}",
                            render_node(g, d.src),
                            g.resolve(d.label),
                            render_node(g, d.dst)
                        )
                    })
                    .collect();
                edges.sort();
                if edges.is_empty() {
                    // A single-node tree (all seeds coincide).
                    t.nodes.iter().map(|&n| render_node(g, n)).collect()
                } else {
                    edges.join("+")
                }
            }
        },
    }
}

/// Set-diffs two sorted, deduplicated row lists: `(added, removed)`.
fn diff_sorted(old: &[String], new: &[String]) -> (Vec<String>, Vec<String>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(o), Some(n)) if o == n => {
                i += 1;
                j += 1;
            }
            (Some(o), Some(n)) if o < n => {
                removed.push(o.clone());
                i += 1;
            }
            (Some(_), Some(n)) => {
                added.push(n.clone());
                j += 1;
            }
            (Some(o), None) => {
                removed.push(o.clone());
                i += 1;
            }
            (None, Some(n)) => {
                added.push(n.clone());
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    (added, removed)
}

/// The label footprint of a query: every label/type string whose
/// mutation could change the answer, plus a `wildcard` flag set when
/// the query can observe *any* label (so the footprint skip is
/// unusable). Sound over-approximation:
///
/// * An edge pattern's rows change only through edges matching its
///   edge term — an `Eq`-label term gates on that label, anything else
///   (bare variable, glob, property test) observes every label.
///   Pattern *node* terms never force the wildcard: a new node joins a
///   pattern only via a new matching edge, which the edge term gates.
/// * A CTP traverses only `LABEL`-allowed edges; without a `LABEL`
///   filter it observes every label.
/// * A CTP seed term evaluated against the whole graph (a constant or
///   a predicate on an unbound variable) gains members from node
///   inserts: its `Eq` name/type constants join the footprint, and any
///   other shape is wildcard. Terms bound by pattern variables are
///   gated by the patterns' edge terms already.
fn label_footprint(ast: &QueryAst) -> (Vec<String>, bool) {
    let mut labels: Vec<String> = Vec::new();
    let mut wildcard = false;

    let pattern_vars: Vec<&str> = ast
        .patterns
        .iter()
        .flat_map(|p| [&p.src, &p.edge, &p.dst])
        .filter_map(|t| t.var.as_deref())
        .collect();

    for p in &ast.patterns {
        match p.edge.pred.eq_label() {
            Some(l) => labels.push(l.to_string()),
            None => wildcard = true,
        }
        for t in [&p.src, &p.dst] {
            if let Some(l) = t.pred.eq_label() {
                labels.push(l.to_string());
            } else if let Some(ty) = t.pred.eq_type() {
                labels.push(ty.to_string());
            }
        }
    }

    fn seed_term(t: &TermAst, bound: bool, labels: &mut Vec<String>, wildcard: &mut bool) {
        if bound {
            return; // gated by the binding patterns' edge terms
        }
        if let Some(l) = t.pred.eq_label() {
            labels.push(l.to_string());
        } else if let Some(ty) = t.pred.eq_type() {
            labels.push(ty.to_string());
        } else {
            // Bare unbound variable (the N seed set) or a non-Eq
            // predicate: node inserts of any label may join.
            *wildcard = true;
        }
    }
    for ctp in &ast.ctps {
        match &ctp.filters.labels {
            Some(ls) => labels.extend(ls.iter().cloned()),
            None => wildcard = true,
        }
        for t in &ctp.terms {
            let bound = t.var.as_deref().is_some_and(|v| pattern_vars.contains(&v));
            seed_term(t, bound, &mut labels, &mut wildcard);
        }
    }
    labels.sort();
    labels.dedup();
    (labels, wildcard)
}

/// Public handle for the CLI/server: a query's label footprint, used
/// to pre-compute whether a mutation script can ever wake a watch.
pub fn query_label_footprint(ast: &QueryAst) -> (Vec<String>, bool) {
    label_footprint(ast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecOptions;
    use crate::parser::parse;
    use cs_graph::{figure1, matching_nodes, Mutation, Predicate};

    fn node(g: &Graph, name: &str) -> NodeId {
        matching_nodes(g, &Predicate::label(name))[0]
    }

    const CITIZENS: &str = r#"SELECT x WHERE { (x, "citizenOf", "France") }"#;

    #[test]
    fn unchanged_generation_skips() {
        let session = Session::from_graph(figure1());
        let mut w = session.watch(CITIZENS).unwrap();
        let d = w.poll(&session).unwrap();
        assert_eq!(d.skipped, Some(WatchSkip::Unchanged));
        assert!(d.is_empty());
    }

    #[test]
    fn insert_reports_added_row_and_remove_reports_removed() {
        let mut session = Session::from_graph(figure1());
        let mut w = session.watch(CITIZENS).unwrap();
        let baseline = w.rows().len();
        let (bob, france) = (
            node(session.graph(), "Bob"),
            node(session.graph(), "France"),
        );
        let applied = session
            .mutate(vec![Mutation::InsertEdge {
                src: bob,
                label: "citizenOf".into(),
                dst: france,
            }])
            .unwrap();
        let d = w.poll(&session).unwrap();
        assert_eq!(d.skipped, None);
        assert_eq!(d.added.len(), 1, "Bob appears: {:?}", d.added);
        assert!(d.added[0].contains("Bob"));
        assert!(d.removed.is_empty());
        assert_eq!(w.rows().len(), baseline + 1);

        session
            .mutate(vec![Mutation::RemoveEdge {
                edge: applied.edges[0],
            }])
            .unwrap();
        let d = w.poll(&session).unwrap();
        assert_eq!(d.removed.len(), 1);
        assert!(d.removed[0].contains("Bob"));
        assert_eq!(w.rows().len(), baseline);
    }

    #[test]
    fn disjoint_labels_skip_without_reevaluation() {
        let mut session = Session::from_graph(figure1());
        let mut w = session.watch(CITIZENS).unwrap();
        let (a, b) = (node(session.graph(), "Alice"), node(session.graph(), "Bob"));
        session
            .mutate(vec![Mutation::InsertEdge {
                src: a,
                label: "emailedAboutGraphs".into(),
                dst: b,
            }])
            .unwrap();
        let d = w.poll(&session).unwrap();
        assert_eq!(d.skipped, Some(WatchSkip::LabelsDisjoint));
        // The watch is synchronised without re-running the query.
        assert_eq!(w.generation(), session.graph().generation());
        assert_eq!(
            w.poll(&session).unwrap().skipped,
            Some(WatchSkip::Unchanged)
        );
    }

    #[test]
    fn reach_probe_skips_far_delta_for_connect_query() {
        let mut session = Session::from_graph(figure1());
        // A labelled CONNECT between two fixed people: its footprint
        // contains citizenOf, so a citizenOf edge in a *disconnected*
        // region passes layer 2 but fails the reach probe.
        let mut w = session
            .watch(
                r#"SELECT w WHERE {
                    CONNECT("Alice", "Bob" -> w) LABEL "citizenOf" MAX 2
                }"#,
            )
            .unwrap();
        let islands = session
            .mutate(vec![
                Mutation::InsertNode {
                    label: "Island1".into(),
                    types: vec![],
                },
                Mutation::InsertNode {
                    label: "Island2".into(),
                    types: vec![],
                },
            ])
            .unwrap();
        session
            .mutate(vec![Mutation::InsertEdge {
                src: islands.nodes[0],
                label: "citizenOf".into(),
                dst: islands.nodes[1],
            }])
            .unwrap();
        let d = w.poll(&session).unwrap();
        assert_eq!(d.skipped, Some(WatchSkip::DeltaUnreachable));
        assert!(d.probe_visited > 0);
        assert!(d.is_empty());
    }

    #[test]
    fn connect_watch_reports_new_tree() {
        let mut session = Session::from_graph(figure1());
        let mut w = session
            .watch(r#"SELECT w WHERE { CONNECT("Doug", "France" -> w) MAX 1 }"#)
            .unwrap();
        let before = w.rows().len();
        let (doug, france) = (
            node(session.graph(), "Doug"),
            node(session.graph(), "France"),
        );
        session
            .mutate(vec![Mutation::InsertEdge {
                src: doug,
                label: "visited".into(),
                dst: france,
            }])
            .unwrap();
        let d = w.poll(&session).unwrap();
        assert_eq!(d.skipped, None, "wildcard CTP must re-evaluate");
        assert_eq!(d.added.len(), 1, "the direct edge is a new MAX-1 tree");
        assert!(d.added[0].contains("Doug") && d.added[0].contains("visited"));
        assert_eq!(w.rows().len(), before + 1);
    }

    #[test]
    fn footprint_classifies_queries() {
        let (labels, wildcard) = query_label_footprint(&parse(CITIZENS).unwrap());
        assert!(!wildcard);
        assert!(labels.iter().any(|l| l == "citizenOf"));
        assert!(labels.iter().any(|l| l == "France"));

        // A CTP without LABEL observes everything.
        let ast = parse(r#"SELECT w WHERE { CONNECT("Alice", "Bob" -> w) }"#).unwrap();
        let (_, wildcard) = query_label_footprint(&ast);
        assert!(wildcard);

        // A labelled CONNECT with constant seeds is closed.
        let ast =
            parse(r#"SELECT w WHERE { CONNECT("Alice", "Bob" -> w) LABEL "knows" }"#).unwrap();
        let (labels, wildcard) = query_label_footprint(&ast);
        assert!(!wildcard);
        assert_eq!(labels, ["Alice", "Bob", "knows"]);
    }

    #[test]
    fn stale_plan_and_result_caches_never_serve_old_answers() {
        let opts = ExecOptions {
            result_cache_capacity: 16,
            ..ExecOptions::default()
        };
        let mut session = Session::from_graph_with(figure1(), opts);
        let mut w = session.watch(CITIZENS).unwrap();
        // Warm both caches with a repeat run.
        let _ = session.run(CITIZENS).unwrap();
        let (bob, france) = (
            node(session.graph(), "Bob"),
            node(session.graph(), "France"),
        );
        session
            .mutate(vec![Mutation::InsertEdge {
                src: bob,
                label: "citizenOf".into(),
                dst: france,
            }])
            .unwrap();
        // The re-evaluation sees the new edge, not a cached answer.
        let d = w.poll(&session).unwrap();
        assert_eq!(d.added.len(), 1);
        let rerun = session.run(CITIZENS).unwrap();
        assert_eq!(render_rows(session.graph(), &rerun), w.rows());
    }
}
