//! EQL query execution — the paper's evaluation strategy (§3):
//!
//! * **(A)** evaluate each BGP into a binding table `B_i` (delegated to
//!   `cs-engine`, the conjunctive-engine substrate);
//! * **(B)** derive each CTP's seed sets from the `B_i` (or from the
//!   predicate over all graph nodes), then compute the set-based CTP
//!   result with the filters pushed into the search (`cs-core`);
//! * **(C)** natural-join all tables and project on the head.

use crate::ast::{CtpAst, QueryAst, QueryForm, TermAst};
use crate::parser::ParseError;
use crate::result_cache::ResultCacheMode;
use crate::session::Session;
use cs_core::parallel::{
    evaluate_ctps_parallel_budgeted, evaluate_job, resolve_search_threads, resolve_threads, CtpJob,
};
use cs_core::score::by_name;
use cs_core::{
    Algorithm, Filters, QueueOrder, QueuePolicy, ResultTree, SearchOutcome, SearchStats, SeedError,
    SeedSets, SeedSpec,
};
use cs_engine::{plan_bgp, Bgp, BgpPlan, Binding, Table, Term, TriplePattern};
use cs_graph::fxhash::FxHashMap;
use cs_graph::{matching_nodes, Graph, NodeId};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors from parsing or executing an EQL query.
#[derive(Debug)]
pub enum EqlError {
    /// Syntax or static-validation error.
    Parse(ParseError),
    /// Invalid seed sets (e.g. > 64 groups).
    Seed(SeedError),
    /// A structurally invalid query reached the executor (possible when
    /// the AST is constructed programmatically, bypassing the parser).
    Validate(String),
    /// The query's wall-clock budget ([`ExecOptions::deadline`])
    /// elapsed; the search was stopped cooperatively mid-flight.
    DeadlineExceeded,
    /// The query's [`CancelFlag`](cs_core::CancelFlag)
    /// ([`ExecOptions::cancel`]) was raised; the search was stopped
    /// cooperatively mid-flight.
    Cancelled,
    /// A [`Session::mutate`](crate::Session::mutate) call could not be
    /// applied (e.g. the session does not own its graph, or an edge
    /// endpoint does not exist).
    Mutate(String),
}

impl fmt::Display for EqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EqlError::Parse(e) => write!(f, "{e}"),
            EqlError::Seed(e) => write!(f, "{e}"),
            EqlError::Validate(m) => write!(f, "{m}"),
            EqlError::DeadlineExceeded => write!(f, "deadline exceeded"),
            EqlError::Cancelled => write!(f, "cancelled"),
            EqlError::Mutate(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EqlError {}

impl From<ParseError> for EqlError {
    fn from(e: ParseError) -> Self {
        EqlError::Parse(e)
    }
}

impl From<SeedError> for EqlError {
    fn from(e: SeedError) -> Self {
        EqlError::Seed(e)
    }
}

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Algorithm for CTPs without an `ALGORITHM` clause.
    pub default_algorithm: Algorithm,
    /// Timeout applied to CTPs without a `TIMEOUT` clause.
    pub default_timeout: Option<Duration>,
    /// Switch to the balanced multi-queue policy (§4.9) when the
    /// largest explicit seed set exceeds the smallest by this factor,
    /// or when an `N` seed set is present.
    pub balance_ratio: usize,
    /// Worker-thread budget for step (B): independent CTPs are
    /// collected into [`CtpJob`]s and evaluated through the §6
    /// two-level scheduler
    /// ([`cs_core::parallel::evaluate_ctps_parallel_budgeted`]). This
    /// is the single global knob: the per-CTP (outer) tier and the
    /// intra-search (inner) tier share this budget. `1` (the default)
    /// evaluates in-line on the calling thread; `0` uses the available
    /// parallelism.
    pub threads: usize,
    /// Intra-search workers per CTP: `> 1` runs each GAM-family search
    /// on the partitioned-history engine
    /// ([`cs_core::algo::partition`]), splitting a *single* connection
    /// search over that many workers. `1` (the default) keeps every
    /// search sequential; `0` divides the `threads` budget evenly over
    /// the concurrently running CTP jobs.
    pub search_threads: usize,
    /// Capacity of the per-[`Session`] BGP plan cache (plans keyed by
    /// pattern shape, the Fig. 13 per-label plan-cache idea). `0`
    /// disables caching.
    pub plan_cache_capacity: usize,
    /// Hard per-query wall-clock budget. Unlike
    /// [`ExecOptions::default_timeout`] (the per-CTP soft `TIMEOUT`
    /// clause, which returns the partial results found in time), an
    /// exceeded deadline fails the whole query with
    /// [`EqlError::DeadlineExceeded`] — the typed path `csqd` turns
    /// into an error frame. The clock starts when execution starts.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation: when raised (e.g. by a server's cancel
    /// registry from another thread), the running searches stop at
    /// their next check and the query fails with
    /// [`EqlError::Cancelled`].
    pub cancel: Option<cs_core::CancelFlag>,
    /// Where the CTP result cache lives (the plan cache one level up):
    /// per-session ([`ResultCacheMode::On`], the default), disabled, or
    /// a [`SharedResultCache`](crate::SharedResultCache) handle shared
    /// across sessions over the same graph.
    pub result_cache: ResultCacheMode,
    /// Capacity (entries) of the per-session result cache when
    /// [`ExecOptions::result_cache`] is [`ResultCacheMode::On`]; `0`
    /// disables caching. Ignored for `Off`/`Shared` (a shared cache
    /// carries its own capacity).
    pub result_cache_capacity: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            default_algorithm: Algorithm::MoLesp,
            default_timeout: None,
            balance_ratio: 64,
            threads: 1,
            search_threads: 1,
            plan_cache_capacity: 128,
            deadline: None,
            cancel: None,
            result_cache: ResultCacheMode::On,
            result_cache_capacity: crate::result_cache::DEFAULT_RESULT_CACHE_CAPACITY,
        }
    }
}

/// One magic-set seed narrowing step (B.1½): a CTP seed set was
/// intersected with the other tables binding the same variable before
/// dispatch, shrinking the search frontier. Recorded in
/// [`ExecStats::seed_narrowings`] so `--explain` can show the seeded
/// vs. unseeded cardinalities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedNarrowing {
    /// Output variable of the narrowed CTP.
    pub ctp: String,
    /// The shared seed variable whose set was narrowed.
    pub var: String,
    /// Seed-set cardinality before narrowing.
    pub from: usize,
    /// Seed-set cardinality after narrowing (the intersection).
    pub to: usize,
}

/// Timing and search statistics of one query execution.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// End-to-end execution time (planning + steps A–C), so the
    /// overhead around the per-step times is visible.
    pub total_time: Duration,
    /// Time evaluating BGPs (step A).
    pub bgp_time: Duration,
    /// Time evaluating CTPs (step B).
    pub ctp_time: Duration,
    /// Time joining and projecting (step C).
    pub join_time: Duration,
    /// Per-CTP search statistics, keyed by output variable.
    pub ctp_stats: Vec<(String, SearchStats, Duration)>,
    /// The access-path plan of each BGP component, in component order —
    /// the `EXPLAIN` surface of step (A).
    pub plans: Vec<BgpPlan>,
    /// BGP plans this execution reused from the session's shape-keyed
    /// plan cache.
    pub plan_cache_hits: u64,
    /// BGP plans this execution had to build from scratch.
    pub plan_cache_misses: u64,
    /// CTP searches answered by an exact result-cache hit.
    pub result_cache_hits: u64,
    /// CTP searches the result cache could not answer.
    pub result_cache_misses: u64,
    /// CTP searches answered by filtering a dominating cached entry
    /// (subsumption).
    pub result_cache_subsumed: u64,
    /// Cached trees rejected while answering this execution's
    /// subsumption hits.
    pub result_cache_trees_filtered: u64,
    /// Magic-set seed narrowings applied before dispatch.
    pub seed_narrowings: Vec<SeedNarrowing>,
    /// The graph generation ([`cs_graph::Graph::generation`]) the query
    /// executed against — ties a result to a point in a live graph's
    /// mutation history.
    pub graph_generation: u64,
}

/// The result of an EQL query.
#[derive(Debug)]
pub struct QueryResult {
    /// The head projection; tree variables hold [`Binding::Tree`]
    /// indices into [`QueryResult::trees`].
    pub table: Table,
    /// Connecting trees per CTP output variable.
    pub trees: FxHashMap<String, Vec<ResultTree>>,
    /// Scores per CTP output variable (aligned with `trees`), present
    /// when the CTP had a `SCORE` clause.
    pub scores: FxHashMap<String, Vec<f64>>,
    /// Execution statistics.
    pub stats: ExecStats,
    /// For `ASK` queries: whether at least one answer exists.
    pub boolean: Option<bool>,
}

impl QueryResult {
    /// Number of answer rows.
    pub fn rows(&self) -> usize {
        self.table.len()
    }

    /// Resolves a tree binding to its [`ResultTree`].
    pub fn tree(&self, var: &str, b: Binding) -> Option<&ResultTree> {
        let idx = b.as_tree()? as usize;
        self.trees.get(var)?.get(idx)
    }

    /// Renders the result as a tab-separated table, with tree bindings
    /// expanded into their edge descriptions.
    pub fn render(&self, g: &Graph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let vars = self.table.vars().to_vec();
        let _ = writeln!(
            out,
            "{}",
            vars.iter()
                .map(|v| v.as_ref())
                .collect::<Vec<_>>()
                .join("\t")
        );
        for row in self.table.rows() {
            let cells: Vec<String> = row
                .iter()
                .zip(vars.iter())
                .map(|(b, v)| match b {
                    Binding::Node(n) => g.node_label(*n).to_string(),
                    Binding::Edge(e) => g.edge_label(*e).to_string(),
                    Binding::Tree(_) => self
                        .tree(v.as_ref(), *b)
                        .map(|t| format!("[{}]", t.describe(g)))
                        .unwrap_or_else(|| "?".into()),
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join("\t"));
        }
        out
    }
}

/// Parses and executes an EQL query with default options.
#[deprecated(note = "create a `Session` and use `Session::run`, which also caches plans")]
pub fn run_query(g: &Graph, text: &str) -> Result<QueryResult, EqlError> {
    Session::new(g).run(text)
}

/// Parses and executes an EQL query.
#[deprecated(note = "create a `Session` with `Session::with_options` and use `Session::run`")]
pub fn run_query_with(g: &Graph, text: &str, opts: &ExecOptions) -> Result<QueryResult, EqlError> {
    Session::with_options(g, opts.clone()).run(text)
}

/// Parses and executes an `ASK` query, returning its boolean answer.
#[deprecated(note = "create a `Session` and use `Session::ask`")]
pub fn run_ask(g: &Graph, text: &str) -> Result<bool, EqlError> {
    Session::new(g).ask(text)
}

/// First result cap for variable-sharing ASK CTPs; grown by
/// [`ASK_LIMIT_GROWTH`] each deepening round while the join probe stays
/// empty and a search was truncated by its cap.
pub(crate) const ASK_INITIAL_LIMIT: usize = 4;
/// Growth factor of the ASK deepening loop.
pub(crate) const ASK_LIMIT_GROWTH: usize = 8;

/// Executes a parsed query over a throwaway [`Session`]. Prefer
/// holding a session and using [`Session::prepare`] +
/// [`Session::execute`] when the same graph serves several queries —
/// that is what lets structurally identical BGPs reuse cached plans.
pub fn execute(g: &Graph, q: &QueryAst, opts: &ExecOptions) -> Result<QueryResult, EqlError> {
    let session = Session::with_options(g, opts.clone());
    let prepared = session.prepare_ast(q.clone())?;
    session.execute(&prepared)
}

/// Per-execution control state derived from [`ExecOptions`] when a
/// query starts: the absolute deadline and the shared cancel flag.
///
/// The control is threaded two ways: [`QueryControl::check`] fails
/// fast *between* execution steps, and [`QueryControl::arm`] pushes
/// the flag/deadline *into* each search's [`Filters`] so the engines'
/// cooperative checks (every 64 Grow steps, in the sequential `step`
/// loop and the partitioned workers alike) stop a running search
/// mid-flight. [`QueryControl::classify`] then turns the stop reason
/// into the typed [`EqlError::Cancelled`] /
/// [`EqlError::DeadlineExceeded`] errors.
pub(crate) struct QueryControl {
    deadline: Option<Instant>,
    cancel: Option<cs_core::CancelFlag>,
}

impl QueryControl {
    /// Starts the per-query clock.
    pub(crate) fn begin(opts: &ExecOptions) -> Self {
        QueryControl {
            deadline: opts.deadline.map(|d| Instant::now() + d),
            cancel: opts.cancel.clone(),
        }
    }

    /// Fails fast between execution steps (cancellation wins over the
    /// deadline when both apply).
    pub(crate) fn check(&self) -> Result<(), EqlError> {
        if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            return Err(EqlError::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(EqlError::DeadlineExceeded);
        }
        Ok(())
    }

    /// Pushes the control into one search's filters: the cancel flag
    /// is attached as-is, and the remaining wall-clock budget tightens
    /// the CTP timeout (the engines already stop on the tighter of the
    /// two).
    pub(crate) fn arm(&self, filters: &mut Filters) {
        if let Some(c) = &self.cancel {
            filters.cancel = Some(c.clone());
        }
        if let Some(d) = self.deadline {
            let remaining = d.saturating_duration_since(Instant::now());
            filters.timeout = Some(filters.timeout.map_or(remaining, |t| t.min(remaining)));
        }
    }

    /// Arms every job of a dispatch round.
    pub(crate) fn arm_jobs(&self, jobs: &mut [CtpJob]) {
        if self.deadline.is_none() && self.cancel.is_none() {
            return;
        }
        for j in jobs {
            self.arm(&mut j.filters);
        }
    }

    /// Classifies a finished dispatch round: a cancelled search fails
    /// the query; a timed-out search fails it only when the hard
    /// deadline has actually passed — a per-CTP soft `TIMEOUT` clause
    /// keeps its partial results, as before.
    pub(crate) fn classify(&self, outcomes: &[SearchOutcome]) -> Result<(), EqlError> {
        if outcomes.iter().any(|o| o.stats.cancelled) {
            return Err(EqlError::Cancelled);
        }
        if outcomes.iter().any(|o| o.stats.timed_out)
            && self.deadline.is_some_and(|d| Instant::now() >= d)
        {
            return Err(EqlError::DeadlineExceeded);
        }
        Ok(())
    }
}

/// The step (B) job list: per CTP, the job, the table columns of its
/// seed positions (`None` for hidden constants), whether the ASK
/// deepening loop may raise its result cap, and the surplus seeds the
/// magic-set narrowing removed (so [`enforce_exclusions`] can re-impose
/// the original seed-set exclusivity after dispatch).
pub(crate) struct BuiltJobs {
    /// One search job per CTP, in query order.
    pub(crate) jobs: Vec<CtpJob>,
    /// Per CTP, the table column of each seed position.
    pub(crate) job_cols: Vec<Vec<Option<String>>>,
    /// Per CTP, whether ASK deepening may raise its result cap.
    pub(crate) deepenable: Vec<bool>,
    /// Per CTP, the sorted union of seeds removed by narrowing (empty
    /// when the CTP was not narrowed).
    pub(crate) exclusions: Vec<Vec<NodeId>>,
    /// The narrowing steps applied, for [`ExecStats::seed_narrowings`].
    pub(crate) narrowings: Vec<SeedNarrowing>,
}

/// Lowers a CTP's filter clauses into search [`Filters`] — everything
/// except the result cap (`LIMIT`), which each call site layers on
/// (implicit ASK limits here, streaming early termination in the
/// session). The single lowering point keeps the materialised,
/// streaming, and ASK fast paths honouring exactly the same clauses.
pub(crate) fn ctp_filters(ctp: &CtpAst, opts: &ExecOptions) -> Filters {
    let mut filters = Filters::none();
    filters.uni = ctp.filters.uni;
    filters.labels = ctp.filters.labels.clone();
    filters.max_edges = ctp.filters.max_edges;
    filters.timeout = ctp.filters.timeout.or(opts.default_timeout);
    filters
}

/// Builds the [`CtpJob`]s of step (B) from a query's CTPs and the step
/// (A) binding tables.
pub(crate) fn build_ctp_jobs(
    g: &Graph,
    q: &QueryAst,
    bgp_tables: &[Table],
    opts: &ExecOptions,
) -> Result<BuiltJobs, EqlError> {
    let mut per_ctp: Vec<(Vec<SeedSpec>, Vec<Option<String>>)> = q
        .ctps
        .iter()
        .enumerate()
        .map(|(ci, ctp)| seed_specs(g, ctp, ci, bgp_tables))
        .collect();
    let (exclusions, narrowings) = narrow_shared_seed_sets(q, &mut per_ctp);

    let mut jobs: Vec<CtpJob> = Vec::with_capacity(q.ctps.len());
    let mut job_cols: Vec<Vec<Option<String>>> = Vec::with_capacity(q.ctps.len());
    let mut deepenable: Vec<bool> = Vec::with_capacity(q.ctps.len());
    for (ci, (ctp, (specs, col_vars))) in q.ctps.iter().zip(per_ctp).enumerate() {
        let seeds = SeedSets::new(specs)?;

        let mut filters = ctp_filters(ctp, opts);
        // ASK only needs existence, so a CTP can stop after its first
        // result (implicit LIMIT 1) — but only when the CTP shares no
        // variables with other tables: if its seed columns participate
        // in a join, the single kept tree may not be the one that
        // joins, yielding a false negative. Variable-sharing ASK CTPs
        // without an explicit LIMIT instead start from a small result
        // cap that the deepening loop raises only while the join stays
        // empty and some search was truncated.
        let deepen = q.form == QueryForm::Ask
            && ctp.filters.limit.is_none()
            && ctp_shares_variables(q, ci, bgp_tables);
        filters.max_results = ctp.filters.limit.or(match q.form {
            QueryForm::Ask if deepen => Some(ASK_INITIAL_LIMIT),
            QueryForm::Ask => Some(1),
            QueryForm::Select => None,
        });

        let algorithm = ctp.algorithm.unwrap_or(opts.default_algorithm);
        let policy = pick_policy(&seeds, opts.balance_ratio);
        jobs.push(CtpJob {
            seeds,
            algorithm,
            filters,
            order: QueueOrder::SmallestFirst,
            policy,
        });
        job_cols.push(col_vars);
        deepenable.push(deepen);
    }
    Ok(BuiltJobs {
        jobs,
        job_cols,
        deepenable,
        exclusions,
        narrowings,
    })
}

/// Magic-set seed narrowing (step B.1½): when several tables bind the
/// same variable — two CTPs sharing a seed variable, possibly already
/// restricted by a BGP — only nodes in the *intersection* of the seed
/// sets can survive the step (C) natural join, so each eligible CTP
/// searches from the intersection instead of its full set, shrinking
/// the frontier before any graph work.
///
/// Narrowing alone is not semantics-preserving: Def. 2.8 admits
/// *exactly one* node per seed set, so removing a node from a set frees
/// it to appear as an internal tree node, producing trees the original
/// query excludes. The returned per-CTP surplus lists let
/// [`enforce_exclusions`] drop those trees after dispatch; the
/// combination provably returns exactly the original trees whose seed
/// lies in the intersection — and all other trees produce no join rows.
///
/// Ineligible (left unnarrowed): CTPs with a `SCORE` clause (TOP-k is
/// computed before the join, so pre-shrinking the scored set changes
/// which trees fill the k slots), an explicit `LIMIT` (the kept subset
/// is user-visible), or an `N` seed position (All-position results are
/// discovery-order-dependent). Empty intersections also skip narrowing:
/// the join produces the empty answer either way, and seed-set
/// validation keeps its usual error surface.
///
/// Row answers are invariant under narrowing — a tree whose bound seed
/// lies outside the intersection cannot equi-join with the other
/// tables binding the variable. The [`QueryResult::trees`] map of a
/// narrowed CTP, however, only lists the trees the narrowed search
/// discovered: results that could never contribute a join row are
/// omitted rather than computed and discarded.
pub(crate) fn narrow_shared_seed_sets(
    q: &QueryAst,
    per_ctp: &mut [(Vec<SeedSpec>, Vec<Option<String>>)],
) -> (Vec<Vec<NodeId>>, Vec<SeedNarrowing>) {
    let mut exclusions: Vec<Vec<NodeId>> = vec![Vec::new(); per_ctp.len()];
    let mut narrowings: Vec<SeedNarrowing> = Vec::new();
    // Explicit-set positions per variable, in deterministic order.
    let mut by_var: std::collections::BTreeMap<String, Vec<(usize, usize)>> = Default::default();
    for (ci, (specs, cols)) in per_ctp.iter().enumerate() {
        for (pos, col) in cols.iter().enumerate() {
            if let (Some(v), SeedSpec::Set(_)) = (col.as_deref(), &specs[pos]) {
                by_var.entry(v.to_string()).or_default().push((ci, pos));
            }
        }
    }
    let eligible: Vec<bool> = q
        .ctps
        .iter()
        .zip(per_ctp.iter())
        .map(|(ctp, (specs, _))| {
            ctp.filters.score.is_none()
                && ctp.filters.limit.is_none()
                && specs.iter().all(|s| matches!(s, SeedSpec::Set(_)))
        })
        .collect();
    for (var, positions) in &by_var {
        if positions.len() < 2 {
            continue;
        }
        let mut inter: Option<Vec<NodeId>> = None;
        for &(ci, pos) in positions {
            let SeedSpec::Set(s) = &per_ctp[ci].0[pos] else {
                continue;
            };
            let mut s = s.clone();
            s.sort_unstable();
            s.dedup();
            inter = Some(match inter {
                None => s,
                Some(prev) => prev
                    .into_iter()
                    .filter(|n| s.binary_search(n).is_ok())
                    .collect(),
            });
        }
        let Some(inter) = inter else { continue };
        if inter.is_empty() {
            continue;
        }
        for &(ci, pos) in positions {
            if !eligible[ci] {
                continue;
            }
            let SeedSpec::Set(orig) = &mut per_ctp[ci].0[pos] else {
                continue;
            };
            let mut sorted = orig.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let surplus: Vec<NodeId> = sorted
                .iter()
                .copied()
                .filter(|n| inter.binary_search(n).is_err())
                .collect();
            if surplus.is_empty() {
                continue;
            }
            narrowings.push(SeedNarrowing {
                ctp: q.ctps[ci].out_var.clone(),
                var: var.clone(),
                from: sorted.len(),
                to: inter.len(),
            });
            let excl = &mut exclusions[ci];
            excl.extend(surplus);
            excl.sort_unstable();
            excl.dedup();
            *orig = inter.clone();
        }
    }
    (exclusions, narrowings)
}

/// Re-imposes the original seed-set exclusivity on narrowed jobs'
/// outcomes: a tree containing *any* node the narrowing removed would
/// hold two nodes of that original seed set (its seed plus the
/// surplus), which Def. 2.8 forbids — the narrowed search admits it
/// only because the surplus node left the set. Runs after
/// [`ask_truncated`] (which must see the raw result count against the
/// cap) and after cache insertion (the cache stores the raw outcome of
/// the narrowed signature).
pub(crate) fn enforce_exclusions(outcomes: &mut [SearchOutcome], exclusions: &[Vec<NodeId>]) {
    for (o, excl) in outcomes.iter_mut().zip(exclusions) {
        if excl.is_empty() {
            continue;
        }
        let trees = std::mem::take(&mut o.results).into_trees();
        o.results = cs_core::ResultSet::from_trees(
            trees
                .into_iter()
                .filter(|t| !t.nodes.iter().any(|n| excl.binary_search(n).is_ok())),
        );
    }
}

/// Evaluates a slice of CTP jobs through the two-level scheduler:
/// in-line on the calling thread when a single outer worker suffices
/// (`threads == 0` resolves to the available parallelism first, so
/// single-CPU hosts don't pay for a useless worker thread), through
/// [`evaluate_ctps_parallel_budgeted`] otherwise. Each search runs on
/// `search_threads` intra-search workers (`0` = divide the `threads`
/// budget over the concurrent jobs, `1` = sequential engine).
pub(crate) fn dispatch_jobs(
    g: &Graph,
    jobs: &[CtpJob],
    threads: usize,
    search_threads: usize,
) -> Vec<SearchOutcome> {
    let threads = resolve_threads(threads);
    if threads == 1 || jobs.len() <= 1 {
        // One outer worker: the whole budget (or the explicit
        // `search_threads`) goes intra-search.
        let intra = resolve_search_threads(search_threads, threads, 1);
        jobs.iter().map(|j| evaluate_job(g, j, intra)).collect()
    } else {
        evaluate_ctps_parallel_budgeted(g, jobs, threads, search_threads)
    }
}

/// True if some deepenable ASK CTP's search was truncated by its
/// result cap (or is otherwise incomplete), so raising the cap could
/// still produce the joining tree.
pub(crate) fn ask_truncated(
    jobs: &[CtpJob],
    outcomes: &[SearchOutcome],
    deepenable: &[bool],
) -> bool {
    jobs.iter()
        .zip(outcomes)
        .zip(deepenable)
        .any(|((j, o), &d)| {
            d && (!o.complete() || j.filters.max_results.is_some_and(|k| o.results.len() >= k))
        })
}

/// Raises the result caps of the deepenable jobs for the next ASK
/// deepening round.
pub(crate) fn grow_ask_limits(jobs: &mut [CtpJob], deepenable: &[bool]) {
    for (j, &d) in jobs.iter_mut().zip(deepenable) {
        if d {
            let k = j.filters.max_results.unwrap_or(ASK_INITIAL_LIMIT);
            j.filters.max_results = Some(k.saturating_mul(ASK_LIMIT_GROWTH));
        }
    }
}

/// The join tables, result-tree bindings, and scores one evaluation
/// round produces.
pub(crate) type CtpMaterialisation = (
    Vec<Table>,
    FxHashMap<String, Vec<ResultTree>>,
    FxHashMap<String, Vec<f64>>,
);

/// Turns each CTP's search outcome into its join table `CTP_j`,
/// applying `SCORE σ [TOP k]` (§4.8), and records per-CTP statistics.
pub(crate) fn materialise_ctps(
    g: &Graph,
    q: &QueryAst,
    outcomes: Vec<cs_core::SearchOutcome>,
    job_cols: &[Vec<Option<String>>],
    stats: &mut ExecStats,
) -> CtpMaterialisation {
    let mut ctp_tables: Vec<Table> = Vec::new();
    let mut trees: FxHashMap<String, Vec<ResultTree>> = FxHashMap::default();
    let mut scores: FxHashMap<String, Vec<f64>> = FxHashMap::default();
    for ((ctp, outcome), col_vars) in q.ctps.iter().zip(outcomes).zip(job_cols) {
        stats
            .ctp_stats
            .push((ctp.out_var.clone(), outcome.stats.clone(), outcome.duration));

        let mut result_trees = outcome.results.into_trees();

        // Canonical materialised order (`ResultTree::canonical_cmp`):
        // the sequential engine yields discovery order, the
        // partitioned engine a scheduling-independent canonical order —
        // normalising here makes materialised answers (row order, tree
        // indices, TOP-k tie-breaks) identical across `threads` /
        // `search_threads` settings (LIMIT-truncated searches keep a
        // valid but possibly different subset — early termination is
        // the one scheduling-dependent surface). Streaming execution
        // keeps discovery order; it never passes through this function.
        result_trees.sort_by(ResultTree::canonical_cmp);

        // SCORE σ [TOP k] (§4.8): score each result; optionally keep
        // only the k best. Sorted descending under `f64::total_cmp`,
        // which is a total order: a NaN-producing scorer yields a
        // deterministic TOP-k (positive NaN sorts above +∞, i.e.
        // first), instead of an arbitrary one. Equal scores tie-break
        // on the canonical edge set, so TOP-k is a function of the
        // result *set* alone — no engine or thread count can change it.
        if let Some((sigma_name, top)) = &ctp.filters.score {
            // cs-lint: allow(L002): the parser already rejected
            // queries naming an unknown scorer, so lookup succeeds.
            let sigma = by_name(sigma_name).expect("validated by the parser");
            let mut scored: Vec<(f64, ResultTree)> = result_trees
                .into_iter()
                .map(|t| (sigma.score(g, &t), t))
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.canonical_cmp(&b.1)));
            if let Some(k) = top {
                scored.truncate(*k);
            }
            scores.insert(
                ctp.out_var.clone(),
                scored.iter().map(|(s, _)| *s).collect(),
            );
            result_trees = scored.into_iter().map(|(_, t)| t).collect();
        }

        // Materialise the CTP_j table: one column per explicit seed
        // variable plus the tree variable.
        let mut columns: Vec<&str> = col_vars.iter().filter_map(|v| v.as_deref()).collect();
        columns.push(&ctp.out_var);
        let mut table = Table::with_columns(&columns);
        for (ti, t) in result_trees.iter().enumerate() {
            let mut row: Vec<Binding> = Vec::with_capacity(columns.len());
            for (i, v) in col_vars.iter().enumerate() {
                if v.is_some() {
                    row.push(Binding::Node(t.seeds[i]));
                }
            }
            row.push(Binding::Tree(ti as u32));
            table.push(row.into_boxed_slice());
        }
        ctp_tables.push(table);
        trees.insert(ctp.out_var.clone(), result_trees);
    }
    (ctp_tables, trees, scores)
}

/// Lowers edge patterns, assigning hidden variable names to constants.
pub(crate) fn lower_patterns(q: &QueryAst) -> Vec<TriplePattern> {
    let mut hidden = 0usize;
    let mut lower = |t: &TermAst| -> Term {
        match &t.var {
            Some(v) => Term::pred(v, t.pred.clone()),
            None => {
                let name = format!("_c{hidden}");
                hidden += 1;
                Term::pred(&name, t.pred.clone())
            }
        }
    };
    q.patterns
        .iter()
        .map(|p| TriplePattern {
            src: lower(&p.src),
            edge: lower(&p.edge),
            dst: lower(&p.dst),
        })
        .collect()
}

/// Groups pattern indices into maximal components connected by shared
/// variables — each component is one BGP (Def. 2.4). Delegates to the
/// engine's union-find ([`cs_engine::pattern_components`]), the same
/// implementation backing [`Bgp::is_connected`].
pub(crate) fn connected_components(patterns: &[TriplePattern]) -> Vec<Vec<usize>> {
    cs_engine::pattern_components(patterns)
}

/// Lowers a query's edge patterns and groups them into their BGP
/// components (Def. 2.4), in first-pattern order.
pub(crate) fn query_bgps(q: &QueryAst) -> Vec<Bgp> {
    let lowered = lower_patterns(q);
    connected_components(&lowered)
        .into_iter()
        .map(|comp| {
            let mut bgp = Bgp::new();
            for idx in comp {
                let p = &lowered[idx];
                bgp.push(p.src.clone(), p.edge.clone(), p.dst.clone());
            }
            bgp
        })
        .collect()
}

/// The access-path plans step (A) would run for a query, without
/// executing anything — one [`BgpPlan`] per BGP component. This is the
/// `EXPLAIN` entry point; the same plans are recorded in
/// [`ExecStats::plans`] when the query actually runs.
pub fn explain_plan(g: &Graph, q: &QueryAst) -> Vec<BgpPlan> {
    query_bgps(q).iter().map(|b| plan_bgp(g, b)).collect()
}

/// True if CTP `ci`'s explicit seed variables occur in any BGP table
/// or in another CTP — i.e. the CTP's table participates in a join on
/// those columns, so keeping only its first result (the ASK implicit
/// `LIMIT 1`) could discard exactly the tree that joins.
pub(crate) fn ctp_shares_variables(q: &QueryAst, ci: usize, bgp_tables: &[Table]) -> bool {
    q.ctps[ci]
        .terms
        .iter()
        .filter_map(|t| t.var.as_deref())
        .any(|v| {
            bgp_tables.iter().any(|t| t.col(v).is_some())
                || q.ctps.iter().enumerate().any(|(cj, c2)| {
                    cj != ci && c2.terms.iter().any(|t2| t2.var.as_deref() == Some(v))
                })
        })
}

/// Computes the seed specs of one CTP (step B.1 of §3). Returns the
/// specs plus, per position, the variable that becomes a column of the
/// CTP table (`None` for hidden constants).
pub(crate) fn seed_specs(
    g: &Graph,
    ctp: &CtpAst,
    _ci: usize,
    bgp_tables: &[Table],
) -> (Vec<SeedSpec>, Vec<Option<String>>) {
    let mut specs = Vec::with_capacity(ctp.terms.len());
    let mut cols = Vec::with_capacity(ctp.terms.len());
    for term in &ctp.terms {
        match &term.var {
            Some(v) => {
                cols.push(Some(v.clone()));
                // If v is bound by a BGP, the seed set is π_v(B_i),
                // further restricted by the predicate if present.
                let from_bgp = bgp_tables.iter().find(|t| t.col(v).is_some());
                if let Some(table) = from_bgp {
                    let mut nodes: Vec<NodeId> = table
                        .distinct_column(v)
                        .into_iter()
                        .filter_map(Binding::as_node)
                        .collect();
                    if !term.pred.is_any() {
                        nodes.retain(|&n| term.pred.matches_node(g, n));
                    }
                    specs.push(SeedSpec::Set(nodes));
                } else if term.pred.is_any() {
                    // Unbound and unconstrained: the N seed set (§4.9).
                    specs.push(SeedSpec::All);
                } else {
                    specs.push(SeedSpec::Set(matching_nodes(g, &term.pred)));
                }
            }
            None => {
                cols.push(None);
                specs.push(SeedSpec::Set(matching_nodes(g, &term.pred)));
            }
        }
    }
    (specs, cols)
}

/// Chooses the queue policy (§4.9): balance when an `N` set is present
/// or explicit set sizes are badly skewed.
pub(crate) fn pick_policy(seeds: &SeedSets, ratio: usize) -> QueuePolicy {
    if !seeds.presatisfied().is_empty() {
        return QueuePolicy::Balanced;
    }
    let sizes: Vec<usize> = seeds
        .specs()
        .iter()
        .filter_map(|s| match s {
            SeedSpec::Set(v) => Some(v.len()),
            SeedSpec::All => None,
        })
        .collect();
    let (min, max) = (
        sizes.iter().copied().min().unwrap_or(1).max(1),
        sizes.iter().copied().max().unwrap_or(1),
    );
    if max / min >= ratio {
        QueuePolicy::Balanced
    } else {
        QueuePolicy::Single
    }
}

/// Greedy natural join of all tables: smallest first, preferring
/// join partners that share variables.
pub(crate) fn join_all(mut tables: Vec<Table>) -> Table {
    if tables.is_empty() {
        return Table::new(Vec::new());
    }
    let start = tables
        .iter()
        .enumerate()
        .min_by_key(|(_, t)| t.len())
        .map(|(i, _)| i)
        // cs-lint: allow(L002): the empty case returned above, so the
        // minimum exists.
        .unwrap();
    let mut acc = tables.swap_remove(start);
    while !tables.is_empty() {
        let pos = tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.vars().iter().any(|v| acc.col(v).is_some()))
            .min_by_key(|(_, t)| t.len())
            .map(|(i, _)| i)
            .or_else(|| {
                tables
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| t.len())
                    .map(|(i, _)| i)
            })
            // cs-lint: allow(L002): the while-guard keeps `tables`
            // non-empty, so the unfiltered fallback always finds one.
            .unwrap();
        let next = tables.swap_remove(pos);
        acc = acc.natural_join(&next);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use cs_graph::figure1;

    const Q1: &str = r#"
        SELECT x, y, z, w WHERE {
            (x : type = "entrepreneur", "citizenOf", "USA")
            (y : type = "entrepreneur", "citizenOf", "France")
            (z : type = "politician",  "citizenOf", "France")
            CONNECT(x, y, z -> w)
        }
    "#;

    #[test]
    fn q1_runs_on_figure1() {
        let g = figure1();
        let r = Session::new(&g).run(Q1).unwrap();
        assert!(r.rows() > 0, "Q1 must have answers");
        // Every row binds x to a US entrepreneur.
        let xcol = r.table.col("x").unwrap();
        for row in r.table.rows() {
            let n = row[xcol].as_node().unwrap();
            let label = g.node_label(n);
            assert!(label == "Bob" || label == "Carole", "{label}");
        }
        // The t_alpha answer (Carole, Doug, Elon) must be present.
        let (x, y, z) = (
            r.table.col("x").unwrap(),
            r.table.col("y").unwrap(),
            r.table.col("z").unwrap(),
        );
        let found = r.table.rows().any(|row| {
            g.node_label(row[x].as_node().unwrap()) == "Carole"
                && g.node_label(row[y].as_node().unwrap()) == "Doug"
                && g.node_label(row[z].as_node().unwrap()) == "Elon"
        });
        assert!(found, "t_alpha row missing");
        let rendered = r.render(&g);
        assert!(rendered.contains("Carole"));
    }

    #[test]
    fn bgp_only_query() {
        let g = figure1();
        let r = Session::new(&g)
            .run(r#"SELECT x WHERE { (x : type = "entrepreneur", "citizenOf", "USA") }"#)
            .unwrap();
        assert_eq!(r.rows(), 2); // Bob, Carole
    }

    #[test]
    fn ctp_only_query_with_constants() {
        let g = figure1();
        let r = Session::new(&g)
            .run(r#"SELECT w WHERE { CONNECT("Bob", "Carole" -> w) }"#)
            .unwrap();
        assert!(r.rows() > 0);
        // Shortest connection: Bob -citizenOf-> USA <-citizenOf- Carole
        // (2 edges).
        let trees = &r.trees["w"];
        assert!(trees.iter().any(|t| t.size() == 2));
    }

    #[test]
    fn seed_sets_from_bgp_are_restricted() {
        let g = figure1();
        // y bound by BGP to French entrepreneurs; CTP reuses y.
        let r = Session::new(&g)
            .run(
                r#"SELECT y, w WHERE {
                (y : type = "entrepreneur", "citizenOf", "France")
                CONNECT(y, "USA" -> w) LIMIT 5
            }"#,
            )
            .unwrap();
        let ycol = r.table.col("y").unwrap();
        for row in r.table.rows() {
            let label = g.node_label(row[ycol].as_node().unwrap());
            assert!(label == "Alice" || label == "Doug");
        }
    }

    #[test]
    fn score_top_k() {
        let g = figure1();
        let r = Session::new(&g)
            .run(
                r#"SELECT w WHERE {
                CONNECT("Bob", "Alice" -> w) SCORE edgecount TOP 2
            }"#,
            )
            .unwrap();
        assert!(r.rows() <= 2);
        let s = &r.scores["w"];
        assert!(s.len() <= 2);
        // Scores are sorted descending (edgecount: fewer edges first).
        assert!(s.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn max_and_limit_filters() {
        let g = figure1();
        let r = Session::new(&g)
            .run(r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) MAX 3 LIMIT 2 }"#)
            .unwrap();
        assert!(r.rows() <= 2);
        for t in &r.trees["w"] {
            assert!(t.size() <= 3);
        }
    }

    #[test]
    fn uni_filter_via_syntax() {
        let g = figure1();
        // Bob -> USA <- Carole is NOT unidirectional (no root reaches
        // both): check UNI prunes relative to the bidirectional run.
        let bi = Session::new(&g)
            .run(r#"SELECT w WHERE { CONNECT("Bob", "USA" -> w) MAX 1 }"#)
            .unwrap();
        let uni = Session::new(&g)
            .run(r#"SELECT w WHERE { CONNECT("Bob", "USA" -> w) MAX 1 UNI }"#)
            .unwrap();
        // Bob -citizenOf-> USA is a directed path: both find it.
        assert!(bi.rows() >= 1);
        assert!(uni.rows() >= 1);
    }

    #[test]
    fn n_seed_set_query() {
        // J3-style query: one explicit set, one N set.
        let g = figure1();
        let r = Session::new(&g)
            .run(r#"SELECT w WHERE { CONNECT("Alice", anything -> w) MAX 1 }"#)
            .unwrap();
        // All 1-edge trees touching Alice (3 incident edges).
        assert_eq!(r.trees["w"].iter().filter(|t| t.size() == 1).count(), 3);
    }

    #[test]
    fn two_ctps_join_on_shared_variable() {
        let g = figure1();
        let r = Session::new(&g)
            .run(
                r#"SELECT x, w1, w2 WHERE {
                (x : type = "entrepreneur", "citizenOf", "USA")
                CONNECT(x, "France" -> w1) LIMIT 20
                CONNECT(x, "Elon" -> w2) LIMIT 20
            }"#,
            )
            .unwrap();
        assert!(r.rows() > 0);
        assert!(r.trees.contains_key("w1") && r.trees.contains_key("w2"));
    }

    #[test]
    fn empty_bgp_result_gives_empty_answer() {
        let g = figure1();
        let r = Session::new(&g).run(
            r#"SELECT x, w WHERE {
                (x : type = "robot", "citizenOf", "USA")
                CONNECT(x, "France" -> w)
            }"#,
        );
        // Empty seed set is a SeedError (the CTP can have no result).
        assert!(matches!(r, Err(EqlError::Seed(_))) || r.unwrap().rows() == 0);
    }

    #[test]
    fn components_grouping() {
        let q = parse(
            r#"SELECT x WHERE {
                (x, "r", y) (y, "s", z)
                (a, "t", b)
            }"#,
        )
        .unwrap();
        let lowered = lower_patterns(&q);
        let comps = connected_components(&lowered);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2]);
    }
}

#[cfg(test)]
mod ask_tests {
    use super::*;
    use crate::parser::parse;
    use cs_graph::figure1;

    #[test]
    fn ask_true_and_false() {
        let g = figure1();
        assert!(Session::new(&g)
            .ask(r#"ASK WHERE { CONNECT("Bob", "Carole" -> w) }"#)
            .unwrap());
        assert!(
            !Session::new(&g)
                .ask(r#"ASK WHERE { CONNECT("Bob", "Carole" -> w) LABEL "founded" }"#)
                .unwrap(),
            "no founded-only connection exists"
        );
        assert!(Session::new(&g)
            .ask(r#"ASK WHERE { (x, "founded", "OrgB") }"#)
            .unwrap());
    }

    #[test]
    fn ask_applies_limit_one_by_default() {
        // The CTP shares no variables with anything else, so the
        // implicit LIMIT 1 is safe and applied.
        let g = figure1();
        let ast = parse(r#"ASK WHERE { CONNECT("Bob", "Elon" -> w) }"#).unwrap();
        let res = execute(&g, &ast, &ExecOptions::default()).unwrap();
        assert_eq!(res.boolean, Some(true));
        // Only one tree computed thanks to the implicit LIMIT 1.
        assert_eq!(res.trees["w"].len(), 1);
    }

    /// Regression (ASK false negative): the implicit per-CTP `LIMIT 1`
    /// used to apply even when a CTP's seed columns join against other
    /// tables. Here both CTPs constrain `x`; each kept a single tree,
    /// and those trees bound `x` to different entrepreneurs, so the
    /// join on `x` came out empty and ASK answered false although
    /// common-`x` answers exist. The limit is now suppressed for
    /// variable-sharing CTPs.
    #[test]
    fn ask_no_false_negative_when_ctps_share_variables() {
        let g = figure1();
        let ask = r#"ASK WHERE {
            CONNECT(x : type = "entrepreneur", "USA" -> w1) MAX 2
            CONNECT(x, "France" -> w2) MAX 2
        }"#;
        // The SELECT form proves common-x answers exist…
        let sel = r#"SELECT x WHERE {
            CONNECT(x : type = "entrepreneur", "USA" -> w1) MAX 2
            CONNECT(x, "France" -> w2) MAX 2
        }"#;
        assert!(Session::new(&g).run(sel).unwrap().rows() > 0);
        // …so ASK must agree.
        assert!(Session::new(&g).ask(ask).unwrap());
    }

    /// The implicit limit is also suppressed when a CTP's seeds come
    /// from a BGP: the CTP table joins the BGP table on those columns.
    #[test]
    fn ask_with_bgp_bound_ctp_computes_all_trees() {
        let g = figure1();
        let ast = parse(
            r#"ASK WHERE {
                (x : type = "entrepreneur", "citizenOf", "USA")
                CONNECT(x, "Elon" -> w) MAX 3
            }"#,
        )
        .unwrap();
        let res = execute(&g, &ast, &ExecOptions::default()).unwrap();
        assert_eq!(res.boolean, Some(true));
        assert!(
            res.trees["w"].len() > 1,
            "x is join-shared: no implicit LIMIT 1"
        );
    }

    #[test]
    fn ask_with_bgp_join() {
        let g = figure1();
        // Is any US entrepreneur connected to Elon within 3 edges?
        assert!(Session::new(&g)
            .ask(
                r#"ASK WHERE {
                (x : type = "entrepreneur", "citizenOf", "USA")
                CONNECT(x, "Elon" -> w) MAX 3
            }"#
            )
            .unwrap());
        // ... within 1 edge? No.
        assert!(!Session::new(&g)
            .ask(
                r#"ASK WHERE {
                (x : type = "entrepreneur", "citizenOf", "USA")
                CONNECT(x, "Elon" -> w) MAX 1
            }"#
            )
            .unwrap());
    }

    #[test]
    fn select_has_no_boolean() {
        let g = figure1();
        let r = Session::new(&g)
            .run(r#"SELECT x WHERE { (x, "founded", y) }"#)
            .unwrap();
        assert_eq!(r.boolean, None);
    }
}

#[cfg(test)]
mod planner_and_batching_tests {
    use super::*;
    use crate::parser::parse;
    use cs_engine::AccessPath;
    use cs_graph::figure1;

    const Q1: &str = r#"
        SELECT x, y, z, w WHERE {
            (x : type = "entrepreneur", "citizenOf", "USA")
            (y : type = "entrepreneur", "citizenOf", "France")
            (z : type = "politician",  "citizenOf", "France")
            CONNECT(x, y, z -> w)
        }
    "#;

    #[test]
    fn explain_plan_picks_edge_label_index_on_q1() {
        let g = figure1();
        let q = parse(Q1).unwrap();
        let plans = explain_plan(&g, &q);
        assert_eq!(plans.len(), 3, "three BGP components");
        for p in &plans {
            assert!(
                matches!(&p.steps[0].access, AccessPath::EdgeLabelIndex { label } if label == "citizenOf"),
                "expected the citizenOf index, got {p}"
            );
            assert_eq!(p.steps[0].estimate, 5);
        }
    }

    #[test]
    fn exec_stats_record_the_plans() {
        let g = figure1();
        let q = parse(Q1).unwrap();
        let r = execute(&g, &q, &ExecOptions::default()).unwrap();
        assert_eq!(r.stats.plans.len(), 3);
        let rendered = r.stats.plans[0].to_string();
        assert!(rendered.contains("EdgeLabelIndex"), "{rendered}");
    }

    #[test]
    fn batched_parallel_execution_matches_sequential() {
        let g = figure1();
        let q = parse(
            r#"SELECT x, w1, w2 WHERE {
                (x : type = "entrepreneur", "citizenOf", "USA")
                CONNECT(x, "France" -> w1) LIMIT 20
                CONNECT(x, "Elon" -> w2) LIMIT 20
            }"#,
        )
        .unwrap();
        let seq = execute(&g, &q, &ExecOptions::default()).unwrap();
        let par = execute(
            &g,
            &q,
            &ExecOptions {
                threads: 4,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(seq.rows(), par.rows());
        assert_eq!(seq.trees["w1"].len(), par.trees["w1"].len());
        assert_eq!(seq.trees["w2"].len(), par.trees["w2"].len());
        // Zero means "available parallelism".
        let auto = execute(
            &g,
            &q,
            &ExecOptions {
                threads: 0,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(seq.rows(), auto.rows());
    }

    #[test]
    fn execute_rejects_duplicate_out_vars() {
        let g = figure1();
        let mk = || CtpAst {
            terms: vec![TermAst::constant("Bob"), TermAst::constant("Elon")],
            out_var: "w".into(),
            filters: Default::default(),
            algorithm: None,
        };
        let q = QueryAst {
            form: QueryForm::Select,
            head: vec!["w".into()],
            patterns: Vec::new(),
            ctps: vec![mk(), mk()],
        };
        let err = execute(&g, &q, &ExecOptions::default()).unwrap_err();
        assert!(matches!(err, EqlError::Validate(_)));
        assert!(
            err.to_string().contains("duplicate CTP output variable"),
            "{err}"
        );
    }
}
