//! # cs-eql — the Extended Query Language
//!
//! EQL (paper §2) combines Basic Graph Patterns with Connecting Tree
//! Patterns: `SELECT … WHERE { (s, e, d)… CONNECT(t1, …, tm -> w)
//! [filters] }`. This crate provides the lexer, parser, AST, and the
//! §3 evaluation strategy wiring `cs-engine` (BGPs, joins) to
//! `cs-core` (CTP search).
//!
//! Queries execute through a [`Session`], which owns the execution
//! options and a shape-keyed BGP plan cache, so a stream of
//! structurally similar queries amortises planning (Fig. 13):
//!
//! ```
//! use cs_eql::Session;
//! use cs_graph::figure1;
//!
//! let g = figure1();
//! let session = Session::new(&g);
//! let r = session.run(r#"
//!     SELECT x, w WHERE {
//!         (x : type = "entrepreneur", "citizenOf", "USA")
//!         CONNECT(x, "France" -> w) MAX 3 SCORE edgecount
//!     }
//! "#).unwrap();
//! assert!(r.rows() > 0);
//! ```
//!
//! Beyond one-shot [`Session::run`], a session offers
//! [`Session::prepare`] + [`Session::execute`] (parse once, execute
//! many), [`Session::execute_batch`] (CTP jobs of many queries in one
//! parallel dispatch), and [`Session::execute_streaming`] (a pull
//! iterator of connecting trees with TOP-k-style early termination).
//!
//! Owning sessions serve **live graphs**: [`Session::mutate`] applies
//! a [`cs_graph::Mutation`] batch and invalidates exactly the cached
//! plans and results the batch can affect, and [`Session::watch`]
//! registers a standing query whose [`Watch::poll`] emits result
//! deltas (see the [`watch`] module).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod result_cache;
pub mod session;
pub mod watch;

pub use ast::{CtpAst, CtpFiltersAst, EdgePatternAst, QueryAst, QueryForm, TermAst};
pub use exec::{
    execute, explain_plan, EqlError, ExecOptions, ExecStats, QueryResult, SeedNarrowing,
};
#[allow(deprecated)]
pub use exec::{run_ask, run_query, run_query_with};
pub use parser::{parse, ParseError};
pub use result_cache::{
    CacheCounters, CtpSignature, GraphToken, ResultCache, ResultCacheMode, SharedResultCache,
    DEFAULT_RESULT_CACHE_CAPACITY,
};
pub use session::{PreparedQuery, ResultStream, Session};
pub use watch::{Watch, WatchDelta, WatchSkip};
