//! # cs-eql — the Extended Query Language
//!
//! EQL (paper §2) combines Basic Graph Patterns with Connecting Tree
//! Patterns: `SELECT … WHERE { (s, e, d)… CONNECT(t1, …, tm -> w)
//! [filters] }`. This crate provides the lexer, parser, AST, and the
//! §3 evaluation strategy wiring `cs-engine` (BGPs, joins) to
//! `cs-core` (CTP search).
//!
//! ```
//! use cs_eql::run_query;
//! use cs_graph::figure1;
//!
//! let g = figure1();
//! let r = run_query(&g, r#"
//!     SELECT x, w WHERE {
//!         (x : type = "entrepreneur", "citizenOf", "USA")
//!         CONNECT(x, "France" -> w) MAX 3 SCORE edgecount
//!     }
//! "#).unwrap();
//! assert!(r.rows() > 0);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{CtpAst, CtpFiltersAst, EdgePatternAst, QueryAst, QueryForm, TermAst};
pub use exec::{
    execute, explain_plan, run_ask, run_query, run_query_with, EqlError, ExecOptions, ExecStats,
    QueryResult,
};
pub use parser::{parse, ParseError};
