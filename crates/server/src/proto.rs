//! The `csq/1` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame — request or response — has the same envelope, all
//! integers little-endian:
//!
//! ```text
//! u32 magic        "CSQ1" (0x31515343)
//! u32 frame-len    length of the body that follows (id + opcode + payload)
//! u64 request-id   chosen by the client; echoed on every response
//! u8  opcode
//! …   payload      opcode-specific
//! ```
//!
//! Request opcodes: `Query`, `Batch`, `Ask` (a [`RequestHeader`] plus
//! query text), `Stats`, `Ping`, `Cancel` (the target request id),
//! `Shutdown`, and the live-graph trio — `Mutate` (a batch of
//! [`WireMutation`]s, applied under one generation bump via the
//! server's epoch swap), `Subscribe` (register a standing `SELECT`,
//! answered with a subscription id), and `Poll` (emit the
//! subscription's result delta since its last poll). Response opcodes:
//! `Reply` (rendered results), `Error` (a typed [`ErrorCode`] +
//! message), `Pong`, `StatsReply`, `ShutdownAck`, `MutateReply`,
//! `SubscribeReply`, `DeltaReply`. `Cancel` has no response of its own
//! — the cancelled query answers with an `Error` frame carrying
//! [`ErrorCode::Cancelled`].
//!
//! Mutations address nodes symbolically — an exact node label, or a
//! raw `n<ID>` id — never by edge id: edge ids are renumbered by
//! delta compaction, so they are not stable across the wire. An
//! `InsertEdge`/`RemoveEdge` names its endpoints and edge label;
//! removal picks one live matching edge.
//!
//! The codec is defensive by construction: decoding never panics, a
//! frame body is bounded by [`MAX_FRAME_LEN`], and every malformed
//! input maps to a typed [`ProtoError`]. The proptest suite in
//! `tests/proto_robustness.rs` feeds arbitrary bytes through both the
//! byte-level and the socket-level paths.

use std::io::{Read, Write};

/// Frame magic: `b"CSQ1"` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"CSQ1");

/// Upper bound on a frame body (request id + opcode + payload). Large
/// enough for rendered result tables, small enough that a hostile
/// length prefix cannot make the server allocate unbounded memory.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Frame opcodes (requests and responses share the byte space;
/// responses have the high bit set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Execute one query (`SELECT` or `ASK`), reply with its rendering.
    Query = 0x01,
    /// Execute several queries through one cross-query dispatch.
    Batch = 0x02,
    /// Execute an `ASK` query, reply with its boolean.
    Ask = 0x03,
    /// Server statistics snapshot.
    Stats = 0x04,
    /// Liveness probe; the payload is echoed back.
    Ping = 0x05,
    /// Cancel the in-flight request named by the payload's `u64` id.
    Cancel = 0x06,
    /// Stop accepting connections and drain.
    Shutdown = 0x07,
    /// Apply a [`MutateRequest`] batch to the live graph.
    Mutate = 0x08,
    /// Register a standing `SELECT` query ([`QueryRequest`] payload).
    Subscribe = 0x09,
    /// Poll a subscription for its result delta ([`PollRequest`]).
    Poll = 0x0a,
    /// Successful query/batch/ask response ([`QueryReply`]).
    Reply = 0x81,
    /// Typed error response ([`ErrorReply`]).
    Error = 0x82,
    /// Ping echo.
    Pong = 0x83,
    /// Statistics text.
    StatsReply = 0x84,
    /// Shutdown acknowledged.
    ShutdownAck = 0x85,
    /// Mutation outcome ([`MutateReply`]).
    MutateReply = 0x86,
    /// Subscription registered ([`SubscribeReply`]).
    SubscribeReply = 0x87,
    /// Subscription delta ([`DeltaReply`]).
    DeltaReply = 0x88,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Result<Opcode, ProtoError> {
        Ok(match b {
            0x01 => Opcode::Query,
            0x02 => Opcode::Batch,
            0x03 => Opcode::Ask,
            0x04 => Opcode::Stats,
            0x05 => Opcode::Ping,
            0x06 => Opcode::Cancel,
            0x07 => Opcode::Shutdown,
            0x08 => Opcode::Mutate,
            0x09 => Opcode::Subscribe,
            0x0a => Opcode::Poll,
            0x81 => Opcode::Reply,
            0x82 => Opcode::Error,
            0x83 => Opcode::Pong,
            0x84 => Opcode::StatsReply,
            0x85 => Opcode::ShutdownAck,
            0x86 => Opcode::MutateReply,
            0x87 => Opcode::SubscribeReply,
            0x88 => Opcode::DeltaReply,
            other => return Err(ProtoError::BadOpcode(other)),
        })
    }
}

/// Typed error codes carried by [`Opcode::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The query failed to parse, validate, or seed.
    Query = 1,
    /// The request's cancel frame arrived while the search ran.
    Cancelled = 2,
    /// The per-query deadline elapsed mid-search.
    DeadlineExceeded = 3,
    /// Admission control rejected the request (run queue full).
    Overloaded = 4,
    /// The frame or payload was malformed.
    Protocol = 5,
    /// The server is shutting down.
    ShuttingDown = 6,
    /// Unexpected server-side failure.
    Internal = 7,
}

impl ErrorCode {
    /// Decodes an error-code byte.
    pub fn from_u8(b: u8) -> Result<ErrorCode, ProtoError> {
        Ok(match b {
            1 => ErrorCode::Query,
            2 => ErrorCode::Cancelled,
            3 => ErrorCode::DeadlineExceeded,
            4 => ErrorCode::Overloaded,
            5 => ErrorCode::Protocol,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            other => return Err(ProtoError::BadErrorCode(other)),
        })
    }
}

/// Errors of the codec itself (framing and payload decoding).
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying socket error (including EOF mid-frame).
    Io(std::io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic(u32),
    /// The length prefix exceeded [`MAX_FRAME_LEN`] (or was too short
    /// to hold the id + opcode).
    BadLength(u32),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown error-code byte.
    BadErrorCode(u8),
    /// A payload ended before its declared contents.
    Truncated,
    /// A string field was not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            ProtoError::BadLength(n) => write!(f, "bad frame length {n}"),
            ProtoError::BadOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            ProtoError::BadErrorCode(b) => write!(f, "unknown error code {b}"),
            ProtoError::Truncated => write!(f, "truncated payload"),
            ProtoError::BadUtf8 => write!(f, "string field is not UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen id, echoed on responses.
    pub request_id: u64,
    /// What the frame means.
    pub opcode: Opcode,
    /// Opcode-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame without payload.
    pub fn empty(request_id: u64, opcode: Opcode) -> Frame {
        Frame {
            request_id,
            opcode,
            payload: Vec::new(),
        }
    }
}

/// Writes one frame (single `write_all`, so concurrent writers
/// serialised by a lock emit whole frames).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let body_len = 8 + 1 + frame.payload.len();
    let mut buf = Vec::with_capacity(8 + body_len);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&(body_len as u32).to_le_bytes());
    buf.extend_from_slice(&frame.request_id.to_le_bytes());
    buf.push(frame.opcode as u8);
    buf.extend_from_slice(&frame.payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame, validating magic, length bound, and opcode.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ProtoError> {
    let mut head = [0u8; 8];
    r.read_exact(&mut head)?;
    let magic = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let len = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if !(9..=MAX_FRAME_LEN).contains(&len) {
        return Err(ProtoError::BadLength(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut cur = Cursor::new(&body);
    let request_id = cur.u64()?;
    let opcode = Opcode::from_u8(cur.u8()?)?;
    Ok(Frame {
        request_id,
        opcode,
        payload: cur.rest().to_vec(),
    })
}

/// Bounds-checked little-endian reader over a payload slice.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, ProtoError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ProtoError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    /// The unread remainder.
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }
}

/// Appends a `u32`-length-prefixed UTF-8 string.
fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Common header of `Query` / `Batch` / `Ask` payloads.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestHeader {
    /// Tenant name for fair-share scheduling; empty = the default
    /// tenant.
    pub tenant: String,
    /// Per-query deadline in milliseconds; `0` = the server default.
    pub deadline_ms: u32,
}

impl RequestHeader {
    /// Encodes the header into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.deadline_ms.to_le_bytes());
        put_string(buf, &self.tenant);
    }

    /// Decodes a header from `cur`.
    pub fn decode(cur: &mut Cursor<'_>) -> Result<RequestHeader, ProtoError> {
        let deadline_ms = cur.u32()?;
        let tenant = cur.string()?;
        Ok(RequestHeader {
            tenant,
            deadline_ms,
        })
    }
}

/// Payload of `Query` / `Ask`: a header plus the query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// Scheduling header.
    pub header: RequestHeader,
    /// The EQL query text.
    pub text: String,
}

impl QueryRequest {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.header.encode(&mut buf);
        put_string(&mut buf, &self.text);
        buf
    }

    /// Decodes the payload.
    pub fn decode(payload: &[u8]) -> Result<QueryRequest, ProtoError> {
        let mut cur = Cursor::new(payload);
        let header = RequestHeader::decode(&mut cur)?;
        let text = cur.string()?;
        Ok(QueryRequest { header, text })
    }
}

/// Payload of `Batch`: a header plus a list of query texts, executed
/// through one cross-query dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRequest {
    /// Scheduling header.
    pub header: RequestHeader,
    /// The queries, in execution order.
    pub queries: Vec<String>,
}

impl BatchRequest {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.header.encode(&mut buf);
        buf.extend_from_slice(&(self.queries.len() as u16).to_le_bytes());
        for q in &self.queries {
            put_string(&mut buf, q);
        }
        buf
    }

    /// Decodes the payload.
    pub fn decode(payload: &[u8]) -> Result<BatchRequest, ProtoError> {
        let mut cur = Cursor::new(payload);
        let header = RequestHeader::decode(&mut cur)?;
        let n = cur.u16()? as usize;
        let mut queries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            queries.push(cur.string()?);
        }
        Ok(BatchRequest { header, queries })
    }
}

/// Payload of `Reply`: the rendered result, byte-identical to what
/// local `csq` prints for the same query on the same graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// Answer rows (summed over a batch).
    pub rows: u64,
    /// `ASK` answer; `None` for `SELECT`.
    pub boolean: Option<bool>,
    /// Rendered result text.
    pub text: String,
}

impl QueryReply {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.push(match self.boolean {
            None => 0u8,
            Some(false) => 1,
            Some(true) => 2,
        });
        buf.extend_from_slice(&self.rows.to_le_bytes());
        put_string(&mut buf, &self.text);
        buf
    }

    /// Decodes the payload.
    pub fn decode(payload: &[u8]) -> Result<QueryReply, ProtoError> {
        let mut cur = Cursor::new(payload);
        let boolean = match cur.u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            _ => return Err(ProtoError::Truncated),
        };
        let rows = cur.u64()?;
        let text = cur.string()?;
        Ok(QueryReply {
            rows,
            boolean,
            text,
        })
    }
}

/// Payload of `Error`: a typed code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// What went wrong.
    pub code: ErrorCode,
    /// One-line detail.
    pub message: String,
}

impl ErrorReply {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![self.code as u8];
        put_string(&mut buf, &self.message);
        buf
    }

    /// Decodes the payload.
    pub fn decode(payload: &[u8]) -> Result<ErrorReply, ProtoError> {
        let mut cur = Cursor::new(payload);
        let code = ErrorCode::from_u8(cur.u8()?)?;
        let message = cur.string()?;
        Ok(ErrorReply { code, message })
    }
}

/// One graph mutation as it travels the wire. Node endpoints are
/// *symbolic* — an exact node label or a raw `n<ID>` reference — and
/// resolved server-side against the current epoch (a label introduced
/// by an earlier `InsertNode` of the same batch is referable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMutation {
    /// Add a node with a label and zero or more types.
    InsertNode {
        /// Node label.
        label: String,
        /// RDF types / PG labels.
        types: Vec<String>,
    },
    /// Add a labelled edge between two symbolically named nodes.
    InsertEdge {
        /// Source node reference.
        src: String,
        /// Edge label.
        label: String,
        /// Target node reference.
        dst: String,
    },
    /// Remove one live edge matching `src -label-> dst`.
    RemoveEdge {
        /// Source node reference.
        src: String,
        /// Edge label.
        label: String,
        /// Target node reference.
        dst: String,
    },
}

impl WireMutation {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            WireMutation::InsertNode { label, types } => {
                buf.push(0);
                put_string(buf, label);
                buf.extend_from_slice(&(types.len() as u16).to_le_bytes());
                for t in types {
                    put_string(buf, t);
                }
            }
            WireMutation::InsertEdge { src, label, dst } => {
                buf.push(1);
                put_string(buf, src);
                put_string(buf, label);
                put_string(buf, dst);
            }
            WireMutation::RemoveEdge { src, label, dst } => {
                buf.push(2);
                put_string(buf, src);
                put_string(buf, label);
                put_string(buf, dst);
            }
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<WireMutation, ProtoError> {
        Ok(match cur.u8()? {
            0 => {
                let label = cur.string()?;
                let n = cur.u16()? as usize;
                let mut types = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    types.push(cur.string()?);
                }
                WireMutation::InsertNode { label, types }
            }
            1 => WireMutation::InsertEdge {
                src: cur.string()?,
                label: cur.string()?,
                dst: cur.string()?,
            },
            2 => WireMutation::RemoveEdge {
                src: cur.string()?,
                label: cur.string()?,
                dst: cur.string()?,
            },
            _ => return Err(ProtoError::Truncated),
        })
    }
}

/// Payload of `Mutate`: a header plus the mutation batch, applied
/// atomically under one generation bump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutateRequest {
    /// Scheduling header.
    pub header: RequestHeader,
    /// The mutations, in application order.
    pub ops: Vec<WireMutation>,
}

impl MutateRequest {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.header.encode(&mut buf);
        buf.extend_from_slice(&(self.ops.len() as u16).to_le_bytes());
        for op in &self.ops {
            op.encode_into(&mut buf);
        }
        buf
    }

    /// Decodes the payload.
    pub fn decode(payload: &[u8]) -> Result<MutateRequest, ProtoError> {
        let mut cur = Cursor::new(payload);
        let header = RequestHeader::decode(&mut cur)?;
        let n = cur.u16()? as usize;
        let mut ops = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            ops.push(WireMutation::decode(&mut cur)?);
        }
        Ok(MutateRequest { header, ops })
    }
}

/// Payload of `MutateReply`: what the batch did to the live graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutateReply {
    /// The graph generation after the batch.
    pub generation: u64,
    /// Nodes inserted.
    pub nodes: u64,
    /// Edges inserted.
    pub edges: u64,
    /// Edges removed (no-op removes not counted).
    pub removed: u64,
    /// True if the batch tripped delta compaction.
    pub compacted: bool,
}

impl MutateReply {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.generation.to_le_bytes());
        buf.extend_from_slice(&self.nodes.to_le_bytes());
        buf.extend_from_slice(&self.edges.to_le_bytes());
        buf.extend_from_slice(&self.removed.to_le_bytes());
        buf.push(u8::from(self.compacted));
        buf
    }

    /// Decodes the payload.
    pub fn decode(payload: &[u8]) -> Result<MutateReply, ProtoError> {
        let mut cur = Cursor::new(payload);
        Ok(MutateReply {
            generation: cur.u64()?,
            nodes: cur.u64()?,
            edges: cur.u64()?,
            removed: cur.u64()?,
            compacted: cur.u8()? != 0,
        })
    }
}

/// Payload of `SubscribeReply`: the registered standing query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscribeReply {
    /// Connection-scoped subscription id, the `Poll` target.
    pub sub: u64,
    /// Generation of the baseline answer.
    pub generation: u64,
    /// Baseline answer rows.
    pub rows: u64,
}

impl SubscribeReply {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.sub.to_le_bytes());
        buf.extend_from_slice(&self.generation.to_le_bytes());
        buf.extend_from_slice(&self.rows.to_le_bytes());
        buf
    }

    /// Decodes the payload.
    pub fn decode(payload: &[u8]) -> Result<SubscribeReply, ProtoError> {
        let mut cur = Cursor::new(payload);
        Ok(SubscribeReply {
            sub: cur.u64()?,
            generation: cur.u64()?,
            rows: cur.u64()?,
        })
    }
}

/// Payload of `Poll`: a header plus the subscription id to poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollRequest {
    /// Scheduling header.
    pub header: RequestHeader,
    /// The subscription to poll.
    pub sub: u64,
}

impl PollRequest {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.header.encode(&mut buf);
        buf.extend_from_slice(&self.sub.to_le_bytes());
        buf
    }

    /// Decodes the payload.
    pub fn decode(payload: &[u8]) -> Result<PollRequest, ProtoError> {
        let mut cur = Cursor::new(payload);
        let header = RequestHeader::decode(&mut cur)?;
        let sub = cur.u64()?;
        Ok(PollRequest { header, sub })
    }
}

/// How a poll was decided without re-running the query (mirrors
/// `cs_eql::WatchSkip`; `Reran` when the query actually re-executed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PollSkip {
    /// The query re-ran (the delta lists are authoritative).
    Reran = 0,
    /// Generation unchanged since the last poll.
    Unchanged = 1,
    /// Mutated labels disjoint from the query's footprint.
    LabelsDisjoint = 2,
    /// The delta reach probe proved irrelevance.
    DeltaUnreachable = 3,
}

impl PollSkip {
    fn from_u8(b: u8) -> Result<PollSkip, ProtoError> {
        Ok(match b {
            0 => PollSkip::Reran,
            1 => PollSkip::Unchanged,
            2 => PollSkip::LabelsDisjoint,
            3 => PollSkip::DeltaUnreachable,
            _ => return Err(ProtoError::Truncated),
        })
    }
}

/// Payload of `DeltaReply`: the subscription's answer change since its
/// previous poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaReply {
    /// The generation the subscription is now current as of.
    pub generation: u64,
    /// How the poll was decided.
    pub skip: PollSkip,
    /// Rows that appeared.
    pub added: Vec<String>,
    /// Rows that disappeared.
    pub removed: Vec<String>,
}

impl DeltaReply {
    /// Encodes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.generation.to_le_bytes());
        buf.push(self.skip as u8);
        buf.extend_from_slice(&(self.added.len() as u32).to_le_bytes());
        for r in &self.added {
            put_string(&mut buf, r);
        }
        buf.extend_from_slice(&(self.removed.len() as u32).to_le_bytes());
        for r in &self.removed {
            put_string(&mut buf, r);
        }
        buf
    }

    /// Decodes the payload.
    pub fn decode(payload: &[u8]) -> Result<DeltaReply, ProtoError> {
        let mut cur = Cursor::new(payload);
        let generation = cur.u64()?;
        let skip = PollSkip::from_u8(cur.u8()?)?;
        let mut lists = [Vec::new(), Vec::new()];
        for list in &mut lists {
            let n = cur.u32()? as usize;
            list.reserve(n.min(4096));
            for _ in 0..n {
                list.push(cur.string()?);
            }
        }
        let [added, removed] = lists;
        Ok(DeltaReply {
            generation,
            skip,
            added,
            removed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = Frame {
            request_id: 7,
            opcode: Opcode::Query,
            payload: b"hello".to_vec(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        let g = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn bad_magic_rejected() {
        let f = Frame::empty(1, Opcode::Ping);
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        buf[0] ^= 0xff;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtoError::BadMagic(_))
        ));
    }

    #[test]
    fn oversized_length_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtoError::BadLength(_))
        ));
        // Too-short bodies (cannot hold id + opcode) are equally bad.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtoError::BadLength(4))
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let f = Frame {
            request_id: 3,
            opcode: Opcode::Query,
            payload: vec![0u8; 100],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtoError::Io(_))
        ));
    }

    #[test]
    fn request_payload_roundtrips() {
        let q = QueryRequest {
            header: RequestHeader {
                tenant: "alice".into(),
                deadline_ms: 250,
            },
            text: "SELECT w WHERE { CONNECT(\"a\", \"b\" -> w) }".into(),
        };
        assert_eq!(QueryRequest::decode(&q.encode()).unwrap(), q);

        let b = BatchRequest {
            header: RequestHeader::default(),
            queries: vec!["q1".into(), "q2".into()],
        };
        assert_eq!(BatchRequest::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn reply_payloads_roundtrip() {
        for boolean in [None, Some(true), Some(false)] {
            let r = QueryReply {
                rows: 42,
                boolean,
                text: "x\ty\n1\t2\n".into(),
            };
            assert_eq!(QueryReply::decode(&r.encode()).unwrap(), r);
        }
        let e = ErrorReply {
            code: ErrorCode::DeadlineExceeded,
            message: "deadline exceeded".into(),
        };
        assert_eq!(ErrorReply::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn live_graph_payloads_roundtrip() {
        let m = MutateRequest {
            header: RequestHeader {
                tenant: "t".into(),
                deadline_ms: 5,
            },
            ops: vec![
                WireMutation::InsertNode {
                    label: "Mars".into(),
                    types: vec!["planet".into(), "place".into()],
                },
                WireMutation::InsertEdge {
                    src: "Doug".into(),
                    label: "migratedTo".into(),
                    dst: "Mars".into(),
                },
                WireMutation::RemoveEdge {
                    src: "Doug".into(),
                    label: "citizenOf".into(),
                    dst: "France".into(),
                },
            ],
        };
        assert_eq!(MutateRequest::decode(&m.encode()).unwrap(), m);

        let r = MutateReply {
            generation: 9,
            nodes: 1,
            edges: 1,
            removed: 1,
            compacted: true,
        };
        assert_eq!(MutateReply::decode(&r.encode()).unwrap(), r);

        let s = SubscribeReply {
            sub: 3,
            generation: 9,
            rows: 12,
        };
        assert_eq!(SubscribeReply::decode(&s.encode()).unwrap(), s);

        let p = PollRequest {
            header: RequestHeader::default(),
            sub: 3,
        };
        assert_eq!(PollRequest::decode(&p.encode()).unwrap(), p);

        for skip in [
            PollSkip::Reran,
            PollSkip::Unchanged,
            PollSkip::LabelsDisjoint,
            PollSkip::DeltaUnreachable,
        ] {
            let d = DeltaReply {
                generation: 10,
                skip,
                added: vec!["x=Bob(n1)".into()],
                removed: vec!["x=Alice(n2)".into(), "x=Elon(n8)".into()],
            };
            assert_eq!(DeltaReply::decode(&d.encode()).unwrap(), d);
        }
    }

    #[test]
    fn live_graph_decoders_reject_truncated_payloads() {
        let m = MutateRequest {
            header: RequestHeader::default(),
            ops: vec![WireMutation::InsertEdge {
                src: "a".into(),
                label: "r".into(),
                dst: "b".into(),
            }],
        };
        let enc = m.encode();
        for cut in 0..enc.len() {
            assert!(MutateRequest::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
        let d = DeltaReply {
            generation: 1,
            skip: PollSkip::Reran,
            added: vec!["r".into()],
            removed: vec![],
        };
        let enc = d.encode();
        for cut in 0..enc.len() {
            assert!(DeltaReply::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decoders_reject_truncated_payloads() {
        let q = QueryRequest {
            header: RequestHeader {
                tenant: "t".into(),
                deadline_ms: 1,
            },
            text: "SELECT".into(),
        };
        let enc = q.encode();
        for cut in 0..enc.len() {
            assert!(
                QueryRequest::decode(&enc[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }
}
