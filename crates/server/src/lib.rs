//! `cs-server` — the `csqd` multi-tenant query server.
//!
//! Everything the paper's engine computes in-process, served over TCP:
//! N clients share one loaded graph (an mmap snapshot or generated
//! dataset), each connection gets its own [`Session`] (plan cache and
//! all), and a global admission-controlled scheduler keeps tenants
//! fairly shared across a fixed executor pool. The pieces:
//!
//! * [`proto`] — the `csq/1` length-prefixed binary protocol;
//! * [`scheduler`] — bounded, tenant-fair admission and dispatch;
//! * [`server`] — the accept/reader/executor threading around them;
//! * [`client`] — the blocking client (`csq connect`, `csq
//!   bench-serve`, tests);
//! * [`latency`] — the exact percentile histogram behind `bench-serve`.
//!
//! Per-query **deadlines** and **cooperative cancellation** ride the
//! typed path in `cs-eql` ([`cs_eql::ExecOptions::deadline`] /
//! [`cs_eql::ExecOptions::cancel`]): the engines' search loops poll a
//! shared flag every 64 steps, so a timed-out or cancelled query stops
//! mid-search and its connection receives a typed error frame instead
//! of a result.
//!
//! **Live graphs**: the `mutate` opcode applies a [`WireMutation`]
//! batch by *epoch swap* (clone the shared graph, apply under one
//! generation bump, swap the `Arc`), `subscribe` registers a standing
//! query, and `poll` re-emits its result delta — with the watch's
//! generation / label-footprint / reach-probe layers deciding when
//! nothing needs to re-run (reported as [`PollSkip`]).
//!
//! [`Session`]: cs_eql::Session

#![forbid(unsafe_code)]

pub mod client;
pub mod latency;
pub mod proto;
pub mod scheduler;
pub mod server;

pub use client::{Canceller, Client, ClientError};
pub use latency::LatencyHistogram;
pub use proto::{
    DeltaReply, ErrorCode, ErrorReply, MutateReply, PollSkip, QueryReply, RequestHeader,
    SubscribeReply, WireMutation,
};
pub use scheduler::{AdmitError, Scheduler, SchedulerConfig, SchedulerStats};
pub use server::{Server, ServerConfig};
