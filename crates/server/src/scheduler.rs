//! Admission-controlled fair-share scheduling.
//!
//! The scheduler generalises the engine's `threads` / `search_threads`
//! knobs (which share one *query's* work) to sharing the *server*
//! across tenants: a bounded global run queue feeds a fixed pool of
//! executor workers, and dispatch round-robins over the tenants that
//! still have headroom under their in-flight cap. Three rules:
//!
//! 1. **Admission** — a submit beyond [`SchedulerConfig::queue_capacity`]
//!    queued jobs is rejected with [`AdmitError::QueueFull`] (the
//!    `Overloaded` error frame), so a flood degrades into fast failures
//!    instead of unbounded memory growth.
//! 2. **Fair share** — `next` round-robins over tenants; a tenant at
//!    its [`SchedulerConfig::tenant_inflight`] cap is skipped until one
//!    of its jobs completes, so one chatty tenant cannot occupy every
//!    worker while others wait.
//! 3. **Drain on shutdown** — after [`Scheduler::shutdown`], submits
//!    are rejected but already-admitted jobs still run; `next` returns
//!    `None` once the queues are empty, letting workers exit.
//!
//! The scheduler is purely a data structure (a mutex-guarded state and
//! a condvar) — it owns no threads, which keeps it unit-testable and
//! keeps thread spawning confined to `server.rs`. Lock poisoning is
//! absorbed with `unwrap_or_else(PoisonError::into_inner)`: the state
//! transitions below are each atomic under the lock, so a panicking
//! peer cannot leave the counters half-updated.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Admission and fairness knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Maximum queued (admitted, not yet running) jobs across all
    /// tenants.
    pub queue_capacity: usize,
    /// Maximum concurrently *running* jobs per tenant.
    pub tenant_inflight: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue_capacity: 256,
            tenant_inflight: 2,
        }
    }
}

/// Why a submit was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The global run queue is at capacity.
    QueueFull,
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull => write!(f, "run queue full"),
            AdmitError::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Per-tenant queue and in-flight accounting.
#[derive(Default)]
struct Tenant<T> {
    queue: VecDeque<T>,
    inflight: usize,
}

struct State<T> {
    /// Tenants keyed by name; entries persist for the scheduler's
    /// lifetime (tenant cardinality is small — it is a client-supplied
    /// *name*, not a connection).
    tenants: HashMap<String, Tenant<T>>,
    /// Round-robin order over tenant names, extended on first submit.
    order: Vec<String>,
    /// Next position in `order` to consider.
    cursor: usize,
    /// Total queued jobs (admission bound).
    queued: usize,
    shutdown: bool,
}

/// Counters for the `stats` opcode, snapshot under the lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs currently admitted and waiting.
    pub queued: usize,
    /// Jobs currently running on workers.
    pub inflight: usize,
    /// Tenants seen since start.
    pub tenants: usize,
}

/// The bounded, tenant-fair run queue. `T` is the job payload; the
/// server uses one scheduler of connection-tagged query jobs.
pub struct Scheduler<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    cfg: SchedulerConfig,
}

impl<T> Scheduler<T> {
    /// An empty scheduler with the given knobs (capacities are clamped
    /// to at least 1).
    pub fn new(cfg: SchedulerConfig) -> Scheduler<T> {
        let cfg = SchedulerConfig {
            queue_capacity: cfg.queue_capacity.max(1),
            tenant_inflight: cfg.tenant_inflight.max(1),
        };
        Scheduler {
            state: Mutex::new(State {
                tenants: HashMap::new(),
                order: Vec::new(),
                cursor: 0,
                queued: 0,
                shutdown: false,
            }),
            ready: Condvar::new(),
            cfg,
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits one job for `tenant`, or rejects it at the door.
    pub fn submit(&self, tenant: &str, job: T) -> Result<(), AdmitError> {
        let mut s = self.lock();
        if s.shutdown {
            return Err(AdmitError::ShuttingDown);
        }
        if s.queued >= self.cfg.queue_capacity {
            return Err(AdmitError::QueueFull);
        }
        if !s.tenants.contains_key(tenant) {
            s.order.push(tenant.to_string());
        }
        s.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Tenant {
                queue: VecDeque::new(),
                inflight: 0,
            })
            .queue
            .push_back(job);
        s.queued += 1;
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Picks the next runnable job, round-robin over tenants under
    /// their in-flight cap. Blocks while the queues are empty; returns
    /// `None` only when shut down *and* drained.
    pub fn next(&self) -> Option<(String, T)> {
        let mut s = self.lock();
        loop {
            // One full rotation over the tenant order, starting at the
            // cursor, picking the first tenant with queued work and
            // in-flight headroom.
            let n = s.order.len();
            for i in 0..n {
                let pos = (s.cursor + i) % n;
                let name = s.order[pos].clone();
                let Some(t) = s.tenants.get_mut(&name) else {
                    continue;
                };
                if t.inflight >= self.cfg.tenant_inflight || t.queue.is_empty() {
                    continue;
                }
                let job = t.queue.pop_front()?; // non-empty by the check above
                t.inflight += 1;
                s.queued -= 1;
                s.cursor = (pos + 1) % n;
                return Some((name, job));
            }
            if s.shutdown && s.queued == 0 {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks one of `tenant`'s running jobs complete, freeing its
    /// in-flight slot.
    pub fn done(&self, tenant: &str) {
        let mut s = self.lock();
        if let Some(t) = s.tenants.get_mut(tenant) {
            t.inflight = t.inflight.saturating_sub(1);
        }
        drop(s);
        // A freed slot can unblock a worker waiting on this tenant's
        // queued jobs — and shutdown waits for inflight to drain.
        self.ready.notify_all();
    }

    /// Stops admission; queued jobs still drain through `next`.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.ready.notify_all();
    }

    /// True after [`Scheduler::shutdown`].
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Snapshot of queue depth and in-flight totals.
    pub fn stats(&self) -> SchedulerStats {
        let s = self.lock();
        SchedulerStats {
            queued: s.queued,
            inflight: s.tenants.values().map(|t| t.inflight).sum(),
            tenants: s.tenants.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(queue: usize, inflight: usize) -> Scheduler<u32> {
        Scheduler::new(SchedulerConfig {
            queue_capacity: queue,
            tenant_inflight: inflight,
        })
    }

    #[test]
    fn fifo_within_one_tenant() {
        let s = sched(8, 4);
        for j in 0..3 {
            s.submit("a", j).unwrap();
        }
        for j in 0..3 {
            assert_eq!(s.next(), Some(("a".into(), j)));
        }
    }

    #[test]
    fn round_robin_across_tenants() {
        let s = sched(16, 4);
        for j in 0..2 {
            s.submit("a", j).unwrap();
            s.submit("b", 10 + j).unwrap();
        }
        let order: Vec<String> = (0..4).map(|_| s.next().unwrap().0).collect();
        assert_eq!(order, ["a", "b", "a", "b"]);
    }

    #[test]
    fn inflight_cap_skips_saturated_tenant() {
        let s = sched(16, 1);
        s.submit("a", 1).unwrap();
        s.submit("a", 2).unwrap();
        s.submit("b", 3).unwrap();
        assert_eq!(s.next(), Some(("a".into(), 1)));
        // "a" is at its cap: its second job must wait behind "b".
        assert_eq!(s.next(), Some(("b".into(), 3)));
        s.done("a");
        assert_eq!(s.next(), Some(("a".into(), 2)));
    }

    #[test]
    fn queue_capacity_rejects_at_admission() {
        let s = sched(2, 4);
        s.submit("a", 1).unwrap();
        s.submit("b", 2).unwrap();
        assert_eq!(s.submit("c", 3), Err(AdmitError::QueueFull));
        // Dispatching (not completing) frees queue space: admission
        // bounds *waiting* jobs.
        s.next().unwrap();
        s.submit("c", 3).unwrap();
    }

    #[test]
    fn shutdown_rejects_submits_but_drains_queue() {
        let s = sched(8, 4);
        s.submit("a", 1).unwrap();
        s.shutdown();
        assert_eq!(s.submit("a", 2), Err(AdmitError::ShuttingDown));
        assert_eq!(s.next(), Some(("a".into(), 1)));
        assert_eq!(s.next(), None);
        assert_eq!(s.next(), None, "drained shutdown stays terminal");
    }

    #[test]
    fn next_blocks_until_submit() {
        let s = sched(8, 4);
        std::thread::scope(|scope| {
            let h = scope.spawn(|| s.next());
            std::thread::sleep(std::time::Duration::from_millis(20));
            s.submit("a", 7).unwrap();
            assert_eq!(h.join().unwrap(), Some(("a".into(), 7)));
        });
    }

    #[test]
    fn stats_snapshot_tracks_counts() {
        let s = sched(8, 4);
        s.submit("a", 1).unwrap();
        s.submit("b", 2).unwrap();
        assert_eq!(
            s.stats(),
            SchedulerStats {
                queued: 2,
                inflight: 0,
                tenants: 2
            }
        );
        s.next().unwrap();
        let st = s.stats();
        assert_eq!((st.queued, st.inflight), (1, 1));
    }
}
