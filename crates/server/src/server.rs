//! `csqd`'s connection and execution machinery.
//!
//! Threading model (all spawning in this file, inside one
//! [`std::thread::scope`]):
//!
//! * the **accept loop** (the calling thread) polls a non-blocking
//!   listener, handing each connection to a reader thread;
//! * one **reader thread per connection** decodes frames and either
//!   answers control frames (`ping`, `stats`, `cancel`, `shutdown`)
//!   in-line or submits query jobs to the [`Scheduler`];
//! * a fixed pool of **executor workers** pulls jobs tenant-fairly and
//!   runs them on the submitting connection's [`Session`].
//!
//! Every connection shares one `Arc<Graph>` (e.g. an mmap-loaded
//! snapshot) and owns its session, so plan caches are per-connection
//! while the graph is loaded once. The cross-query *result* cache is
//! upgraded to a single [`SharedResultCache`] at [`Server::bind`]
//! (unless configured off), so one connection's completed CTP searches
//! answer any connection's repeats; its counters ride the `stats`
//! opcode. Responses are written under a per-connection writer lock —
//! control replies from the reader thread and query replies from
//! workers interleave as whole frames.
//!
//! **Live graphs** are served by *epoch swap*: the current graph sits
//! behind an `RwLock<Arc<Graph>>`, and a `mutate` request clones it,
//! applies the batch (one generation bump), and swaps the `Arc` —
//! readers running against the old epoch finish undisturbed on their
//! pinned `Arc`. Each connection's worker notices the swap by
//! `Arc::ptr_eq` before its next job and rebuilds the session over the
//! new epoch (dropping its plan cache; the shared result cache needs
//! no flush because entries are keyed by graph generation).
//! `subscribe` registers a standing query ([`cs_eql::Watch`]) on the
//! connection; `poll` re-emits its result delta, riding the watch's
//! generation / label-footprint / reach-probe skip layers. Writers are
//! serialised by a dedicated mutate lock, so batches never race each
//! other's clones.
//!
//! Deadlines and cancellation ride the typed path built into the
//! engine: the worker arms [`ExecOptions::deadline`] /
//! [`ExecOptions::cancel`], the search's cooperative checks stop it
//! mid-flight, and the resulting [`EqlError::DeadlineExceeded`] /
//! [`EqlError::Cancelled`] becomes an error frame with the matching
//! [`ErrorCode`]. A `cancel` frame only raises the target's
//! [`CancelFlag`] — the *cancelled request itself* answers with the
//! error frame, so the client never waits on a dropped reply.

use crate::proto::{
    read_frame, write_frame, BatchRequest, Cursor, DeltaReply, ErrorCode, ErrorReply, Frame,
    MutateReply, MutateRequest, Opcode, PollRequest, PollSkip, ProtoError, QueryReply,
    QueryRequest, WireMutation,
};
use crate::scheduler::{AdmitError, Scheduler, SchedulerConfig};
use cs_core::CancelFlag;
use cs_eql::{
    CacheCounters, EqlError, ExecOptions, ResultCacheMode, Session, SharedResultCache, Watch,
    WatchSkip,
};
use cs_graph::{Graph, Mutation, NodeId};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// How long the accept loop sleeps between polls, and the granularity
/// at which idle reader threads notice shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(5);
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor worker threads (clamped to at least 1).
    pub workers: usize,
    /// Admission control and tenant fairness knobs.
    pub scheduler: SchedulerConfig,
    /// Deadline applied to requests that do not carry one
    /// (`deadline_ms == 0`). `None` = no default deadline.
    pub default_deadline: Option<Duration>,
    /// Base execution options for every connection's session
    /// (`threads` / `search_threads` budgets, default algorithm, …).
    /// Per-request deadline/cancel are overlaid per job. A
    /// [`ResultCacheMode::On`] here (the default) is upgraded by
    /// [`Server::bind`] to one [`ResultCacheMode::Shared`] cache for
    /// the whole server; `Off` disables caching.
    pub exec: ExecOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            scheduler: SchedulerConfig::default(),
            default_deadline: None,
            exec: ExecOptions::default(),
        }
    }
}

/// Serving counters, exposed through the `stats` opcode.
#[derive(Default)]
struct ServerCounters {
    connections: AtomicU64,
    queries_ok: AtomicU64,
    queries_failed: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
    rejected: AtomicU64,
    mutations: AtomicU64,
}

impl ServerCounters {
    fn bump(counter: &AtomicU64) {
        // ORDERING: Relaxed — monotonic statistics counters; readers
        // only format them into a report, no data is published through
        // them.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn get(counter: &AtomicU64) -> u64 {
        // ORDERING: Relaxed — see `bump`.
        counter.load(Ordering::Relaxed)
    }
}

/// One admitted query job.
struct Job {
    conn: Arc<ConnShared>,
    request_id: u64,
    kind: JobKind,
    /// Absolute deadline, fixed at admission so queueing time counts
    /// against the budget.
    deadline: Option<Instant>,
    cancel: CancelFlag,
}

enum JobKind {
    Query(String),
    Ask(String),
    Batch(Vec<String>),
    Mutate(Vec<WireMutation>),
    Subscribe(String),
    Poll(u64),
}

/// What a successfully executed job answers with.
enum ReplyKind {
    Query(QueryReply),
    Mutate(MutateReply),
    Subscribe(crate::proto::SubscribeReply),
    Delta(DeltaReply),
}

/// A connection's session pinned to the graph epoch it was built over,
/// plus its standing queries. Watches outlive session rebuilds — a
/// rebuilt session serves a *clone-descendant* of the same graph, and
/// generations survive cloning, so a watch's incremental poll stays
/// valid across epochs.
struct ConnState {
    session: Session<'static>,
    /// The epoch the session was built over; compared by `Arc::ptr_eq`
    /// against the server's current epoch before every job.
    epoch: Arc<Graph>,
    /// Standing queries, keyed by subscription id.
    subs: HashMap<u64, Watch>,
    next_sub: u64,
}

/// Per-connection state shared between its reader thread and the
/// executor workers.
struct ConnShared {
    writer: Mutex<TcpStream>,
    /// The connection's session and subscriptions. `Session` is `!Sync`
    /// (its plan cache sits behind a `RefCell`), so workers take it
    /// under a mutex for the duration of a query; queries *within* one
    /// connection are serialised, queries across connections run
    /// concurrently.
    state: Mutex<ConnState>,
    /// Cancel flags of this connection's admitted-but-unfinished
    /// requests, keyed by request id — the `cancel` opcode's target
    /// registry.
    inflight: Mutex<HashMap<u64, CancelFlag>>,
}

impl ConnShared {
    fn send(&self, frame: &Frame) {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // A failed write means the client is gone; its reader thread
        // notices on its next read and tears the connection down.
        let _ = write_frame(&mut *w, frame);
    }

    fn send_error(&self, request_id: u64, code: ErrorCode, message: impl Into<String>) {
        self.send(&Frame {
            request_id,
            opcode: Opcode::Error,
            payload: ErrorReply {
                code,
                message: message.into(),
            }
            .encode(),
        });
    }
}

/// Wraps a read-timeout socket so `read_frame` blocks *interruptibly*:
/// each timeout tick re-checks the server's shutdown flag instead of
/// surfacing a spurious mid-frame error.
struct InterruptibleReader<'a> {
    stream: &'a TcpStream,
    shutdown: &'a AtomicBool,
}

impl Read for InterruptibleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // ORDERING: Relaxed — advisory stop signal; no data
                    // is published through the flag.
                    if self.shutdown.load(Ordering::Relaxed) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionAborted,
                            "server shutting down",
                        ));
                    }
                }
                r => return r,
            }
        }
    }
}

/// The `csqd` server: a bound listener plus the shared graph.
pub struct Server {
    listener: TcpListener,
    /// The current graph epoch. `mutate` swaps the `Arc`; readers pin
    /// the epoch they started on.
    epoch: RwLock<Arc<Graph>>,
    /// Serialises mutation batches (clone → apply → swap), so two
    /// writers never race each other's clones.
    mutate_lock: Mutex<()>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    counters: ServerCounters,
    /// The server-wide result cache every connection's session shares
    /// (`None` when caching is configured off). Kept here so the
    /// `stats` opcode can report its counters.
    result_cache: Option<SharedResultCache>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over
    /// the shared graph. A [`ResultCacheMode::On`] in `cfg.exec` is
    /// upgraded to one [`ResultCacheMode::Shared`] cache (sized by
    /// [`ExecOptions::result_cache_capacity`]) handed to every
    /// connection's session.
    pub fn bind(addr: &str, graph: Arc<Graph>, mut cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let result_cache = match &cfg.exec.result_cache {
            ResultCacheMode::Off => None,
            ResultCacheMode::On => {
                let shared = SharedResultCache::new(cfg.exec.result_cache_capacity);
                cfg.exec.result_cache = ResultCacheMode::Shared(shared.clone());
                Some(shared)
            }
            ResultCacheMode::Shared(shared) => Some(shared.clone()),
        };
        Ok(Server {
            listener,
            epoch: RwLock::new(graph),
            mutate_lock: Mutex::new(()),
            cfg,
            shutdown: AtomicBool::new(false),
            counters: ServerCounters::default(),
            result_cache,
        })
    }

    /// The current graph epoch.
    fn current_graph(&self) -> Arc<Graph> {
        self.epoch
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Asks the serve loop to stop: stops accepting, drains admitted
    /// work, unblocks readers. Callable from any thread (e.g. a test
    /// harness holding the `Server` in an `Arc`).
    pub fn request_shutdown(&self) {
        // ORDERING: Relaxed — advisory stop signal polled by the
        // accept loop and the per-connection readers; the `thread::scope`
        // join below is what synchronises their actual teardown.
        self.shutdown.store(true, Ordering::Relaxed);
    }

    fn shutting_down(&self) -> bool {
        // ORDERING: Relaxed — see `request_shutdown`.
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Serves until a `shutdown` frame (or [`Server::request_shutdown`])
    /// arrives, then drains and returns. Blocks the calling thread.
    pub fn run(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let sched: Scheduler<Job> = Scheduler::new(self.cfg.scheduler.clone());
        let workers = self.cfg.workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop(&sched));
            }
            while !self.shutting_down() {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        ServerCounters::bump(&self.counters.connections);
                        scope.spawn(|| self.serve_connection(stream, &sched));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    // Transient accept failures (e.g. a connection reset
                    // before accept) must not kill the server.
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
            sched.shutdown();
        });
        Ok(())
    }

    /// Executor worker: pulls tenant-fair jobs until drained shutdown.
    fn worker_loop(&self, sched: &Scheduler<Job>) {
        while let Some((tenant, job)) = sched.next() {
            self.execute(job);
            sched.done(&tenant);
        }
    }

    /// Runs one job on its connection's session and writes the reply.
    fn execute(&self, job: Job) {
        let frame = self.run_job(&job);
        job.conn
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&job.request_id);
        job.conn.send(&frame);
    }

    fn run_job(&self, job: &Job) -> Frame {
        let mut state = job
            .conn
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Epoch check: a mutation may have swapped the graph since this
        // connection's last job. Rebuild the session over the current
        // epoch (subscriptions carry over — generations survive the
        // clone the swap was built from).
        let current = self.current_graph();
        if !Arc::ptr_eq(&state.epoch, &current) {
            state.session = Session::from_shared_with(Arc::clone(&current), self.cfg.exec.clone());
            state.epoch = current;
        }
        // Overlay the per-request controls; the remaining budget is
        // measured from *now*, so time spent queued has already been
        // charged against the absolute deadline.
        let opts = state.session.options_mut();
        opts.cancel = Some(job.cancel.clone());
        opts.deadline = job
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()));

        let graph = Arc::clone(&state.epoch);
        let graph = graph.as_ref();
        let session = &state.session;
        let reply = match &job.kind {
            JobKind::Query(text) => session.run(text).map(|r| {
                ReplyKind::Query(QueryReply {
                    rows: r.rows() as u64,
                    boolean: r.boolean,
                    text: r.render(graph),
                })
            }),
            JobKind::Ask(text) => session.ask(text).map(|b| {
                ReplyKind::Query(QueryReply {
                    rows: u64::from(b),
                    boolean: Some(b),
                    text: format!("{b}\n"),
                })
            }),
            JobKind::Batch(texts) => {
                let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
                let results = session.execute_batch(&refs);
                let mut rows = 0u64;
                let mut text = String::new();
                let mut first_err: Option<EqlError> = None;
                for r in results {
                    match r {
                        Ok(q) => {
                            rows += q.rows() as u64;
                            text.push_str(&q.render(graph));
                        }
                        // Typed control errors fail the whole batch —
                        // the deadline/flag applies to the batch, not
                        // one member.
                        Err(e @ (EqlError::DeadlineExceeded | EqlError::Cancelled)) => {
                            first_err = Some(e);
                            break;
                        }
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(ReplyKind::Query(QueryReply {
                        rows,
                        boolean: None,
                        text,
                    })),
                }
            }
            JobKind::Mutate(ops) => self.apply_mutations(ops).map(ReplyKind::Mutate),
            JobKind::Subscribe(text) => state.session.watch(text).map(|w| {
                let sub = state.next_sub;
                state.next_sub += 1;
                let reply = crate::proto::SubscribeReply {
                    sub,
                    generation: w.generation(),
                    rows: w.rows().len() as u64,
                };
                state.subs.insert(sub, w);
                ReplyKind::Subscribe(reply)
            }),
            JobKind::Poll(sub) => {
                let ConnState { session, subs, .. } = &mut *state;
                match subs.get_mut(sub) {
                    None => Err(EqlError::Validate(format!(
                        "unknown subscription {sub} (subscriptions are per-connection)"
                    ))),
                    Some(w) => w.poll(session).map(|d| {
                        ReplyKind::Delta(DeltaReply {
                            generation: d.generation,
                            skip: match d.skipped {
                                None => PollSkip::Reran,
                                Some(WatchSkip::Unchanged) => PollSkip::Unchanged,
                                Some(WatchSkip::LabelsDisjoint) => PollSkip::LabelsDisjoint,
                                Some(WatchSkip::DeltaUnreachable) => PollSkip::DeltaUnreachable,
                            },
                            added: d.added,
                            removed: d.removed,
                        })
                    }),
                }
            }
        };
        let opts = state.session.options_mut();
        opts.cancel = None;
        opts.deadline = None;
        drop(state);

        match reply {
            Ok(r) => {
                ServerCounters::bump(&self.counters.queries_ok);
                let (opcode, payload) = match r {
                    ReplyKind::Query(q) => (Opcode::Reply, q.encode()),
                    ReplyKind::Mutate(m) => (Opcode::MutateReply, m.encode()),
                    ReplyKind::Subscribe(s) => (Opcode::SubscribeReply, s.encode()),
                    ReplyKind::Delta(d) => (Opcode::DeltaReply, d.encode()),
                };
                Frame {
                    request_id: job.request_id,
                    opcode,
                    payload,
                }
            }
            Err(e) => {
                let code = match e {
                    EqlError::Cancelled => {
                        ServerCounters::bump(&self.counters.cancelled);
                        ErrorCode::Cancelled
                    }
                    EqlError::DeadlineExceeded => {
                        ServerCounters::bump(&self.counters.deadline_exceeded);
                        ErrorCode::DeadlineExceeded
                    }
                    _ => {
                        ServerCounters::bump(&self.counters.queries_failed);
                        ErrorCode::Query
                    }
                };
                Frame {
                    request_id: job.request_id,
                    opcode: Opcode::Error,
                    payload: ErrorReply {
                        code,
                        message: e.to_string(),
                    }
                    .encode(),
                }
            }
        }
    }

    /// Applies one mutation batch by epoch swap: clone the current
    /// graph, resolve the symbolic node references, apply (one
    /// generation bump), and publish the clone as the new epoch.
    /// Serialised by the mutate lock; resolution failures reject the
    /// whole batch before anything is applied.
    fn apply_mutations(&self, ops: &[WireMutation]) -> Result<MutateReply, EqlError> {
        let _writer = self
            .mutate_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let base = self.current_graph();
        let resolved = resolve_wire_ops(&base, ops).map_err(EqlError::Mutate)?;
        let mut g: Graph = (*base).clone();
        let applied = g.apply(resolved);
        *self.epoch.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(g);
        ServerCounters::bump(&self.counters.mutations);
        Ok(MutateReply {
            generation: applied.generation,
            nodes: applied.nodes.len() as u64,
            edges: applied.edges.len() as u64,
            removed: applied.removed as u64,
            compacted: applied.compacted,
        })
    }

    /// Per-connection reader: decodes frames until disconnect, protocol
    /// desync, or shutdown.
    fn serve_connection(&self, stream: TcpStream, sched: &Scheduler<Job>) {
        if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
            return;
        }
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let epoch = self.current_graph();
        let conn = Arc::new(ConnShared {
            writer: Mutex::new(writer),
            state: Mutex::new(ConnState {
                session: Session::from_shared_with(Arc::clone(&epoch), self.cfg.exec.clone()),
                epoch,
                subs: HashMap::new(),
                next_sub: 1,
            }),
            inflight: Mutex::new(HashMap::new()),
        });
        let mut reader = InterruptibleReader {
            stream: &stream,
            shutdown: &self.shutdown,
        };
        loop {
            match read_frame(&mut reader) {
                Ok(frame) => {
                    if !self.handle_frame(&conn, frame, sched) {
                        break;
                    }
                }
                // Disconnect (or shutdown): tear this connection down.
                Err(ProtoError::Io(_)) => break,
                // Framing desync: the byte stream is unrecoverable, so
                // report once and close — but only this connection.
                Err(e) => {
                    conn.send_error(0, ErrorCode::Protocol, e.to_string());
                    break;
                }
            }
        }
        // Whatever this connection still has running is for nobody
        // now; raising the flags lets the searches stop early instead
        // of computing into a closed socket.
        for flag in conn
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            flag.cancel();
        }
    }

    /// Dispatches one decoded frame. Returns `false` to close the
    /// connection.
    fn handle_frame(&self, conn: &Arc<ConnShared>, frame: Frame, sched: &Scheduler<Job>) -> bool {
        match frame.opcode {
            Opcode::Query | Opcode::Ask => {
                let req = match QueryRequest::decode(&frame.payload) {
                    Ok(r) => r,
                    Err(e) => {
                        conn.send_error(frame.request_id, ErrorCode::Protocol, e.to_string());
                        return true;
                    }
                };
                let kind = if frame.opcode == Opcode::Query {
                    JobKind::Query(req.text)
                } else {
                    JobKind::Ask(req.text)
                };
                self.admit(conn, frame.request_id, &req.header, kind, sched);
                true
            }
            Opcode::Batch => {
                let req = match BatchRequest::decode(&frame.payload) {
                    Ok(r) => r,
                    Err(e) => {
                        conn.send_error(frame.request_id, ErrorCode::Protocol, e.to_string());
                        return true;
                    }
                };
                self.admit(
                    conn,
                    frame.request_id,
                    &req.header,
                    JobKind::Batch(req.queries),
                    sched,
                );
                true
            }
            Opcode::Mutate => {
                let req = match MutateRequest::decode(&frame.payload) {
                    Ok(r) => r,
                    Err(e) => {
                        conn.send_error(frame.request_id, ErrorCode::Protocol, e.to_string());
                        return true;
                    }
                };
                self.admit(
                    conn,
                    frame.request_id,
                    &req.header,
                    JobKind::Mutate(req.ops),
                    sched,
                );
                true
            }
            Opcode::Subscribe => {
                let req = match QueryRequest::decode(&frame.payload) {
                    Ok(r) => r,
                    Err(e) => {
                        conn.send_error(frame.request_id, ErrorCode::Protocol, e.to_string());
                        return true;
                    }
                };
                self.admit(
                    conn,
                    frame.request_id,
                    &req.header,
                    JobKind::Subscribe(req.text),
                    sched,
                );
                true
            }
            Opcode::Poll => {
                let req = match PollRequest::decode(&frame.payload) {
                    Ok(r) => r,
                    Err(e) => {
                        conn.send_error(frame.request_id, ErrorCode::Protocol, e.to_string());
                        return true;
                    }
                };
                self.admit(
                    conn,
                    frame.request_id,
                    &req.header,
                    JobKind::Poll(req.sub),
                    sched,
                );
                true
            }
            Opcode::Cancel => {
                // Fire-and-forget: the cancelled request itself answers
                // with its Cancelled error frame.
                if let Ok(target) = Cursor::new(&frame.payload).u64() {
                    if let Some(flag) = conn
                        .inflight
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .get(&target)
                    {
                        flag.cancel();
                    }
                }
                true
            }
            Opcode::Ping => {
                conn.send(&Frame {
                    request_id: frame.request_id,
                    opcode: Opcode::Pong,
                    payload: frame.payload,
                });
                true
            }
            Opcode::Stats => {
                conn.send(&Frame {
                    request_id: frame.request_id,
                    opcode: Opcode::StatsReply,
                    payload: self.stats_text(sched).into_bytes(),
                });
                true
            }
            Opcode::Shutdown => {
                conn.send(&Frame::empty(frame.request_id, Opcode::ShutdownAck));
                self.request_shutdown();
                false
            }
            // A client sending response opcodes is off-protocol.
            Opcode::Reply
            | Opcode::Error
            | Opcode::Pong
            | Opcode::StatsReply
            | Opcode::ShutdownAck
            | Opcode::MutateReply
            | Opcode::SubscribeReply
            | Opcode::DeltaReply => {
                conn.send_error(
                    frame.request_id,
                    ErrorCode::Protocol,
                    "response opcode sent by client",
                );
                false
            }
        }
    }

    /// Admission: registers the cancel flag and submits the job, or
    /// answers with the typed rejection.
    fn admit(
        &self,
        conn: &Arc<ConnShared>,
        request_id: u64,
        header: &crate::proto::RequestHeader,
        kind: JobKind,
        sched: &Scheduler<Job>,
    ) {
        let deadline_ms = if header.deadline_ms > 0 {
            Some(Duration::from_millis(u64::from(header.deadline_ms)))
        } else {
            self.cfg.default_deadline
        };
        let cancel = CancelFlag::new();
        conn.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(request_id, cancel.clone());
        let job = Job {
            conn: Arc::clone(conn),
            request_id,
            kind,
            deadline: deadline_ms.map(|d| Instant::now() + d),
            cancel,
        };
        if let Err(e) = sched.submit(&header.tenant, job) {
            ServerCounters::bump(&self.counters.rejected);
            conn.inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&request_id);
            let code = match e {
                AdmitError::QueueFull => ErrorCode::Overloaded,
                AdmitError::ShuttingDown => ErrorCode::ShuttingDown,
            };
            conn.send_error(request_id, code, e.to_string());
        }
    }

    fn stats_text(&self, sched: &Scheduler<Job>) -> String {
        let s = sched.stats();
        let c = &self.counters;
        let (rc, rc_entries) = match &self.result_cache {
            Some(shared) => (shared.counters(), shared.len()),
            None => (CacheCounters::default(), 0),
        };
        let g = self.current_graph();
        format!(
            "graph: {} nodes, {} edges, generation {} ({} mutation batch(es))\n\
             scheduler: {} queued, {} inflight, {} tenant(s)\n\
             served: {} ok, {} failed, {} cancelled, {} deadline_exceeded, {} rejected\n\
             result_cache: {} hits, {} misses, {} subsumed, {} trees_filtered, {} entries\n\
             connections: {}\n",
            g.node_count(),
            g.edge_count(),
            g.generation(),
            ServerCounters::get(&c.mutations),
            s.queued,
            s.inflight,
            s.tenants,
            ServerCounters::get(&c.queries_ok),
            ServerCounters::get(&c.queries_failed),
            ServerCounters::get(&c.cancelled),
            ServerCounters::get(&c.deadline_exceeded),
            ServerCounters::get(&c.rejected),
            rc.hits,
            rc.misses,
            rc.subsumed,
            rc.trees_filtered,
            rc_entries,
            ServerCounters::get(&c.connections),
        )
    }
}

/// Resolves a symbolic node reference — an exact node label or a raw
/// `n<ID>` id — against `g`, extended by `extra` nodes the current
/// batch inserts (via `names` for labels introduced in-batch).
fn resolve_wire_node(
    g: &Graph,
    names: &HashMap<&str, NodeId>,
    extra: usize,
    tok: &str,
) -> Result<NodeId, String> {
    if let Some(&n) = names.get(tok) {
        return Ok(n);
    }
    if let Some(raw) = tok.strip_prefix('n') {
        if let Ok(idx) = raw.parse::<u32>() {
            return if (idx as usize) < g.node_count() + extra {
                Ok(NodeId(idx))
            } else {
                Err(format!(
                    "node id n{idx} out of range (graph has {} nodes)",
                    g.node_count() + extra
                ))
            };
        }
    }
    g.node_by_label(tok)
        .ok_or_else(|| format!("no node labelled {tok:?} (and not an n<ID> reference)"))
}

/// Translates wire mutations into [`cs_graph::Mutation`]s against the
/// current epoch: in-batch node labels resolve to their predicted ids
/// (node ids are assigned sequentially), and each `RemoveEdge` picks
/// one live matching edge not already claimed by this batch.
fn resolve_wire_ops(g: &Graph, ops: &[WireMutation]) -> Result<Vec<Mutation>, String> {
    let mut out = Vec::with_capacity(ops.len());
    let mut names: HashMap<&str, NodeId> = HashMap::new();
    let mut inserted = 0usize;
    let mut claimed: std::collections::HashSet<cs_graph::EdgeId> = std::collections::HashSet::new();
    for op in ops {
        match op {
            WireMutation::InsertNode { label, types } => {
                names.insert(label, NodeId::new(g.node_count() + inserted));
                inserted += 1;
                out.push(Mutation::InsertNode {
                    label: label.clone(),
                    types: types.clone(),
                });
            }
            WireMutation::InsertEdge { src, label, dst } => {
                let src = resolve_wire_node(g, &names, inserted, src)?;
                let dst = resolve_wire_node(g, &names, inserted, dst)?;
                out.push(Mutation::InsertEdge {
                    src,
                    label: label.clone(),
                    dst,
                });
            }
            WireMutation::RemoveEdge { src, label, dst } => {
                let s = resolve_wire_node(g, &names, inserted, src)?;
                let d = resolve_wire_node(g, &names, inserted, dst)?;
                let lid = g.label_id(label);
                let edge = lid.and_then(|lid| {
                    g.outgoing(s).map(|a| a.edge()).find(|&e| {
                        let ed = g.edge(e);
                        ed.label == lid && ed.dst == d && !claimed.contains(&e)
                    })
                });
                match edge {
                    Some(e) => {
                        claimed.insert(e);
                        out.push(Mutation::RemoveEdge { edge: e });
                    }
                    None => {
                        return Err(format!("no live edge {src} -{label}-> {dst}"));
                    }
                }
            }
        }
    }
    Ok(out)
}
