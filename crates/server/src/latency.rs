//! Exact latency histogram for `csq bench-serve`.
//!
//! The load generator records one sample per request; the histogram
//! stores them all (an open-loop run at bench scale is tens of
//! thousands of samples — exact beats bucketed at this size) and
//! answers percentile queries by sorting once on demand.

/// Sample-storing histogram over nanosecond latencies.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, nanos: u64) {
        self.samples.push(nanos);
        self.sorted = false;
    }

    /// Absorbs every sample of `other` (merging per-connection
    /// histograms into a run-wide one). Exact: the union's percentiles
    /// come from the union's samples.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        (sum / self.samples.len() as u128) as u64
    }

    /// The `p`-th percentile (nearest-rank over the sorted samples),
    /// `p` in `0.0..=100.0`. Returns 0 when empty.
    pub fn percentile(&mut self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        // Nearest-rank: ceil(p/100 * n), 1-based; p = 0 maps to the
        // minimum.
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(n - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_samples() {
        let mut h = LatencyHistogram::new();
        for v in [5u64, 1, 4, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(50.0), 3);
        assert_eq!(h.percentile(90.0), 5);
        assert_eq!(h.percentile(100.0), 5);
        assert_eq!(h.mean(), 3);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn recording_after_a_query_resorts() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        assert_eq!(h.percentile(50.0), 10);
        h.record(1);
        assert_eq!(h.percentile(0.0), 1);
    }
}
