//! `csqd` — the connection-search query daemon.
//!
//! ```text
//! csqd <graph-source> [--addr HOST:PORT] [--workers N]
//!      [--threads N] [--search-threads N]
//!      [--queue N] [--tenant-inflight N] [--default-deadline-ms N]
//!      [--result-cache off|on|shared] [--result-cache-capacity N]
//! ```
//!
//! A *graph source* is the same as `csq`'s: `--demo`, a `.csg`
//! snapshot, a generator spec (`gen:scale_free:nodes=2000,seed=7`), or
//! a tab-separated triples file. The graph is loaded once and shared
//! by every connection.
//!
//! The cross-query result cache defaults to one cache shared by every
//! connection (`Server::bind` upgrades the session-local `on` mode to
//! `shared`, so `on` and `shared` are equivalent here); `--result-cache
//! off` disables it. Its hit/miss/subsumed counters appear in the
//! `stats` opcode's reply.
//!
//! The server prints `csqd listening on <addr>` once ready (the line
//! test harnesses and the CI serve-smoke lane wait for) and runs until
//! a client sends a `shutdown` frame.

use cs_eql::{ExecOptions, ResultCacheMode};
use cs_graph::generate::from_spec;
use cs_graph::{binfmt, figure1, ntriples, snapshot, Graph};
use cs_server::{Server, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: csqd <graph-source|--demo> [--addr HOST:PORT] [--workers N] \
         [--threads N] [--search-threads N] [--queue N] [--tenant-inflight N] \
         [--default-deadline-ms N] [--result-cache off|on|shared] \
         [--result-cache-capacity N]\n\
         graph sources: --demo | file.csg | gen:<family:key=value,...> | triples file"
    );
    ExitCode::from(2)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

/// Parses the numeric value of `flag` at `args[i + 1]`.
fn numeric_flag<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, String> {
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("{flag} expects a number, but none was given"));
    };
    raw.parse::<T>()
        .map_err(|_| format!("{flag} expects a number, got {raw:?}"))
}

/// Builds a graph from a source string — the same resolution order as
/// `csq`: demo graph, generator spec, `.csg` snapshot, triples file.
fn load_graph(source: &str) -> Result<Graph, String> {
    if source == "--demo" {
        return Ok(figure1());
    }
    if let Some(spec) = source.strip_prefix("gen:") {
        return from_spec(spec).map_err(|e| e.to_string());
    }
    if !std::path::Path::new(source).exists() {
        match from_spec(source) {
            Ok(g) => return Ok(g),
            Err(cs_graph::generate::SpecError::UnknownFamily(_)) => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    if source.ends_with(".csg") {
        return snapshot::load_from(source).map_err(|e| e.to_string());
    }
    let raw = std::fs::read(source).map_err(|e| format!("cannot read {source}: {e}"))?;
    if raw.starts_with(b"CSG1") || raw.starts_with(b"CSG2") {
        binfmt::decode_graph(&raw).map_err(|e| format!("{source}: {e}"))
    } else {
        let text = String::from_utf8(raw).map_err(|_| format!("{source} is not UTF-8"))?;
        ntriples::parse_triples(&text).map_err(|e| format!("bad triples in {source}: {e}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut source: Option<&str> = None;
    let mut addr = "127.0.0.1:7687".to_string();
    let mut cfg = ServerConfig {
        exec: ExecOptions::default(),
        ..ServerConfig::default()
    };

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                let Some(a) = args.get(i + 1) else {
                    return fail("--addr expects HOST:PORT, but none was given");
                };
                addr = a.clone();
                i += 2;
            }
            "--workers" => {
                match numeric_flag::<usize>(&args, i, "--workers") {
                    Ok(n) => cfg.workers = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--threads" => {
                match numeric_flag::<usize>(&args, i, "--threads") {
                    Ok(n) => cfg.exec.threads = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--search-threads" => {
                match numeric_flag::<usize>(&args, i, "--search-threads") {
                    Ok(n) => cfg.exec.search_threads = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--queue" => {
                match numeric_flag::<usize>(&args, i, "--queue") {
                    Ok(n) => cfg.scheduler.queue_capacity = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--tenant-inflight" => {
                match numeric_flag::<usize>(&args, i, "--tenant-inflight") {
                    Ok(n) => cfg.scheduler.tenant_inflight = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--default-deadline-ms" => {
                match numeric_flag::<u64>(&args, i, "--default-deadline-ms") {
                    Ok(ms) => cfg.default_deadline = Some(Duration::from_millis(ms)),
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--result-cache" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("off") => cfg.exec.result_cache = ResultCacheMode::Off,
                    // `on` and `shared` are both one server-wide cache:
                    // `Server::bind` upgrades `On` to `Shared` (with
                    // the final `--result-cache-capacity`, whichever
                    // flag order was used).
                    Some("on" | "shared") => cfg.exec.result_cache = ResultCacheMode::On,
                    Some(other) => {
                        return fail(format!(
                            "--result-cache expects off|on|shared, got {other:?}"
                        ))
                    }
                    None => {
                        return fail("--result-cache expects off|on|shared, but none was given")
                    }
                }
                i += 2;
            }
            "--result-cache-capacity" => {
                match numeric_flag::<usize>(&args, i, "--result-cache-capacity") {
                    Ok(n) => cfg.exec.result_cache_capacity = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            other => {
                if other.starts_with("--") && other != "--demo" {
                    return usage();
                }
                if source.is_some() {
                    return usage();
                }
                source = Some(other);
                i += 1;
            }
        }
    }

    let Some(source) = source else {
        return usage();
    };
    let graph = match load_graph(source) {
        Ok(g) => Arc::new(g),
        Err(e) => return fail(e),
    };
    eprintln!(
        "csqd: loaded {source}: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    let server = match Server::bind(&addr, graph, cfg) {
        Ok(s) => s,
        Err(e) => return fail(format!("cannot bind {addr}: {e}")),
    };
    let bound = match server.local_addr() {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    // The readiness line harnesses wait for — flushed via println's
    // line buffering before the serve loop starts blocking.
    println!("csqd listening on {bound}");
    match server.run() {
        Ok(()) => {
            eprintln!("csqd: shut down");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}
