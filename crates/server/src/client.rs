//! Blocking client for the `csq/1` protocol — what `csq connect` and
//! `csq bench-serve` speak, and what the integration tests drive.
//!
//! One [`Client`] owns one connection and issues one request at a
//! time. The only concurrent frame a connection ever needs is
//! `cancel`, which goes through a [`Canceller`] — a cloned socket
//! handle that can interrupt the request the client thread is blocked
//! on.

use crate::proto::{
    read_frame, write_frame, BatchRequest, DeltaReply, ErrorReply, Frame, MutateReply,
    MutateRequest, Opcode, PollRequest, ProtoError, QueryReply, QueryRequest, RequestHeader,
    SubscribeReply, WireMutation,
};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failure: transport/protocol trouble, or a typed error
/// frame from the server.
#[derive(Debug)]
pub enum ClientError {
    /// Framing or socket failure.
    Proto(ProtoError),
    /// The server answered with an error frame.
    Server(ErrorReply),
    /// The server answered with a frame the request cannot interpret.
    Unexpected(Opcode),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server(e) => write!(f, "{}", e.message),
            ClientError::Unexpected(op) => write!(f, "unexpected response frame {op:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// A blocking connection to a `csqd` server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

/// A handle that can send `cancel` frames while the [`Client`] it was
/// cloned from is blocked waiting for a reply.
pub struct Canceller {
    stream: TcpStream,
}

impl Canceller {
    /// Asks the server to cancel request `id`. Fire-and-forget: the
    /// cancelled request itself answers with a `Cancelled` error frame
    /// on the main client handle.
    pub fn cancel(&mut self, id: u64) -> std::io::Result<()> {
        write_frame(
            &mut self.stream,
            &Frame {
                request_id: id,
                opcode: Opcode::Cancel,
                payload: id.to_le_bytes().to_vec(),
            },
        )
    }
}

impl Client {
    /// Connects to a `csqd` server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 1 })
    }

    /// A [`Canceller`] sharing this connection.
    pub fn canceller(&self) -> std::io::Result<Canceller> {
        Ok(Canceller {
            stream: self.stream.try_clone()?,
        })
    }

    fn send(&mut self, opcode: Opcode, payload: Vec<u8>) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.stream,
            &Frame {
                request_id: id,
                opcode,
                payload,
            },
        )?;
        Ok(id)
    }

    /// Reads frames until the one answering `id` arrives (late replies
    /// to cancelled predecessors are skipped).
    fn wait(&mut self, id: u64) -> Result<Frame, ClientError> {
        loop {
            let frame = read_frame(&mut self.stream)?;
            if frame.request_id == id {
                return Ok(frame);
            }
        }
    }

    fn expect_reply(&mut self, id: u64) -> Result<QueryReply, ClientError> {
        let frame = self.wait(id)?;
        match frame.opcode {
            Opcode::Reply => Ok(QueryReply::decode(&frame.payload)?),
            Opcode::Error => Err(ClientError::Server(ErrorReply::decode(&frame.payload)?)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Sends a query without waiting — the two-phase form that lets a
    /// [`Canceller`] target the returned id while [`Client::wait_query`]
    /// blocks.
    pub fn send_query(&mut self, text: &str, header: &RequestHeader) -> Result<u64, ClientError> {
        self.send(
            Opcode::Query,
            QueryRequest {
                header: header.clone(),
                text: text.to_string(),
            }
            .encode(),
        )
    }

    /// Waits for the reply to a [`Client::send_query`] id.
    pub fn wait_query(&mut self, id: u64) -> Result<QueryReply, ClientError> {
        self.expect_reply(id)
    }

    /// Executes one query (`SELECT` or `ASK`) and waits for its reply.
    pub fn query(&mut self, text: &str, header: &RequestHeader) -> Result<QueryReply, ClientError> {
        let id = self.send_query(text, header)?;
        self.expect_reply(id)
    }

    /// Executes an `ASK` query through the server's streaming fast
    /// path, returning its boolean.
    pub fn ask(&mut self, text: &str, header: &RequestHeader) -> Result<bool, ClientError> {
        let id = self.send(
            Opcode::Ask,
            QueryRequest {
                header: header.clone(),
                text: text.to_string(),
            }
            .encode(),
        )?;
        Ok(self.expect_reply(id)?.boolean == Some(true))
    }

    /// Executes a batch through one server-side cross-query dispatch.
    pub fn batch(
        &mut self,
        queries: &[&str],
        header: &RequestHeader,
    ) -> Result<QueryReply, ClientError> {
        let id = self.send(
            Opcode::Batch,
            BatchRequest {
                header: header.clone(),
                queries: queries.iter().map(|q| q.to_string()).collect(),
            }
            .encode(),
        )?;
        self.expect_reply(id)
    }

    /// Applies a mutation batch to the server's live graph (one
    /// generation bump via the server's epoch swap). Node endpoints
    /// are symbolic — exact node labels or raw `n<ID>` references.
    pub fn mutate(
        &mut self,
        ops: Vec<WireMutation>,
        header: &RequestHeader,
    ) -> Result<MutateReply, ClientError> {
        let id = self.send(
            Opcode::Mutate,
            MutateRequest {
                header: header.clone(),
                ops,
            }
            .encode(),
        )?;
        let frame = self.wait(id)?;
        match frame.opcode {
            Opcode::MutateReply => Ok(MutateReply::decode(&frame.payload)?),
            Opcode::Error => Err(ClientError::Server(ErrorReply::decode(&frame.payload)?)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Registers a standing `SELECT` query on this connection,
    /// returning the subscription id to [`Client::poll`].
    pub fn subscribe(
        &mut self,
        text: &str,
        header: &RequestHeader,
    ) -> Result<SubscribeReply, ClientError> {
        let id = self.send(
            Opcode::Subscribe,
            QueryRequest {
                header: header.clone(),
                text: text.to_string(),
            }
            .encode(),
        )?;
        let frame = self.wait(id)?;
        match frame.opcode {
            Opcode::SubscribeReply => Ok(SubscribeReply::decode(&frame.payload)?),
            Opcode::Error => Err(ClientError::Server(ErrorReply::decode(&frame.payload)?)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Polls a subscription for the rows that appeared/disappeared
    /// since its previous poll (or since [`Client::subscribe`]).
    pub fn poll(&mut self, sub: u64, header: &RequestHeader) -> Result<DeltaReply, ClientError> {
        let id = self.send(
            Opcode::Poll,
            PollRequest {
                header: header.clone(),
                sub,
            }
            .encode(),
        )?;
        let frame = self.wait(id)?;
        match frame.opcode {
            Opcode::DeltaReply => Ok(DeltaReply::decode(&frame.payload)?),
            Opcode::Error => Err(ClientError::Server(ErrorReply::decode(&frame.payload)?)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Round-trips a `ping`, returning its latency.
    pub fn ping(&mut self) -> Result<Duration, ClientError> {
        let t0 = Instant::now();
        let id = self.send(Opcode::Ping, b"ping".to_vec())?;
        let frame = self.wait(id)?;
        match frame.opcode {
            Opcode::Pong => Ok(t0.elapsed()),
            Opcode::Error => Err(ClientError::Server(ErrorReply::decode(&frame.payload)?)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Fetches the server's statistics report.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let id = self.send(Opcode::Stats, Vec::new())?;
        let frame = self.wait(id)?;
        match frame.opcode {
            Opcode::StatsReply => String::from_utf8(frame.payload)
                .map_err(|_| ClientError::Proto(ProtoError::BadUtf8)),
            Opcode::Error => Err(ClientError::Server(ErrorReply::decode(&frame.payload)?)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Asks the server to shut down; resolves when the ack arrives.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.send(Opcode::Shutdown, Vec::new())?;
        let frame = self.wait(id)?;
        match frame.opcode {
            Opcode::ShutdownAck => Ok(()),
            Opcode::Error => Err(ClientError::Server(ErrorReply::decode(&frame.payload)?)),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
