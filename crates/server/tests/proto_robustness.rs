//! Robustness tests for the csq/1 wire protocol: no byte sequence —
//! fuzzed, truncated, oversized, or cut off mid-frame — may panic the
//! codec, crash the server, or poison other connections.

use cs_server::proto::{
    read_frame, write_frame, BatchRequest, ErrorCode, ErrorReply, Frame, Opcode, QueryReply,
    QueryRequest, RequestHeader, MAGIC,
};
use cs_server::{Client, ClientError, Server, ServerConfig};
use proptest::prelude::*;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Codec-level fuzzing: decoders are total functions over arbitrary bytes.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `read_frame` over arbitrary bytes returns an error or a valid
    /// frame — it never panics and never reads past the input.
    #[test]
    fn read_frame_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut cursor = &bytes[..];
        let _ = read_frame(&mut cursor);
    }

    /// Every payload decoder is total over arbitrary bytes.
    #[test]
    fn payload_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = QueryRequest::decode(&bytes);
        let _ = BatchRequest::decode(&bytes);
        let _ = QueryReply::decode(&bytes);
        let _ = ErrorReply::decode(&bytes);
    }

    /// A well-formed frame round-trips exactly through write/read.
    #[test]
    fn frame_roundtrip(
        request_id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let frame = Frame { request_id, opcode: Opcode::Query, payload };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let decoded = read_frame(&mut &wire[..]).unwrap();
        prop_assert_eq!(decoded.request_id, frame.request_id);
        prop_assert_eq!(decoded.opcode, frame.opcode);
        prop_assert_eq!(decoded.payload, frame.payload);
    }

    /// A query request round-trips through encode/decode, including
    /// non-ASCII tenant names (any valid UTF-8 is legal on the wire).
    #[test]
    fn query_request_roundtrip(
        tenant_bytes in proptest::collection::vec(any::<u8>(), 0..24),
        deadline_ms in any::<u32>(),
        text_bytes in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let req = QueryRequest {
            header: RequestHeader {
                tenant: String::from_utf8_lossy(&tenant_bytes).into_owned(),
                deadline_ms,
            },
            text: String::from_utf8_lossy(&text_bytes).into_owned(),
        };
        let decoded = QueryRequest::decode(&req.encode()).unwrap();
        prop_assert_eq!(decoded, req);
    }

    /// A truncated frame decodes to an error, never a bogus frame: for
    /// every proper prefix of a valid frame, `read_frame` fails.
    #[test]
    fn every_frame_prefix_fails_cleanly(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut_fraction in 0.0f64..1.0,
    ) {
        let frame = Frame { request_id: 7, opcode: Opcode::Batch, payload };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let cut = ((wire.len() as f64) * cut_fraction) as usize;
        let cut = cut.min(wire.len().saturating_sub(1));
        prop_assert!(read_frame(&mut &wire[..cut]).is_err());
    }
}

// ---------------------------------------------------------------------------
// Server-level abuse: a live server fed malformed traffic keeps
// serving well-behaved connections.
// ---------------------------------------------------------------------------

fn start_server() -> (Arc<Server>, SocketAddr, std::thread::JoinHandle<()>) {
    let graph = Arc::new(cs_graph::figure1());
    let server =
        Arc::new(Server::bind("127.0.0.1:0", graph, ServerConfig::default()).expect("bind"));
    let addr = server.local_addr().expect("local addr");
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            server.run().expect("serve loop");
        })
    };
    (server, addr, handle)
}

fn stop_server(server: &Server, handle: std::thread::JoinHandle<()>) {
    server.request_shutdown();
    handle.join().expect("serve loop joins");
}

/// One healthy query over a fresh connection — the post-abuse probe.
fn assert_healthy(addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("fresh connection");
    let reply = client
        .query(
            r#"SELECT x WHERE { (x : type = "entrepreneur", "citizenOf", "USA") }"#,
            &RequestHeader::default(),
        )
        .expect("healthy query");
    assert!(reply.rows > 0);
}

#[test]
fn garbage_bytes_do_not_take_down_the_server() {
    let (server, addr, handle) = start_server();
    // Bad magic: the server answers a Protocol error frame and closes.
    let mut bad = TcpStream::connect(addr).expect("connect");
    bad.write_all(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n")
        .expect("write garbage");
    bad.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let frame = read_frame(&mut bad).expect("protocol error frame");
    assert_eq!(frame.opcode, Opcode::Error);
    let err = ErrorReply::decode(&frame.payload).expect("decode error reply");
    assert_eq!(err.code, ErrorCode::Protocol);
    drop(bad);
    assert_healthy(addr);
    stop_server(&server, handle);
}

#[test]
fn oversized_length_prefix_is_rejected_not_allocated() {
    let (server, addr, handle) = start_server();
    let mut bad = TcpStream::connect(addr).expect("connect");
    // Valid magic, then a length far past MAX_FRAME_LEN: must be
    // rejected up front, not buffered to exhaustion.
    let mut wire = Vec::new();
    wire.extend_from_slice(&MAGIC.to_le_bytes());
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    bad.write_all(&wire).expect("write oversized header");
    bad.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let frame = read_frame(&mut bad).expect("protocol error frame");
    assert_eq!(frame.opcode, Opcode::Error);
    let err = ErrorReply::decode(&frame.payload).expect("decode error reply");
    assert_eq!(err.code, ErrorCode::Protocol);
    drop(bad);
    assert_healthy(addr);
    stop_server(&server, handle);
}

#[test]
fn mid_frame_disconnect_does_not_poison_other_connections() {
    let (server, addr, handle) = start_server();
    // A client that was mid-query when it vanished must not stall a
    // reader thread or hurt its neighbours.
    let healthy_before = std::thread::spawn(move || assert_healthy(addr));
    {
        let mut flaky = TcpStream::connect(addr).expect("connect");
        let frame = Frame {
            request_id: 1,
            opcode: Opcode::Query,
            payload: vec![0u8; 64],
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).expect("encode");
        // Send the header plus half the body, then hang up.
        flaky
            .write_all(&wire[..wire.len() / 2])
            .expect("partial write");
    } // flaky drops here, mid-frame
    healthy_before.join().expect("concurrent healthy client");
    assert_healthy(addr);
    stop_server(&server, handle);
}

#[test]
fn malformed_payload_keeps_the_connection_alive() {
    let (server, addr, handle) = start_server();
    // A structurally valid frame whose payload fails to decode is a
    // per-request Protocol error — the connection itself survives.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let frame = Frame {
        request_id: 42,
        opcode: Opcode::Query,
        // Truncated: claims an 8-byte tenant string, supplies none.
        payload: vec![0, 0, 0, 0, 8, 0, 0, 0],
    };
    write_frame(&mut stream, &frame).expect("write");
    let reply = read_frame(&mut stream).expect("error frame");
    assert_eq!(reply.opcode, Opcode::Error);
    assert_eq!(reply.request_id, 42);
    let err = ErrorReply::decode(&reply.payload).expect("decode");
    assert_eq!(err.code, ErrorCode::Protocol);
    // Same socket, now a well-formed query.
    let good = QueryRequest {
        header: RequestHeader::default(),
        text: r#"SELECT x WHERE { (x : type = "entrepreneur", "citizenOf", "USA") }"#.into(),
    };
    let frame = Frame {
        request_id: 43,
        opcode: Opcode::Query,
        payload: good.encode(),
    };
    write_frame(&mut stream, &frame).expect("write good");
    let reply = read_frame(&mut stream).expect("reply frame");
    assert_eq!(reply.opcode, Opcode::Reply);
    assert_eq!(reply.request_id, 43);
    let decoded = QueryReply::decode(&reply.payload).expect("decode reply");
    assert!(decoded.rows > 0);
    stop_server(&server, handle);
}

#[test]
fn client_sent_response_opcode_is_a_protocol_error() {
    let (server, addr, handle) = start_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let frame = Frame {
        request_id: 9,
        opcode: Opcode::Reply,
        payload: Vec::new(),
    };
    write_frame(&mut stream, &frame).expect("write");
    let reply = read_frame(&mut stream).expect("error frame");
    assert_eq!(reply.opcode, Opcode::Error);
    let err = ErrorReply::decode(&reply.payload).expect("decode");
    assert_eq!(err.code, ErrorCode::Protocol);
    assert_healthy(addr);
    stop_server(&server, handle);
}

/// `ClientError` surfaces transport failures distinctly from server
/// error frames (csq relies on this to classify bench-serve outcomes).
#[test]
fn client_error_classification() {
    let (server, addr, handle) = start_server();
    let mut client = Client::connect(addr).expect("connect");
    let err = client
        .query("THIS IS NOT EQL", &RequestHeader::default())
        .expect_err("parse error");
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::Query),
        other => panic!("want server error, got {other}"),
    }
    stop_server(&server, handle);
}
