//! End-to-end tests of `csqd`: concurrent-client parity against a
//! local [`Session`], server-side deadlines and cooperative
//! cancellation, admission control, and the shutdown drain.

use cs_eql::Session;
use cs_graph::generate::random_connected;
use cs_graph::Graph;
use cs_server::{Client, ClientError, ErrorCode, RequestHeader, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The shared dataset: the `random64_molesp_max5` workload graph —
/// small enough to serve instantly, dense enough that `MAX 5` searches
/// run long (the deadline/cancel target).
fn graph() -> Arc<Graph> {
    Arc::new(random_connected(64, 192, 42))
}

const LONG_QUERY: &str = r#"SELECT w WHERE { CONNECT("n0", "n63" -> w) MAX 5 }"#;

/// Binds an ephemeral-port server and runs it on a background thread.
fn start(cfg: ServerConfig) -> (Arc<Server>, SocketAddr, JoinHandle<()>) {
    let server = Arc::new(Server::bind("127.0.0.1:0", graph(), cfg).expect("bind"));
    let addr = server.local_addr().expect("local addr");
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            server.run().expect("serve loop");
        })
    };
    (server, addr, handle)
}

/// Stops a started server and joins its serve loop.
fn stop(server: &Server, handle: JoinHandle<()>) {
    server.request_shutdown();
    handle.join().expect("serve loop joins");
}

/// The acceptance bar: ≥ 8 concurrent connections, every reply
/// byte-identical to what a local session produces for the same query
/// on the same graph.
#[test]
fn eight_concurrent_clients_match_local_session() {
    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 4;
    let (server, addr, handle) = start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });

    // Each client runs its own query set; expectations come from a
    // fresh local session over the identical graph.
    let queries: Vec<Vec<String>> = (0..CLIENTS)
        .map(|c| {
            (0..QUERIES_PER_CLIENT)
                .map(|q| {
                    format!(
                        r#"SELECT w WHERE {{ CONNECT("n{}", "n{}" -> w) MAX 3 }}"#,
                        c,
                        63 - q
                    )
                })
                .collect()
        })
        .collect();

    let g = graph();
    let expected: Vec<Vec<(u64, String)>> = queries
        .iter()
        .map(|qs| {
            let session = Session::from_shared(Arc::clone(&g));
            qs.iter()
                .map(|q| {
                    let r = session.run(q).expect("local run");
                    (r.rows() as u64, r.render(&g))
                })
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        for (c, (qs, exp)) in queries.iter().zip(&expected).enumerate() {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let header = RequestHeader {
                    tenant: format!("tenant{}", c % 3),
                    deadline_ms: 0,
                };
                for (q, (rows, text)) in qs.iter().zip(exp) {
                    let reply = client.query(q, &header).expect("server reply");
                    assert_eq!(reply.rows, *rows, "client {c}: row count parity");
                    assert_eq!(&reply.text, text, "client {c}: rendered-text parity");
                }
            });
        }
    });
    stop(&server, handle);
}

#[test]
fn batch_over_server_matches_local_batch() {
    let (server, addr, handle) = start(ServerConfig::default());
    let qs = [
        r#"SELECT w WHERE { CONNECT("n1", "n62" -> w) MAX 3 }"#,
        r#"SELECT w WHERE { CONNECT("n2", "n61" -> w) MAX 3 }"#,
    ];
    let g = graph();
    let session = Session::from_shared(Arc::clone(&g));
    let mut rows = 0u64;
    let mut text = String::new();
    for r in session.execute_batch(&qs) {
        let r = r.expect("local batch member");
        rows += r.rows() as u64;
        text.push_str(&r.render(&g));
    }

    let mut client = Client::connect(addr).expect("connect");
    let reply = client
        .batch(&qs, &RequestHeader::default())
        .expect("batch reply");
    assert_eq!(reply.rows, rows);
    assert_eq!(reply.text, text);
    stop(&server, handle);
}

#[test]
fn ask_opcode_returns_boolean() {
    let (server, addr, handle) = start(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let header = RequestHeader::default();
    assert!(client
        .ask(r#"ASK WHERE { CONNECT("n0", "n1" -> w) MAX 5 }"#, &header)
        .expect("ask"));
    stop(&server, handle);
}

/// A query error (here: an empty seed set) is a typed `Query` error
/// frame, and the connection keeps serving afterwards.
#[test]
fn query_error_does_not_poison_the_connection() {
    let (server, addr, handle) = start(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let header = RequestHeader::default();
    let err = client
        .query(
            r#"SELECT w WHERE { CONNECT("NoSuchNode", "n0" -> w) }"#,
            &header,
        )
        .expect_err("empty seed set must fail");
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::Query, "{}", e.message),
        other => panic!("want server error, got {other}"),
    }
    // Same connection, next query succeeds.
    let reply = client
        .query(
            r#"SELECT w WHERE { CONNECT("n0", "n1" -> w) MAX 3 }"#,
            &header,
        )
        .expect("connection still serves");
    assert!(reply.rows > 0);
    stop(&server, handle);
}

/// The acceptance bar: a long search under a short per-request
/// deadline returns `DeadlineExceeded` well before the untimed
/// runtime.
#[test]
fn server_deadline_exceeded_well_before_untimed_runtime() {
    let g = graph();
    let t0 = Instant::now();
    let full = Session::from_shared(Arc::clone(&g))
        .run(LONG_QUERY)
        .expect("untimed local run");
    let untimed = t0.elapsed();
    assert!(full.rows() > 0);

    let (server, addr, handle) = start(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let t = Instant::now();
    let err = client
        .query(
            LONG_QUERY,
            &RequestHeader {
                tenant: String::new(),
                deadline_ms: 25,
            },
        )
        .expect_err("deadline must fail the query");
    let elapsed = t.elapsed();
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.code, ErrorCode::DeadlineExceeded, "{}", e.message);
            assert_eq!(e.message, "deadline exceeded");
        }
        other => panic!("want server error, got {other}"),
    }
    assert!(
        elapsed < untimed / 3,
        "deadline stop took {elapsed:?}, untimed runtime {untimed:?}"
    );
    stop(&server, handle);
}

/// The server-wide default deadline applies when the request carries
/// none.
#[test]
fn default_deadline_applies_to_unmarked_requests() {
    let (server, addr, handle) = start(ServerConfig {
        default_deadline: Some(Duration::from_millis(25)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let err = client
        .query(LONG_QUERY, &RequestHeader::default())
        .expect_err("default deadline must fail the query");
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::DeadlineExceeded),
        other => panic!("want server error, got {other}"),
    }
    stop(&server, handle);
}

/// A `cancel` frame sent mid-query stops the search cooperatively; the
/// cancelled request answers with a `Cancelled` error frame.
#[test]
fn cancel_frame_stops_running_query() {
    let (server, addr, handle) = start(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let id = client
        .send_query(LONG_QUERY, &RequestHeader::default())
        .expect("send");
    let mut canceller = client.canceller().expect("canceller");
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        canceller.cancel(id).expect("cancel frame");
    });
    let err = client.wait_query(id).expect_err("cancel must fail it");
    killer.join().expect("killer joins");
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.code, ErrorCode::Cancelled, "{}", e.message);
            assert_eq!(e.message, "cancelled");
        }
        other => panic!("want server error, got {other}"),
    }
    // The connection survives its own cancelled query.
    let reply = client
        .query(
            r#"SELECT w WHERE { CONNECT("n0", "n1" -> w) MAX 3 }"#,
            &RequestHeader::default(),
        )
        .expect("connection still serves");
    assert!(reply.rows > 0);
    stop(&server, handle);
}

/// Admission control: with a single worker, a full run queue answers
/// `Overloaded` instead of queueing without bound.
#[test]
fn full_run_queue_rejects_with_overloaded() {
    let (server, addr, handle) = start(ServerConfig {
        workers: 1,
        scheduler: cs_server::SchedulerConfig {
            queue_capacity: 1,
            tenant_inflight: 1,
        },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    // Bounded deadlines so the flood drains by itself.
    let header = RequestHeader {
        tenant: String::new(),
        deadline_ms: 200,
    };
    // First long query occupies the worker, second fills the queue,
    // third must bounce at admission.
    let _id1 = client.send_query(LONG_QUERY, &header).expect("send 1");
    let _id2 = client.send_query(LONG_QUERY, &header).expect("send 2");
    let id3 = client.send_query(LONG_QUERY, &header).expect("send 3");
    let err = client.wait_query(id3).expect_err("admission must reject");
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::Overloaded, "{}", e.message),
        other => panic!("want overloaded, got {other}"),
    }
    stop(&server, handle);
}

#[test]
fn ping_stats_and_shutdown_roundtrip() {
    let (server, addr, handle) = start(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    assert!(client.ping().expect("ping") < Duration::from_secs(5));
    client
        .query(
            r#"SELECT w WHERE { CONNECT("n0", "n1" -> w) MAX 3 }"#,
            &RequestHeader {
                tenant: "alice".into(),
                deadline_ms: 0,
            },
        )
        .expect("query");
    let stats = client.stats().expect("stats");
    assert!(stats.contains("graph: 64 nodes"), "{stats}");
    assert!(stats.contains("scheduler:"), "{stats}");
    assert!(stats.contains("1 ok"), "{stats}");

    // Protocol shutdown: the serve loop drains and returns, so the
    // join below completes without request_shutdown().
    client.shutdown().expect("shutdown ack");
    handle.join().expect("serve loop drains");
    drop(server);
}

/// The shared result cache: a query repeated across two connections is
/// byte-identical on every run (first run a miss, repeats replayed from
/// the server-wide cache) and still matches an uncached local session.
#[test]
fn shared_result_cache_replays_identically_across_connections() {
    let (server, addr, handle) = start(ServerConfig::default());
    let q = r#"SELECT w WHERE { CONNECT("n3", "n60" -> w) MAX 3 }"#;

    // The ground truth: a local session with caching off.
    let g = graph();
    let local = Session::from_shared_with(
        Arc::clone(&g),
        cs_eql::ExecOptions {
            result_cache: cs_eql::ResultCacheMode::Off,
            ..cs_eql::ExecOptions::default()
        },
    );
    let expect = local.run(q).expect("local run");
    let (rows, text) = (expect.rows() as u64, expect.render(&g));

    let header = RequestHeader::default();
    let mut first = Client::connect(addr).expect("connect 1");
    let mut second = Client::connect(addr).expect("connect 2");
    for client in [&mut first, &mut second] {
        for run in 0..2 {
            let reply = client.query(q, &header).expect("server reply");
            assert_eq!(reply.rows, rows, "run {run}: row count parity");
            assert_eq!(reply.text, text, "run {run}: rendered-text parity");
        }
    }

    // One miss (the very first run), three shared-cache hits.
    let stats = first.stats().expect("stats");
    assert!(
        stats.contains("result_cache: 3 hits, 1 misses, 0 subsumed, 0 trees_filtered, 1 entries"),
        "{stats}"
    );
    stop(&server, handle);
}

/// `--result-cache off` (ServerConfig with `Off`) serves without a
/// cache and reports all-zero counters in the stats reply.
#[test]
fn result_cache_off_reports_zero_counters() {
    let (server, addr, handle) = start(ServerConfig {
        exec: cs_eql::ExecOptions {
            result_cache: cs_eql::ResultCacheMode::Off,
            ..cs_eql::ExecOptions::default()
        },
        ..ServerConfig::default()
    });
    let q = r#"SELECT w WHERE { CONNECT("n0", "n1" -> w) MAX 3 }"#;
    let mut client = Client::connect(addr).expect("connect");
    let header = RequestHeader::default();
    let a = client.query(q, &header).expect("first run");
    let b = client.query(q, &header).expect("second run");
    assert_eq!(a.text, b.text, "uncached repeats stay deterministic");
    let stats = client.stats().expect("stats");
    assert!(
        stats.contains("result_cache: 0 hits, 0 misses, 0 subsumed, 0 trees_filtered, 0 entries"),
        "{stats}"
    );
    stop(&server, handle);
}

/// The live-graph loop over the wire: subscribe, mutate, poll. The
/// mutation swaps the epoch server-side; the poll after it reports
/// exactly the appeared row, and a second poll reports no change.
#[test]
fn mutate_then_poll_reports_result_delta() {
    use cs_server::{PollSkip, WireMutation};
    let (server, addr, handle) = start(ServerConfig::default());
    let header = RequestHeader::default();
    let mut client = Client::connect(addr).expect("connect");

    // n0's direct neighbourhood, as a standing query.
    let sub = client
        .subscribe(r#"SELECT x WHERE { (x, "r0", "n0") }"#, &header)
        .expect("subscribe");
    assert_eq!(sub.generation, 0);

    // A new node wired into n0 under the watched edge label.
    let m = client
        .mutate(
            vec![
                WireMutation::InsertNode {
                    label: "fresh".into(),
                    types: vec![],
                },
                WireMutation::InsertEdge {
                    src: "fresh".into(),
                    label: "r0".into(),
                    dst: "n0".into(),
                },
            ],
            &header,
        )
        .expect("mutate");
    assert_eq!(m.generation, 1);
    assert_eq!((m.nodes, m.edges, m.removed), (1, 1, 0));

    let delta = client.poll(sub.sub, &header).expect("poll");
    assert_eq!(delta.generation, 1);
    assert_eq!(delta.skip, PollSkip::Reran);
    assert_eq!(delta.added.len(), 1, "added: {:?}", delta.added);
    assert!(delta.added[0].contains("fresh"), "added: {:?}", delta.added);
    assert!(delta.removed.is_empty());

    // Nothing happened since: the generation layer skips.
    let delta = client.poll(sub.sub, &header).expect("second poll");
    assert!(delta.added.is_empty() && delta.removed.is_empty());
    assert_eq!(delta.skip, PollSkip::Unchanged);

    // Removing the edge takes the row back out.
    let m = client
        .mutate(
            vec![WireMutation::RemoveEdge {
                src: "fresh".into(),
                label: "r0".into(),
                dst: "n0".into(),
            }],
            &header,
        )
        .expect("remove");
    assert_eq!(m.removed, 1);
    let delta = client.poll(sub.sub, &header).expect("poll after remove");
    assert_eq!(delta.removed.len(), 1, "removed: {:?}", delta.removed);
    assert!(delta.removed[0].contains("fresh"));

    let stats = client.stats().expect("stats");
    assert!(
        stats.contains("generation 2 (2 mutation batch(es))"),
        "{stats}"
    );
    stop(&server, handle);
}

/// Mutations are visible to plain queries from *other* connections
/// (each rebuilds its session over the swapped epoch), and a dangling
/// symbolic reference rejects the whole batch.
#[test]
fn mutation_visible_across_connections_and_bad_refs_reject() {
    use cs_server::WireMutation;
    let (server, addr, handle) = start(ServerConfig::default());
    let header = RequestHeader::default();
    let mut writer = Client::connect(addr).expect("connect writer");
    let mut reader = Client::connect(addr).expect("connect reader");

    // The reader has already served a query on epoch 0.
    let q = r#"ASK WHERE { ("n7", "brandNew", "n9") }"#;
    assert!(!reader.ask(q, &header).expect("ask before"));

    writer
        .mutate(
            vec![WireMutation::InsertEdge {
                src: "n7".into(),
                label: "brandNew".into(),
                dst: "n9".into(),
            }],
            &header,
        )
        .expect("mutate");
    assert!(
        reader.ask(q, &header).expect("ask after"),
        "epoch swap must reach other connections"
    );

    let err = writer
        .mutate(
            vec![WireMutation::InsertEdge {
                src: "NoSuchNode".into(),
                label: "r".into(),
                dst: "n0".into(),
            }],
            &header,
        )
        .expect_err("dangling reference must reject");
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.code, ErrorCode::Query, "{}", e.message);
            assert!(e.message.contains("NoSuchNode"), "{}", e.message);
        }
        other => panic!("want server error, got {other}"),
    }
    stop(&server, handle);
}

/// Polling an unknown subscription id is a typed query error, not a
/// dropped connection.
#[test]
fn poll_unknown_subscription_is_typed_error() {
    let (server, addr, handle) = start(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let err = client
        .poll(99, &RequestHeader::default())
        .expect_err("unknown sub must fail");
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::Query, "{}", e.message),
        other => panic!("want server error, got {other}"),
    }
    // Connection still serves.
    assert!(client.ping().expect("ping") < Duration::from_secs(5));
    stop(&server, handle);
}

/// Two tenants, one worker: round-robin dispatch interleaves their
/// queued jobs rather than running one tenant's backlog to completion.
#[test]
fn tenants_share_the_worker_fairly() {
    let (server, addr, handle) = start(ServerConfig {
        workers: 1,
        scheduler: cs_server::SchedulerConfig {
            queue_capacity: 64,
            tenant_inflight: 1,
        },
        ..ServerConfig::default()
    });
    let quick = r#"SELECT w WHERE { CONNECT("n0", "n1" -> w) MAX 2 }"#;
    // Tenant A floods first; tenant B's single query must not wait for
    // the whole backlog (round-robin puts it second, not seventh).
    let mut flood = Client::connect(addr).expect("connect A");
    let header_a = RequestHeader {
        tenant: "a".into(),
        deadline_ms: 0,
    };
    let mut ids = Vec::new();
    for _ in 0..6 {
        ids.push(flood.send_query(quick, &header_a).expect("flood"));
    }
    let mut other = Client::connect(addr).expect("connect B");
    let reply = other
        .query(
            quick,
            &RequestHeader {
                tenant: "b".into(),
                deadline_ms: 0,
            },
        )
        .expect("tenant B served");
    assert!(reply.rows > 0);
    // Drain tenant A so shutdown is clean.
    for id in ids {
        let _ = flood.wait_query(id);
    }
    stop(&server, handle);
}
