//! Property-based tests of the disk-backed snapshot store (CSG2):
//! decode robustness (corrupt input must error, never panic),
//! CSG1 → CSG2 forward compatibility, and full save → load equivalence
//! including warm planner statistics.

use cs_graph::generate::{from_spec, random_connected};
use cs_graph::{binfmt, snapshot, Graph, GraphBuilder, Value};
use proptest::prelude::*;

/// Exact equivalence: ids, labels, types, props, interner contents,
/// adjacency — everything observable must match.
fn assert_identical(a: &Graph, b: &Graph) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    assert_eq!(a.interner().len(), b.interner().len());
    for (id, s) in a.interner().iter() {
        assert_eq!(b.resolve(id), s, "interner drift at {id:?}");
    }
    for n in a.node_ids() {
        assert_eq!(a.node_label(n), b.node_label(n));
        assert_eq!(
            a.node_types(n).collect::<Vec<_>>(),
            b.node_types(n).collect::<Vec<_>>()
        );
        assert_eq!(a.node(n).props, b.node(n).props);
        assert_eq!(a.adjacent(n), b.adjacent(n));
    }
    for e in a.edge_ids() {
        assert_eq!(a.describe_edge(e), b.describe_edge(e));
        assert_eq!(a.edge_props(e), b.edge_props(e));
    }
}

/// A small graph with every value type and multi-type nodes, so the
/// round-trip covers the whole surface.
fn rich_graph(n: usize, extra: usize, seed: u64) -> Graph {
    let base = random_connected(n, extra, seed);
    let mut b = GraphBuilder::new();
    let nodes: Vec<_> = base
        .node_ids()
        .map(|v| b.add_typed_node(base.node_label(v), &["t0"]))
        .collect();
    for e in base.edge_ids() {
        let ed = base.edge(e);
        let id = b.add_edge(
            nodes[ed.src.index()],
            base.edge_label(e),
            nodes[ed.dst.index()],
        );
        if e.index() % 3 == 0 {
            b.set_edge_prop(id, "w", (e.index() as i64) - 2);
        }
    }
    for (i, &v) in nodes.iter().enumerate() {
        if i % 2 == 0 {
            b.set_node_prop(v, "score", i as f64 * 0.5);
        }
        if i % 5 == 0 {
            b.set_node_prop(v, "name", format!("node-{i}"));
            b.add_type(v, "t1");
        }
    }
    b.freeze()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cs-snapshot-test-{}-{name}", std::process::id()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → load yields an identical graph — nodes, edges, props,
    /// interner — with the planner statistics warm on load and equal
    /// to the freshly computed ones.
    #[test]
    fn save_load_identical_with_warm_stats(n in 2usize..30, extra in 0usize..15, seed in any::<u64>()) {
        let g = rich_graph(n, extra, seed);
        let path = tmp(&format!("prop-{n}-{extra}-{seed}.csg"));
        snapshot::save_to(&g, &path).unwrap();
        let g2 = snapshot::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_identical(&g, &g2);
        // Warm statistics: present before any query touches them, and
        // byte-equal to a recomputation.
        let warm = g2.cardinalities_if_computed().expect("stats must be warm");
        prop_assert_eq!(warm, g.cardinalities());
    }

    /// CSG1 files written by the legacy encoder keep decoding under
    /// the CSG2 reader, bit for bit equivalent.
    #[test]
    fn csg1_forward_compat(n in 2usize..30, extra in 0usize..15, seed in any::<u64>()) {
        let g = rich_graph(n, extra, seed);
        let v1 = binfmt::encode_graph_v1(&g);
        let g2 = binfmt::decode_graph(&v1).unwrap();
        assert_identical(&g, &g2);
        // Legacy files carry no statistics: the planner starts cold.
        prop_assert!(g2.cardinalities_if_computed().is_none());
    }

    /// Truncation at every prefix length errors, never panics.
    #[test]
    fn truncation_never_panics(cut_permille in 0usize..1000) {
        let g = rich_graph(12, 6, 99);
        let bytes = binfmt::encode_graph(&g);
        let cut = bytes.len() * cut_permille / 1000;
        if cut < bytes.len() {
            prop_assert!(binfmt::decode_graph(&bytes[..cut]).is_err());
        }
    }

    /// A single flipped byte anywhere in the file never panics. Almost
    /// every flip is an error (payloads are checksummed; framing flips
    /// derail cleanly); the one benign case is a flip in a section-id
    /// header byte that turns the *optional* stats section into an
    /// unknown id — decode then succeeds with the identical graph,
    /// just a cold planner. A flip must never produce a *different*
    /// graph.
    #[test]
    fn bit_flip_never_panics(pos_permille in 0usize..1000, mask in 1u8..=255) {
        let g = rich_graph(10, 5, 7);
        let mut bytes = binfmt::encode_graph(&g).to_vec();
        let pos = (bytes.len() * pos_permille / 1000).min(bytes.len() - 1);
        bytes[pos] ^= mask;
        if let Ok(g2) = binfmt::decode_graph(&bytes) {
            assert_identical(&g, &g2);
        }
    }

    /// Arbitrary bytes under either magic never panic.
    #[test]
    fn garbage_never_panics(mut body in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = binfmt::decode_graph(&body);
        for magic in [b"CSG1".as_slice(), b"CSG2".as_slice()] {
            let mut with_magic = magic.to_vec();
            with_magic.append(&mut body.clone());
            prop_assert!(binfmt::decode_graph(&with_magic).is_err());
        }
        let _ = body.pop();
    }
}

#[test]
fn wrong_magic_is_bad_magic() {
    assert_eq!(
        binfmt::decode_graph(b"PNG\x89 not a graph").unwrap_err(),
        binfmt::DecodeError::BadMagic
    );
}

#[test]
fn spec_graph_roundtrips_through_file() {
    let g = from_spec("yago_like:persons=200,works=50").unwrap();
    let path = tmp("spec.csg");
    let info = snapshot::save_to(&g, &path).unwrap();
    assert_eq!(info.nodes as usize, g.node_count());
    assert!(info.has_stats);

    let inspected = snapshot::inspect(&path).unwrap();
    assert_eq!(inspected.nodes as usize, g.node_count());
    assert_eq!(inspected.edges as usize, g.edge_count());
    assert!(inspected.has_stats);

    let g2 = snapshot::load_from(&path).unwrap();
    assert_identical(&g, &g2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn property_values_roundtrip_exactly() {
    let mut b = GraphBuilder::new();
    let a = b.add_node("a");
    let c = b.add_node("c");
    let e = b.add_edge(a, "r", c);
    b.set_node_prop(a, "int", i64::MIN);
    b.set_node_prop(a, "float", f64::MAX);
    b.set_node_prop(c, "neg", -0.0f64);
    b.set_node_prop(c, "text", "unicode: ∀x∈G");
    b.set_edge_prop(e, "empty", "");
    let g = b.freeze();

    let path = tmp("values.csg");
    snapshot::save_to(&g, &path).unwrap();
    let g2 = snapshot::load_from(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(g2.node_prop(a, "int"), Some(&Value::Int(i64::MIN)));
    assert_eq!(g2.node_prop(a, "float"), Some(&Value::Float(f64::MAX)));
    assert_eq!(g2.node_prop(c, "text"), Some(&Value::str("unicode: ∀x∈G")));
    assert_eq!(g2.edge_prop(e, "empty"), Some(&Value::str("")));
}
