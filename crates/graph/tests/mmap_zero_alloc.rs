//! The zero-copy load path's headline property: loading a CSR snapshot
//! via mmap performs **no per-edge allocation**. The CSR columns alias
//! the mapping; only O(strings + prop entries) owned decoding remains
//! (interner, property side tables). A counting global allocator pins
//! this — the test graph has ~40× more edges than strings, so any
//! per-edge (or per-adjacency-entry) allocation blows the budget
//! immediately.
//!
//! Lives in its own integration-test binary because the counting
//! allocator is process-global.

#![cfg(all(unix, target_endian = "little"))]

use cs_graph::{snapshot, GraphBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn mmap_load_allocates_nothing_per_edge() {
    // Few nodes and labels (small interner), many edges: allocation
    // proportional to the edge count cannot hide in the noise.
    const NODES: usize = 100;
    const EDGES: usize = 40_000;
    let mut b = GraphBuilder::with_capacity(NODES, EDGES);
    let nodes: Vec<_> = (0..NODES).map(|i| b.add_node(&format!("n{i}"))).collect();
    let labels = ["r0", "r1", "r2", "r3"];
    for i in 0..EDGES {
        let s = nodes[(i * 7) % NODES];
        let d = nodes[(i * 13 + 1) % NODES];
        b.add_edge(s, labels[i % labels.len()], d);
    }
    let g = b.freeze();
    assert_eq!(g.edge_count(), EDGES);

    let mut path = std::env::temp_dir();
    path.push(format!("cs-zero-alloc-{}.csg", std::process::id()));
    snapshot::save_to(&g, &path).unwrap();

    let before = ALLOCS.load(Ordering::Relaxed);
    let loaded = snapshot::load_from_mmap(&path).unwrap();
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(loaded.is_memory_mapped());
    assert_eq!(loaded.edge_count(), EDGES);

    // Owned work left on the load path: the interner (~2 allocations
    // per string: the String and the map entry), section bookkeeping,
    // and the stats sidecar. All O(strings), none O(edges). The bound
    // is generous against allocator-internal variance while still ~25×
    // below the edge count.
    let strings = loaded.interner().len();
    let budget = 12 * strings + 256;
    assert!(
        during < budget,
        "mmap load allocated {during} times for {EDGES} edges / {strings} strings \
         (budget {budget}): the zero-copy path is doing per-edge work"
    );

    drop(loaded);
    std::fs::remove_file(&path).ok();
}
