//! Equivalence of the three ways a CSR graph can exist in memory:
//! built by the [`GraphBuilder`], decoded from an owned CSG2 buffer,
//! and loaded zero-copy from a memory-mapped snapshot. Every public
//! accessor — structure, adjacency, the label/type index runs, the
//! labelled endpoint runs, properties, statistics — must agree across
//! all three, and corrupt CSR sections must error (never panic) on
//! both the owned and the mapped load path.

use cs_graph::generate::random_connected;
use cs_graph::{binfmt, snapshot, Graph, GraphBuilder, LabelId, NodeId};
use proptest::prelude::*;

/// Builds a property-rich multi-label graph with self-loops and
/// parallel edges — the shapes most likely to disturb CSR ordering.
fn rich_graph(n: usize, extra: usize, seed: u64) -> Graph {
    let base = random_connected(n, extra, seed);
    let mut b = GraphBuilder::new();
    let nodes: Vec<_> = base
        .node_ids()
        .map(|v| {
            let id = b.add_node(base.node_label(v));
            if v.index() % 3 == 0 {
                b.add_type(id, "even_ish");
            }
            if v.index() % 4 == 0 {
                b.add_type(id, "quarter");
            }
            id
        })
        .collect();
    for e in base.edge_ids() {
        let ed = base.edge(e);
        let id = b.add_edge(
            nodes[ed.src.index()],
            base.edge_label(e),
            nodes[ed.dst.index()],
        );
        if e.index() % 5 == 0 {
            b.set_edge_prop(id, "w", e.index() as i64);
        }
    }
    // A self-loop and a parallel edge exercise the out-before-in
    // adjacency invariant and duplicate endpoint runs.
    b.add_edge(nodes[0], "selfish", nodes[0]);
    if nodes.len() > 1 {
        b.add_edge(nodes[0], "dup", nodes[1]);
        b.add_edge(nodes[0], "dup", nodes[1]);
    }
    b.set_node_prop(nodes[0], "score", 1.5f64);
    b.freeze()
}

/// Every observable accessor of `b` must equal `a`'s.
fn assert_equivalent(a: &Graph, b: &Graph) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    assert_eq!(a.interner().len(), b.interner().len());
    for n in a.node_ids() {
        assert_eq!(a.node_label(n), b.node_label(n));
        assert_eq!(
            a.node_types(n).collect::<Vec<_>>(),
            b.node_types(n).collect::<Vec<_>>()
        );
        assert_eq!(a.node_props(n), b.node_props(n));
        assert_eq!(a.adjacent(n), b.adjacent(n));
        assert_eq!(a.degree(n), b.degree(n));
        assert_eq!(
            a.outgoing(n).collect::<Vec<_>>(),
            b.outgoing(n).collect::<Vec<_>>()
        );
        assert_eq!(
            a.incoming(n).collect::<Vec<_>>(),
            b.incoming(n).collect::<Vec<_>>()
        );
    }
    for e in a.edge_ids() {
        assert_eq!(a.describe_edge(e), b.describe_edge(e));
        assert_eq!(a.edge_props(e), b.edge_props(e));
    }
    // The whole label universe: index runs and labelled endpoint runs.
    for l in (0..a.interner().len()).map(LabelId::new) {
        assert_eq!(a.edges_with_label(l), b.edges_with_label(l));
        assert_eq!(a.nodes_with_label(l), b.nodes_with_label(l));
        assert_eq!(a.nodes_with_type(l), b.nodes_with_type(l));
        assert_eq!(a.node_by_label(a.resolve(l)), b.node_by_label(b.resolve(l)));
        for n in a.node_ids() {
            assert_eq!(
                a.out_edges_labelled(n, l),
                b.out_edges_labelled(n, l),
                "out run drift at {n:?} {l:?}"
            );
            assert_eq!(a.in_edges_labelled(n, l), b.in_edges_labelled(n, l));
        }
    }
    // Statistics parity (recomputed, not sidecar-seeded).
    assert_eq!(a.cardinalities(), b.cardinalities());
}

/// The labelled endpoint runs must agree with a plain adjacency filter.
fn assert_runs_match_adjacency(g: &Graph) {
    for n in g.node_ids() {
        for l in (0..g.interner().len()).map(LabelId::new) {
            let out: Vec<_> = g
                .outgoing(n)
                .filter(|a| g.edge(a.edge()).label == l)
                .map(|a| a.edge())
                .collect();
            assert_eq!(g.out_edges_labelled(n, l), &out[..]);
            let inc: Vec<_> = g
                .incoming(n)
                .filter(|a| g.edge(a.edge()).label == l)
                .map(|a| a.edge())
                .collect();
            assert_eq!(g.in_edges_labelled(n, l), &inc[..]);
        }
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cs-csr-equiv-{}-{name}", std::process::id()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Built ≡ owned-decoded ≡ mmap-loaded, for every accessor.
    #[test]
    fn three_backings_agree(n in 2usize..24, extra in 0usize..12, seed in any::<u64>()) {
        let built = rich_graph(n, extra, seed);
        let owned = binfmt::decode_graph(&binfmt::encode_graph(&built)).unwrap();
        assert!(!owned.is_memory_mapped());
        assert_equivalent(&built, &owned);
        assert_runs_match_adjacency(&owned);

        let path = tmp(&format!("tri-{n}-{extra}-{seed}.csg"));
        snapshot::save_to(&built, &path).unwrap();
        let loaded = snapshot::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        #[cfg(all(unix, target_endian = "little"))]
        assert!(loaded.is_memory_mapped());
        assert_equivalent(&built, &loaded);
        assert_runs_match_adjacency(&loaded);
    }

    /// Truncating the file at any point errors on the mapped path too,
    /// never panics, and never yields a different graph.
    #[test]
    fn truncated_snapshot_never_panics(cut_permille in 0usize..1000) {
        let g = rich_graph(10, 6, 42);
        let bytes = binfmt::encode_graph(&g);
        let cut = bytes.len() * cut_permille / 1000;
        if cut < bytes.len() {
            let path = tmp(&format!("trunc-{cut_permille}.csg"));
            std::fs::write(&path, &bytes[..cut]).unwrap();
            prop_assert!(snapshot::load_from(&path).is_err());
            prop_assert!(snapshot::load_from_mmap(&path).is_err());
            std::fs::remove_file(&path).ok();
        }
    }

    /// A flipped byte anywhere in a CSR snapshot never panics on the
    /// mapped load path; when it decodes anyway the graph is intact.
    #[test]
    fn bit_flip_never_panics_mapped(pos_permille in 0usize..1000, mask in 1u8..=255) {
        let g = rich_graph(8, 5, 7);
        let mut bytes = binfmt::encode_graph(&g).to_vec();
        let pos = (bytes.len() * pos_permille / 1000).min(bytes.len() - 1);
        bytes[pos] ^= mask;
        let path = tmp(&format!("flip-{pos_permille}-{mask}.csg"));
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(g2) = snapshot::load_from(&path) {
            assert_equivalent(&g, &g2);
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Misaligned CSR payloads must fall back to owned columns rather than
/// reinterpreting unaligned memory. A custom frame with a 1-byte dummy
/// section before the CSR section shifts every payload off the natural
/// 8-byte alignment.
#[test]
fn misaligned_csr_section_falls_back_to_owned() {
    let g = rich_graph(8, 4, 3);
    let sections = binfmt::encode_sections(&g, &binfmt::EncodeOptions::default());
    let mut reordered: Vec<(u32, Vec<u8>)> = vec![(999, vec![0u8])];
    reordered.extend(sections.iter().map(|(id, p)| (*id, p.to_vec())));

    let mut buf = Vec::new();
    buf.extend_from_slice(b"CSG2");
    buf.extend_from_slice(&(reordered.len() as u32).to_le_bytes());
    for (id, payload) in &reordered {
        buf.extend_from_slice(&binfmt::section_header(*id, payload));
        buf.extend_from_slice(payload);
    }
    let path = tmp("misaligned.csg");
    std::fs::write(&path, &buf).unwrap();

    let loaded = snapshot::load_from(&path).unwrap();
    std::fs::remove_file(&path).ok();
    // The graph is correct either way; the columns just can't alias
    // the map.
    assert!(!loaded.is_memory_mapped(), "unaligned columns must copy");
    assert_equivalent(&g, &loaded);
}

/// A CSR section whose offsets are monotone but whose ids point out of
/// range must be rejected by validation (the checksum is recomputed, so
/// it can't catch a *crafted* file).
#[test]
fn crafted_out_of_range_ids_are_rejected() {
    let g = rich_graph(6, 3, 9);
    let sections = binfmt::encode_sections(&g, &binfmt::EncodeOptions::default());
    let csr = sections
        .iter()
        .find(|(id, _)| *id == binfmt::SECTION_CSR_GRAPH)
        .unwrap();
    // Corrupt the first edge triple's src (file offset 32 + node_label
    // + type_offsets + type_ids words) to an impossible node id, then
    // re-frame with a *fresh* checksum so only validation can object.
    let n = g.node_count();
    let t: usize = g.node_ids().map(|v| g.node_types(v).count()).sum();
    let edge_ndl_start = 32 + 4 * (n + (n + 1) + t);
    let mut payload = csr.1.to_vec();
    payload[edge_ndl_start..edge_ndl_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());

    let mut buf = Vec::new();
    buf.extend_from_slice(b"CSG2");
    buf.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (id, original) in &sections {
        let p: &[u8] = if *id == binfmt::SECTION_CSR_GRAPH {
            &payload
        } else {
            original
        };
        buf.extend_from_slice(&binfmt::section_header(*id, p));
        buf.extend_from_slice(p);
    }
    assert_eq!(
        binfmt::decode_graph(&buf).unwrap_err(),
        binfmt::DecodeError::BadReference
    );
}

/// `node_by_label` keeps returning the first node in id order after a
/// round trip (the CLI's seed resolution depends on it).
#[test]
fn node_by_label_first_in_id_order() {
    let mut b = GraphBuilder::new();
    let n0 = b.add_node("dup");
    let _n1 = b.add_node("dup");
    let g = b.freeze();
    let g2 = binfmt::decode_graph(&binfmt::encode_graph(&g)).unwrap();
    assert_eq!(g2.node_by_label("dup"), Some(n0));
    assert_eq!(g2.node_by_label("missing"), None);
    assert_eq!(NodeId::new(0), n0);
}
