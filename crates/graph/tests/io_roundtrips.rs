//! Property-based round-trip tests for the two serialisation layers
//! (triples text and binary snapshot) and for the glob matcher.

use cs_graph::generate::{gnp, random_connected};
use cs_graph::{binfmt, glob_match, ntriples, Graph};
use proptest::prelude::*;

/// Structural equality up to renumbering: counts, label multisets,
/// degree sequences.
fn structurally_equal(a: &Graph, b: &Graph) -> bool {
    if a.node_count() != b.node_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    let mut da: Vec<usize> = a.node_ids().map(|n| a.degree(n)).collect();
    let mut db: Vec<usize> = b.node_ids().map(|n| b.degree(n)).collect();
    da.sort_unstable();
    db.sort_unstable();
    if da != db {
        return false;
    }
    let mut la: Vec<String> = a.edge_ids().map(|e| a.edge_label(e).to_string()).collect();
    let mut lb: Vec<String> = b.edge_ids().map(|e| b.edge_label(e).to_string()).collect();
    la.sort();
    lb.sort();
    la == lb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn binfmt_roundtrip_random(n in 2usize..40, extra in 0usize..20, seed in any::<u64>()) {
        let g = random_connected(n, extra, seed);
        let g2 = binfmt::decode_graph(&binfmt::encode_graph(&g)).unwrap();
        // Binary snapshots preserve ids exactly.
        prop_assert_eq!(g2.node_count(), g.node_count());
        prop_assert_eq!(g2.edge_count(), g.edge_count());
        for e in g.edge_ids() {
            prop_assert_eq!(g2.describe_edge(e), g.describe_edge(e));
        }
    }

    #[test]
    fn triples_roundtrip_random(n in 2usize..30, p in 0.02f64..0.3, seed in any::<u64>()) {
        let g = gnp(n, p, seed);
        let text = ntriples::write_triples(&g);
        let g2 = ntriples::parse_triples(&text).unwrap();
        // Text round-trips preserve structure up to renumbering (and
        // drop isolated nodes, so compare via a second round-trip).
        let text2 = ntriples::write_triples(&g2);
        let g3 = ntriples::parse_triples(&text2).unwrap();
        prop_assert!(structurally_equal(&g2, &g3));
    }

    #[test]
    fn binfmt_never_panics_on_corrupt_input(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Arbitrary bytes must decode to Err, never panic.
        let _ = binfmt::decode_graph(&bytes);
        // Also flip a valid magic (both versions) onto garbage.
        for magic in [b"CSG1".as_slice(), b"CSG2".as_slice()] {
            let mut with_magic = magic.to_vec();
            with_magic.extend_from_slice(&bytes);
            prop_assert!(binfmt::decode_graph(&with_magic).is_err());
        }
    }

    #[test]
    fn glob_star_matches_everything(s in "[a-zA-Z0-9]{0,12}") {
        let star_prefix = format!("*{s}");
        let star_suffix = format!("{s}*");
        prop_assert!(glob_match("*", &s));
        prop_assert!(glob_match(&star_prefix, &s));
        prop_assert!(glob_match(&star_suffix, &s));
        prop_assert!(glob_match(&s, &s), "every string matches itself");
    }

    #[test]
    fn glob_question_mark_arity(s in "[a-z]{1,10}") {
        let pattern = "?".repeat(s.chars().count());
        let longer = format!("{pattern}?");
        prop_assert!(glob_match(&pattern, &s));
        prop_assert!(!glob_match(&longer, &s));
    }
}
