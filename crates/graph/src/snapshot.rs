//! The disk-backed snapshot store: file-level save / load / inspect
//! around the [`crate::binfmt`] wire format.
//!
//! This is the persistence layer the engine, sessions, `csq`, and the
//! bench harness share: a graph is generated or parsed **once**, saved
//! as a `.csg` file (CSG2: sectioned, checksummed, with an optional
//! statistics sidecar), and re-loaded in milliseconds on every later
//! process start — with the planner's [`crate::Cardinalities`] already
//! warm when the sidecar is present.
//!
//! ```no_run
//! use cs_graph::{figure1, snapshot};
//!
//! let g = figure1();
//! let info = snapshot::save_to(&g, "figure1.csg").unwrap();
//! assert!(info.has_stats);
//! let g2 = snapshot::load_from("figure1.csg").unwrap();
//! assert!(g2.cardinalities_if_computed().is_some()); // warm planner
//! ```

use crate::binfmt::{
    self, DecodeError, EncodeOptions, SECTION_EDGES, SECTION_INTERNER, SECTION_NODES, SECTION_STATS,
};
use crate::model::Graph;
use std::fmt;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Errors from the file-level snapshot API: either the filesystem
/// failed or the bytes did not decode.
#[derive(Debug)]
pub enum SnapshotError {
    /// An I/O error, tagged with the offending path.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file's bytes are not a valid snapshot.
    Decode {
        /// The file being decoded.
        path: String,
        /// The format-level error.
        source: DecodeError,
    },
}

impl SnapshotError {
    fn io(path: &Path, source: std::io::Error) -> Self {
        SnapshotError::Io {
            path: path.display().to_string(),
            source,
        }
    }

    fn decode(path: &Path, source: DecodeError) -> Self {
        SnapshotError::Decode {
            path: path.display().to_string(),
            source,
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => write!(f, "{path}: {source}"),
            SnapshotError::Decode { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            SnapshotError::Decode { source, .. } => Some(source),
        }
    }
}

/// One section of an inspected snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// The section id (see `binfmt::SECTION_*`).
    pub id: u32,
    /// The section's human-readable name.
    pub name: &'static str,
    /// Payload length in bytes.
    pub len: u64,
}

/// What [`inspect`] (and [`save_to`]) report about a snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version: 1 (legacy CSG1) or 2 (CSG2).
    pub version: u8,
    /// Total file size in bytes.
    pub bytes: u64,
    /// Number of nodes.
    pub nodes: u64,
    /// Number of edges.
    pub edges: u64,
    /// Number of interned strings (including ε).
    pub strings: u64,
    /// Whether a statistics sidecar is present (the loaded graph's
    /// planner starts warm).
    pub has_stats: bool,
    /// The file's sections in file order (CSG1 reports none — the
    /// legacy format is one unframed stream).
    pub sections: Vec<SectionInfo>,
}

impl fmt::Display for SnapshotInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CSG{} snapshot: {} bytes, {} nodes, {} edges, {} strings, stats {}",
            self.version,
            self.bytes,
            self.nodes,
            self.edges,
            self.strings,
            if self.has_stats { "present" } else { "absent" }
        )?;
        for s in &self.sections {
            writeln!(f, "  section {} ({}): {} bytes", s.id, s.name, s.len)?;
        }
        Ok(())
    }
}

/// Saves `g` to `path` in the CSG2 format, statistics sidecar included
/// (computing the [`crate::Cardinalities`] if not cached yet). Sections
/// are streamed through a [`BufWriter`] — the whole file is never
/// materialised as one buffer. Returns what was written.
pub fn save_to(g: &Graph, path: impl AsRef<Path>) -> Result<SnapshotInfo, SnapshotError> {
    save_to_with(g, path, &EncodeOptions::default())
}

/// Saves `g` to `path` with explicit encode options.
pub fn save_to_with(
    g: &Graph,
    path: impl AsRef<Path>,
    opts: &EncodeOptions,
) -> Result<SnapshotInfo, SnapshotError> {
    let path = path.as_ref();
    let sections = binfmt::encode_sections(g, opts);

    let file = std::fs::File::create(path).map_err(|e| SnapshotError::io(path, e))?;
    let mut w = BufWriter::new(file);
    let mut write = |bytes: &[u8]| w.write_all(bytes);
    let io = |e| SnapshotError::io(path, e);

    write(b"CSG2").map_err(io)?;
    write(&(sections.len() as u32).to_le_bytes()).map_err(io)?;
    let mut total = 8u64;
    let mut infos = Vec::with_capacity(sections.len());
    for (id, payload) in &sections {
        write(&binfmt::section_header(*id, payload)).map_err(io)?;
        write(payload).map_err(io)?;
        total += 16 + payload.len() as u64;
        infos.push(SectionInfo {
            id: *id,
            name: binfmt::section_name(*id),
            len: payload.len() as u64,
        });
    }
    w.flush().map_err(io)?;
    w.into_inner()
        .map_err(|e| SnapshotError::io(path, e.into_error()))?
        .sync_all()
        .map_err(io)?;

    Ok(SnapshotInfo {
        version: 2,
        bytes: total,
        nodes: g.node_count() as u64,
        edges: g.edge_count() as u64,
        strings: g.interner().len() as u64,
        has_stats: opts.include_stats,
        sections: infos,
    })
}

/// Loads a graph from a `.csg` snapshot file (CSG1 or CSG2). When the
/// file carries a statistics section, the returned graph's
/// [`crate::Graph::cardinalities`] is already populated — no
/// first-query stats pass.
pub fn load_from(path: impl AsRef<Path>) -> Result<Graph, SnapshotError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
    binfmt::decode_graph(&bytes).map_err(|e| SnapshotError::decode(path, e))
}

/// Reads a snapshot file's structure — version, sections with byte
/// lengths, counts, whether statistics are present — verifying every
/// CSG2 checksum, *without* building the graph (CSG2 peeks the count
/// prefixes of the node/edge sections; legacy CSG1 has no framing, so
/// it is decoded fully).
pub fn inspect(path: impl AsRef<Path>) -> Result<SnapshotInfo, SnapshotError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
    if bytes.len() >= 4 && &bytes[..4] == b"CSG1" {
        // Legacy: no section table to walk; decode to count.
        let g = binfmt::decode_graph(&bytes).map_err(|e| SnapshotError::decode(path, e))?;
        return Ok(SnapshotInfo {
            version: 1,
            bytes: bytes.len() as u64,
            nodes: g.node_count() as u64,
            edges: g.edge_count() as u64,
            strings: g.interner().len() as u64,
            has_stats: false,
            sections: Vec::new(),
        });
    }

    let sections = binfmt::read_sections(&bytes).map_err(|e| SnapshotError::decode(path, e))?;
    let count_prefix = |id: u32| -> u64 {
        sections
            .iter()
            .find(|s| s.id == id)
            .and_then(|s| s.payload.get(..4))
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64)
            .unwrap_or(0)
    };
    Ok(SnapshotInfo {
        version: 2,
        bytes: bytes.len() as u64,
        nodes: count_prefix(SECTION_NODES),
        edges: count_prefix(SECTION_EDGES),
        strings: count_prefix(SECTION_INTERNER),
        has_stats: sections.iter().any(|s| s.id == SECTION_STATS),
        sections: sections
            .iter()
            .map(|s| SectionInfo {
                id: s.id,
                name: binfmt::section_name(s.id),
                len: s.payload.len() as u64,
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cs-graph-snapshot-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_inspect_roundtrip() {
        let g = figure1();
        let path = tmp("roundtrip.csg");
        let info = save_to(&g, &path).unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(info.nodes, g.node_count() as u64);
        assert!(info.has_stats);
        assert_eq!(info.sections.len(), 4);

        let inspected = inspect(&path).unwrap();
        assert_eq!(inspected, info);
        assert!(inspected.to_string().contains("stats present"));

        let g2 = load_from(&path).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(
            g2.cardinalities_if_computed().unwrap(),
            g.cardinalities(),
            "loaded stats must equal recomputed stats"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_from("/no/such/dir/x.csg").unwrap_err();
        assert!(matches!(err, SnapshotError::Io { .. }));
        assert!(err.to_string().contains("x.csg"));
    }

    #[test]
    fn unwritable_target_is_io_error() {
        let g = figure1();
        let err = save_to(&g, "/no/such/dir/out.csg").unwrap_err();
        assert!(matches!(err, SnapshotError::Io { .. }));
    }

    #[test]
    fn corrupt_file_is_decode_error() {
        let path = tmp("corrupt.csg");
        std::fs::write(&path, b"CSG2garbage").unwrap();
        let err = load_from(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::Decode { .. }), "{err}");
        let err = inspect(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::Decode { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inspect_without_stats() {
        let g = figure1();
        let path = tmp("nostats.csg");
        save_to_with(
            &g,
            &path,
            &EncodeOptions {
                include_stats: false,
            },
        )
        .unwrap();
        let info = inspect(&path).unwrap();
        assert!(!info.has_stats);
        assert_eq!(info.sections.len(), 3);
        std::fs::remove_file(&path).ok();
    }
}
