//! The disk-backed snapshot store: file-level save / load / inspect
//! around the [`crate::binfmt`] wire format.
//!
//! This is the persistence layer the engine, sessions, `csq`, and the
//! bench harness share: a graph is generated or parsed **once**, saved
//! as a `.csg` file (CSG2: sectioned, checksummed, with an optional
//! statistics sidecar), and re-loaded in milliseconds on every later
//! process start — with the planner's [`crate::Cardinalities`] already
//! warm when the sidecar is present.
//!
//! ```no_run
//! use cs_graph::{figure1, snapshot};
//!
//! let g = figure1();
//! let info = snapshot::save_to(&g, "figure1.csg").unwrap();
//! assert!(info.has_stats);
//! let g2 = snapshot::load_from("figure1.csg").unwrap();
//! assert!(g2.cardinalities_if_computed().is_some()); // warm planner
//! ```

use crate::binfmt::{
    self, DecodeError, EncodeOptions, CSR_LAYOUT_VERSION, SECTION_CSR_GRAPH, SECTION_EDGES,
    SECTION_INTERNER, SECTION_NODES, SECTION_STATS,
};
use crate::model::Graph;
use std::fmt;
use std::io::{BufWriter, Write};
use std::path::Path;

#[cfg(all(unix, target_endian = "little"))]
use crate::storage::MmapFile;

/// Errors from the file-level snapshot API: either the filesystem
/// failed or the bytes did not decode.
#[derive(Debug)]
pub enum SnapshotError {
    /// An I/O error, tagged with the offending path.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file's bytes are not a valid snapshot.
    Decode {
        /// The file being decoded.
        path: String,
        /// The format-level error.
        source: DecodeError,
    },
}

impl SnapshotError {
    fn io(path: &Path, source: std::io::Error) -> Self {
        SnapshotError::Io {
            path: path.display().to_string(),
            source,
        }
    }

    fn decode(path: &Path, source: DecodeError) -> Self {
        SnapshotError::Decode {
            path: path.display().to_string(),
            source,
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => write!(f, "{path}: {source}"),
            SnapshotError::Decode { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            SnapshotError::Decode { source, .. } => Some(source),
        }
    }
}

/// One section of an inspected snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// The section id (see `binfmt::SECTION_*`).
    pub id: u32,
    /// The section's human-readable name.
    pub name: &'static str,
    /// Payload length in bytes.
    pub len: u64,
    /// Byte offset of the payload within the file.
    pub offset: u64,
}

impl SectionInfo {
    /// The strongest power-of-two alignment (up to 8) of the payload's
    /// file offset — the CSR section needs at least 4 for zero-copy.
    pub fn alignment(&self) -> u64 {
        let a = 1 << self.offset.trailing_zeros().min(3);
        debug_assert!(a <= 8);
        a
    }
}

/// What [`inspect`] (and [`save_to`]) report about a snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version: 1 (legacy CSG1) or 2 (CSG2).
    pub version: u8,
    /// Total file size in bytes.
    pub bytes: u64,
    /// Number of nodes.
    pub nodes: u64,
    /// Number of edges.
    pub edges: u64,
    /// Number of interned strings (including ε).
    pub strings: u64,
    /// Whether a statistics sidecar is present (the loaded graph's
    /// planner starts warm).
    pub has_stats: bool,
    /// The CSR layout version when the snapshot carries a `csr`
    /// section (`None` for legacy record-layout CSG2 and for CSG1).
    /// Such files are eligible for the zero-copy mmap load path.
    pub csr_layout: Option<u32>,
    /// The file's sections in file order (CSG1 reports none — the
    /// legacy format is one unframed stream).
    pub sections: Vec<SectionInfo>,
}

impl fmt::Display for SnapshotInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CSG{} snapshot: {} bytes, {} nodes, {} edges, {} strings, stats {}, layout {}",
            self.version,
            self.bytes,
            self.nodes,
            self.edges,
            self.strings,
            if self.has_stats { "present" } else { "absent" },
            match self.csr_layout {
                Some(v) => format!("csr-v{v} (zero-copy capable)"),
                None => "records (decode-only)".to_string(),
            }
        )?;
        for s in &self.sections {
            writeln!(
                f,
                "  section {} ({}): {} bytes at offset {} ({}-byte aligned)",
                s.id,
                s.name,
                s.len,
                s.offset,
                s.alignment()
            )?;
        }
        Ok(())
    }
}

/// Saves `g` to `path` in the CSG2 format, statistics sidecar included
/// (computing the [`crate::Cardinalities`] if not cached yet). Sections
/// are streamed through a [`BufWriter`] — the whole file is never
/// materialised as one buffer. Returns what was written.
pub fn save_to(g: &Graph, path: impl AsRef<Path>) -> Result<SnapshotInfo, SnapshotError> {
    save_to_with(g, path, &EncodeOptions::default())
}

/// Saves `g` to `path` with explicit encode options.
pub fn save_to_with(
    g: &Graph,
    path: impl AsRef<Path>,
    opts: &EncodeOptions,
) -> Result<SnapshotInfo, SnapshotError> {
    let path = path.as_ref();
    let sections = binfmt::encode_sections(g, opts);

    let file = std::fs::File::create(path).map_err(|e| SnapshotError::io(path, e))?;
    let mut w = BufWriter::new(file);
    let mut write = |bytes: &[u8]| w.write_all(bytes);
    let io = |e| SnapshotError::io(path, e);

    write(b"CSG2").map_err(io)?;
    write(&(sections.len() as u32).to_le_bytes()).map_err(io)?;
    let mut total = 8u64;
    let mut infos = Vec::with_capacity(sections.len());
    for (id, payload) in &sections {
        write(&binfmt::section_header(*id, payload)).map_err(io)?;
        write(payload).map_err(io)?;
        infos.push(SectionInfo {
            id: *id,
            name: binfmt::section_name(*id),
            len: payload.len() as u64,
            offset: total + 16,
        });
        total += 16 + payload.len() as u64;
    }
    w.flush().map_err(io)?;
    w.into_inner()
        .map_err(|e| SnapshotError::io(path, e.into_error()))?
        .sync_all()
        .map_err(io)?;

    Ok(SnapshotInfo {
        version: 2,
        bytes: total,
        nodes: g.node_count() as u64,
        edges: g.edge_count() as u64,
        strings: g.interner().len() as u64,
        has_stats: opts.include_stats,
        csr_layout: (!opts.legacy_layout).then_some(CSR_LAYOUT_VERSION),
        sections: infos,
    })
}

/// Loads a graph from a `.csg` snapshot file (CSG1 or CSG2). When the
/// file carries a statistics section, the returned graph's
/// [`crate::Graph::cardinalities`] is already populated — no
/// first-query stats pass.
///
/// CSR-layout CSG2 snapshots on little-endian unix hosts load
/// **zero-copy**: the file is memory-mapped, section checksums and CSR
/// bounds are verified, and the graph's columns alias the mapping
/// directly — no per-edge work at all. Everything else (legacy CSG2,
/// CSG1, other hosts) falls back to [`load_from_owned`].
pub fn load_from(path: impl AsRef<Path>) -> Result<Graph, SnapshotError> {
    let path = path.as_ref();
    #[cfg(all(unix, target_endian = "little"))]
    if let Some(g) = try_load_mapped(path)? {
        return Ok(g);
    }
    load_from_owned(path)
}

/// Loads a snapshot into freshly allocated memory, never mapping the
/// file — the portable path, and the parse-vs-load ablation's
/// "load (owned)" arm.
pub fn load_from_owned(path: impl AsRef<Path>) -> Result<Graph, SnapshotError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
    binfmt::decode_graph(&bytes).map_err(|e| SnapshotError::decode(path, e))
}

/// Loads a snapshot strictly zero-copy, erroring instead of falling
/// back when the file (or host) does not support mapped loads. The
/// ablation harness uses this to keep the `load_mmap` column honest.
pub fn load_from_mmap(path: impl AsRef<Path>) -> Result<Graph, SnapshotError> {
    let path = path.as_ref();
    let unsupported = |reason: &str| {
        SnapshotError::io(
            path,
            std::io::Error::new(std::io::ErrorKind::Unsupported, reason.to_string()),
        )
    };
    #[cfg(all(unix, target_endian = "little"))]
    {
        match try_load_mapped(path)? {
            Some(g) => Ok(g),
            None => Err(unsupported(
                "not a CSR-layout CSG2 snapshot (or empty file); only those load zero-copy",
            )),
        }
    }
    #[cfg(not(all(unix, target_endian = "little")))]
    {
        Err(unsupported(
            "memory-mapped loads need a little-endian unix host",
        ))
    }
}

/// Maps the file and decodes it in place. `Ok(None)` means the file is
/// fine but not eligible for zero-copy (legacy layout, CSG1, empty);
/// actual corruption is an error.
#[cfg(all(unix, target_endian = "little"))]
fn try_load_mapped(path: &Path) -> Result<Option<Graph>, SnapshotError> {
    // Miri cannot model the mmap FFI; report "not eligible" so loads
    // fall back to the owned read path and the decode/validate logic
    // still runs under the interpreter.
    #[cfg(miri)]
    {
        let _ = path;
        return Ok(None);
    }
    #[cfg(not(miri))]
    try_load_mapped_inner(path)
}

#[cfg(all(unix, target_endian = "little", not(miri)))]
fn try_load_mapped_inner(path: &Path) -> Result<Option<Graph>, SnapshotError> {
    let file = std::fs::File::open(path).map_err(|e| SnapshotError::io(path, e))?;
    let Some(map) = MmapFile::map(&file).map_err(|e| SnapshotError::io(path, e))? else {
        return Ok(None);
    };
    match binfmt::decode_graph_mapped(&map) {
        Ok(found) => Ok(found),
        // A file that *claims* the CSR layout but fails validation is
        // corrupt for the owned path too — report, don't re-decode.
        Err(e) => Err(SnapshotError::decode(path, e)),
    }
}

/// Reads a snapshot file's structure — version, sections with byte
/// lengths, offsets and alignment, counts, whether statistics are
/// present — verifying every CSG2 checksum, *without* building the
/// graph. CSG2 peeks the CSR header (or the count prefixes of the
/// legacy node/edge sections); CSG1 walks its record stream counting
/// records but materialising none of them.
pub fn inspect(path: impl AsRef<Path>) -> Result<SnapshotInfo, SnapshotError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::io(path, e))?;
    if bytes.len() >= 4 && &bytes[..4] == b"CSG1" {
        // Legacy: no section table to walk; skip-scan the records.
        let counts = binfmt::peek_counts_v1(&bytes).map_err(|e| SnapshotError::decode(path, e))?;
        return Ok(SnapshotInfo {
            version: 1,
            bytes: bytes.len() as u64,
            nodes: counts.nodes as u64,
            edges: counts.edges as u64,
            strings: counts.strings as u64,
            has_stats: false,
            csr_layout: None,
            sections: Vec::new(),
        });
    }

    let sections = binfmt::read_sections(&bytes).map_err(|e| SnapshotError::decode(path, e))?;
    let count_prefix = |id: u32| -> u64 {
        sections
            .iter()
            .find(|s| s.id == id)
            .and_then(|s| s.payload.get(..4))
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64)
            .unwrap_or(0)
    };
    let csr = match sections.iter().find(|s| s.id == SECTION_CSR_GRAPH) {
        Some(s) => {
            Some(binfmt::peek_csr_header(s.payload).map_err(|e| SnapshotError::decode(path, e))?)
        }
        None => None,
    };
    let base = bytes.as_ptr() as u64;
    Ok(SnapshotInfo {
        version: 2,
        bytes: bytes.len() as u64,
        nodes: csr.map_or_else(|| count_prefix(SECTION_NODES), |h| h.nodes as u64),
        edges: csr.map_or_else(|| count_prefix(SECTION_EDGES), |h| h.edges as u64),
        strings: count_prefix(SECTION_INTERNER),
        has_stats: sections.iter().any(|s| s.id == SECTION_STATS),
        csr_layout: csr.map(|h| h.version),
        sections: sections
            .iter()
            .map(|s| SectionInfo {
                id: s.id,
                name: binfmt::section_name(s.id),
                len: s.payload.len() as u64,
                offset: s.payload.as_ptr() as u64 - base,
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cs-graph-snapshot-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_inspect_roundtrip() {
        let g = figure1();
        let path = tmp("roundtrip.csg");
        let info = save_to(&g, &path).unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(info.nodes, g.node_count() as u64);
        assert!(info.has_stats);
        assert_eq!(info.csr_layout, Some(CSR_LAYOUT_VERSION));
        // figure1 carries no properties: csr + interner + stats.
        assert_eq!(info.sections.len(), 3);
        // The CSR section comes first so its payload lands 8-aligned.
        assert_eq!(info.sections[0].id, SECTION_CSR_GRAPH);
        assert_eq!(info.sections[0].offset, 24);
        assert_eq!(info.sections[0].alignment(), 8);

        let inspected = inspect(&path).unwrap();
        assert_eq!(inspected, info);
        assert!(inspected.to_string().contains("stats present"));
        assert!(inspected.to_string().contains("layout csr-v1"));

        let g2 = load_from(&path).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(
            g2.cardinalities_if_computed().unwrap(),
            g.cardinalities(),
            "loaded stats must equal recomputed stats"
        );
        #[cfg(all(unix, target_endian = "little", not(miri)))]
        assert!(g2.is_memory_mapped(), "CSR snapshot should load zero-copy");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_layout_roundtrip_and_strict_mmap_refusal() {
        let g = figure1();
        let path = tmp("legacy-layout.csg");
        let info = save_to_with(
            &g,
            &path,
            &EncodeOptions {
                legacy_layout: true,
                ..EncodeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(info.csr_layout, None);
        assert_eq!(info.sections.len(), 4); // interner, nodes, edges, stats
        assert_eq!(inspect(&path).unwrap(), info);

        let g2 = load_from(&path).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        assert!(!g2.is_memory_mapped());
        assert!(g2.cardinalities_if_computed().is_some());

        // The strict zero-copy loader refuses record-layout files.
        let err = load_from_mmap(&path).unwrap_err();
        assert!(err.to_string().contains("zero-copy"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[cfg(all(unix, target_endian = "little", not(miri)))] // Miri: no mmap FFI
    #[test]
    fn mmap_and_owned_loads_agree() {
        let g = figure1();
        let path = tmp("mmap-owned.csg");
        save_to(&g, &path).unwrap();
        let mapped = load_from_mmap(&path).unwrap();
        let owned = load_from_owned(&path).unwrap();
        assert!(mapped.is_memory_mapped());
        assert!(!owned.is_memory_mapped());
        assert_eq!(mapped.node_count(), owned.node_count());
        assert_eq!(mapped.edge_count(), owned.edge_count());
        for n in g.node_ids() {
            assert_eq!(mapped.node_label(n), owned.node_label(n));
        }
        for e in g.edge_ids() {
            assert_eq!(mapped.describe_edge(e), owned.describe_edge(e));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_from("/no/such/dir/x.csg").unwrap_err();
        assert!(matches!(err, SnapshotError::Io { .. }));
        assert!(err.to_string().contains("x.csg"));
    }

    #[test]
    fn unwritable_target_is_io_error() {
        let g = figure1();
        let err = save_to(&g, "/no/such/dir/out.csg").unwrap_err();
        assert!(matches!(err, SnapshotError::Io { .. }));
    }

    #[test]
    fn corrupt_file_is_decode_error() {
        let path = tmp("corrupt.csg");
        std::fs::write(&path, b"CSG2garbage").unwrap();
        let err = load_from(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::Decode { .. }), "{err}");
        let err = inspect(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::Decode { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inspect_without_stats() {
        let g = figure1();
        let path = tmp("nostats.csg");
        save_to_with(
            &g,
            &path,
            &EncodeOptions {
                include_stats: false,
                ..EncodeOptions::default()
            },
        )
        .unwrap();
        let info = inspect(&path).unwrap();
        assert!(!info.has_stats);
        assert_eq!(info.sections.len(), 2); // csr + interner
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csg1_inspect_peeks_counts() {
        let g = figure1();
        let path = tmp("v1-peek.csg");
        std::fs::write(&path, binfmt::encode_graph_v1(&g)).unwrap();
        let info = inspect(&path).unwrap();
        assert_eq!(info.version, 1);
        assert_eq!(info.nodes, g.node_count() as u64);
        assert_eq!(info.edges, g.edge_count() as u64);
        assert_eq!(info.strings, g.interner().len() as u64);
        assert_eq!(info.csr_layout, None);
        assert!(info.sections.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
