//! Mutable construction of [`Graph`]s.

use crate::fxhash::FxHashMap;
use crate::ids::{EdgeId, LabelId, NodeId};
use crate::interner::Interner;
use crate::model::{Adj, EdgeData, Graph, NodeData};
use crate::value::Value;

/// Accumulates nodes and edges, then freezes into an immutable [`Graph`]
/// with adjacency lists and label/type indexes.
///
/// ```
/// use cs_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let alice = b.add_typed_node("Alice", &["entrepreneur"]);
/// let fr = b.add_typed_node("France", &["country"]);
/// b.add_edge(alice, "citizenOf", fr);
/// let g = b.freeze();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    interner: Interner,
    nodes: Vec<NodeBuild>,
    edges: Vec<EdgeBuild>,
}

#[derive(Debug)]
struct NodeBuild {
    label: LabelId,
    types: Vec<LabelId>,
    props: Vec<(LabelId, Value)>,
}

#[derive(Debug)]
struct EdgeBuild {
    src: NodeId,
    dst: NodeId,
    label: LabelId,
    props: Vec<(LabelId, Value)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder {
            interner: Interner::new(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Creates a builder with node/edge capacity hints.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            interner: Interner::new(),
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Reserves capacity for at least `nodes` more nodes and `edges`
    /// more edges — used by decoders that learn the counts mid-stream.
    pub fn reserve(&mut self, nodes: usize, edges: usize) {
        self.nodes.reserve(nodes);
        self.edges.reserve(edges);
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node with the given label and no types.
    pub fn add_node(&mut self, label: &str) -> NodeId {
        self.add_typed_node(label, &[])
    }

    /// Adds a node with label and types.
    pub fn add_typed_node(&mut self, label: &str, types: &[&str]) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        let label = self.interner.intern(label);
        let types = types.iter().map(|t| self.interner.intern(t)).collect();
        self.nodes.push(NodeBuild {
            label,
            types,
            props: Vec::new(),
        });
        id
    }

    /// Adds a labelled directed edge.
    pub fn add_edge(&mut self, src: NodeId, label: &str, dst: NodeId) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "unknown source node");
        assert!(dst.index() < self.nodes.len(), "unknown target node");
        let id = EdgeId::new(self.edges.len());
        let label = self.interner.intern(label);
        self.edges.push(EdgeBuild {
            src,
            dst,
            label,
            props: Vec::new(),
        });
        id
    }

    /// Attaches an extra type to an existing node.
    pub fn add_type(&mut self, n: NodeId, ty: &str) {
        let t = self.interner.intern(ty);
        let types = &mut self.nodes[n.index()].types;
        if !types.contains(&t) {
            types.push(t);
        }
    }

    /// Sets a node property (overwrites an existing value for the key).
    pub fn set_node_prop(&mut self, n: NodeId, key: &str, value: impl Into<Value>) {
        let k = self.interner.intern(key);
        set_prop(&mut self.nodes[n.index()].props, k, value.into());
    }

    /// Sets an edge property (overwrites an existing value for the key).
    pub fn set_edge_prop(&mut self, e: EdgeId, key: &str, value: impl Into<Value>) {
        let k = self.interner.intern(key);
        set_prop(&mut self.edges[e.index()].props, k, value.into());
    }

    /// Interns a label eagerly (useful when generating predicates that
    /// must share the graph's vocabulary).
    pub fn intern(&mut self, s: &str) -> LabelId {
        self.interner.intern(s)
    }

    /// Freezes into an immutable [`Graph`], building adjacency and
    /// indexes.
    pub fn freeze(self) -> Graph {
        let n = self.nodes.len();
        // Two-pass adjacency construction: count, then fill.
        let mut counts = vec![0u32; n];
        for e in &self.edges {
            counts[e.src.index()] += 1;
            counts[e.dst.index()] += 1;
        }
        let mut adj: Vec<Vec<Adj>> = counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        let mut edges_by_label: FxHashMap<LabelId, Vec<EdgeId>> = FxHashMap::default();
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId::new(i);
            adj[e.src.index()].push(Adj {
                edge: id,
                other: e.dst,
                outgoing: true,
            });
            adj[e.dst.index()].push(Adj {
                edge: id,
                other: e.src,
                outgoing: false,
            });
            edges_by_label.entry(e.label).or_default().push(id);
        }

        let mut nodes_by_label: FxHashMap<LabelId, Vec<NodeId>> = FxHashMap::default();
        let mut nodes_by_type: FxHashMap<LabelId, Vec<NodeId>> = FxHashMap::default();
        for (i, nd) in self.nodes.iter().enumerate() {
            let id = NodeId::new(i);
            nodes_by_label.entry(nd.label).or_default().push(id);
            for &t in &nd.types {
                nodes_by_type.entry(t).or_default().push(id);
            }
        }

        let nodes = self
            .nodes
            .into_iter()
            .map(|mut nb| {
                nb.props.sort_by_key(|(k, _)| *k);
                NodeData {
                    label: nb.label,
                    types: nb.types.into_boxed_slice(),
                    props: nb.props.into_boxed_slice(),
                }
            })
            .collect();
        let edges = self
            .edges
            .into_iter()
            .map(|mut eb| {
                eb.props.sort_by_key(|(k, _)| *k);
                EdgeData {
                    src: eb.src,
                    dst: eb.dst,
                    label: eb.label,
                    props: eb.props.into_boxed_slice(),
                }
            })
            .collect();

        Graph {
            interner: self.interner,
            nodes,
            edges,
            adj: adj.into_iter().map(Vec::into_boxed_slice).collect(),
            edges_by_label,
            nodes_by_label,
            nodes_by_type,
            cardinalities: std::sync::OnceLock::new(),
        }
    }
}

fn set_prop(props: &mut Vec<(LabelId, Value)>, key: LabelId, value: Value) {
    match props.iter_mut().find(|(k, _)| *k == key) {
        Some(slot) => slot.1 = value,
        None => props.push((key, value)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_with_types_and_props() {
        let mut b = GraphBuilder::new();
        let a = b.add_typed_node("Alice", &["entrepreneur"]);
        let f = b.add_typed_node("France", &["country"]);
        let e = b.add_edge(a, "citizenOf", f);
        b.set_node_prop(a, "age", 41i64);
        b.set_edge_prop(e, "since", 1999i64);
        b.add_type(a, "person");
        b.add_type(a, "person"); // idempotent
        let g = b.freeze();

        assert_eq!(
            g.node_types(a).collect::<Vec<_>>(),
            ["entrepreneur", "person"]
        );
        assert_eq!(g.node_prop(a, "age"), Some(&Value::Int(41)));
        assert_eq!(g.edge_prop(e, "since"), Some(&Value::Int(1999)));
        assert_eq!(g.node_prop(a, "missing"), None);
    }

    #[test]
    fn prop_overwrite() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        b.set_node_prop(a, "w", 1i64);
        b.set_node_prop(a, "w", 2i64);
        let g = b.freeze();
        assert_eq!(g.node_prop(a, "w"), Some(&Value::Int(2)));
    }

    #[test]
    fn type_index() {
        let mut b = GraphBuilder::new();
        let a = b.add_typed_node("a", &["t1"]);
        let c = b.add_typed_node("c", &["t1", "t2"]);
        let g = b.freeze();
        let t1 = g.label_id("t1").unwrap();
        let t2 = g.label_id("t2").unwrap();
        assert_eq!(g.nodes_with_type(t1), &[a, c]);
        assert_eq!(g.nodes_with_type(t2), &[c]);
    }

    #[test]
    #[should_panic(expected = "unknown source node")]
    fn edge_requires_existing_nodes() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        b.add_edge(NodeId(99), "x", a);
    }
}
