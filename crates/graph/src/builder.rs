//! Mutable construction of [`Graph`]s.

use crate::ids::{EdgeId, LabelId, NodeId};
use crate::interner::Interner;
use crate::model::{Adj, Graph, GraphParts, PropTable};
use crate::storage::Storage;
use crate::value::Value;

/// Accumulates nodes and edges, then freezes into an immutable [`Graph`]
/// with adjacency lists and label/type indexes.
///
/// ```
/// use cs_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let alice = b.add_typed_node("Alice", &["entrepreneur"]);
/// let fr = b.add_typed_node("France", &["country"]);
/// b.add_edge(alice, "citizenOf", fr);
/// let g = b.freeze();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    interner: Interner,
    nodes: Vec<NodeBuild>,
    edges: Vec<EdgeBuild>,
}

#[derive(Debug)]
pub(crate) struct NodeBuild {
    pub(crate) label: LabelId,
    pub(crate) types: Vec<LabelId>,
    pub(crate) props: Vec<(LabelId, Value)>,
}

#[derive(Debug)]
pub(crate) struct EdgeBuild {
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) label: LabelId,
    pub(crate) props: Vec<(LabelId, Value)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder {
            interner: Interner::new(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Creates a builder with node/edge capacity hints.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            interner: Interner::new(),
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Reserves capacity for at least `nodes` more nodes and `edges`
    /// more edges — used by decoders that learn the counts mid-stream.
    pub fn reserve(&mut self, nodes: usize, edges: usize) {
        self.nodes.reserve(nodes);
        self.edges.reserve(edges);
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node with the given label and no types.
    pub fn add_node(&mut self, label: &str) -> NodeId {
        self.add_typed_node(label, &[])
    }

    /// Adds a node with label and types.
    pub fn add_typed_node(&mut self, label: &str, types: &[&str]) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        let label = self.interner.intern(label);
        let types = types.iter().map(|t| self.interner.intern(t)).collect();
        self.nodes.push(NodeBuild {
            label,
            types,
            props: Vec::new(),
        });
        id
    }

    /// Adds a labelled directed edge.
    pub fn add_edge(&mut self, src: NodeId, label: &str, dst: NodeId) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "unknown source node");
        assert!(dst.index() < self.nodes.len(), "unknown target node");
        let id = EdgeId::new(self.edges.len());
        let label = self.interner.intern(label);
        self.edges.push(EdgeBuild {
            src,
            dst,
            label,
            props: Vec::new(),
        });
        id
    }

    /// Attaches an extra type to an existing node.
    pub fn add_type(&mut self, n: NodeId, ty: &str) {
        let t = self.interner.intern(ty);
        let types = &mut self.nodes[n.index()].types;
        if !types.contains(&t) {
            types.push(t);
        }
    }

    /// Sets a node property (overwrites an existing value for the key).
    pub fn set_node_prop(&mut self, n: NodeId, key: &str, value: impl Into<Value>) {
        let k = self.interner.intern(key);
        set_prop(&mut self.nodes[n.index()].props, k, value.into());
    }

    /// Sets an edge property (overwrites an existing value for the key).
    pub fn set_edge_prop(&mut self, e: EdgeId, key: &str, value: impl Into<Value>) {
        let k = self.interner.intern(key);
        set_prop(&mut self.edges[e.index()].props, k, value.into());
    }

    /// Interns a label eagerly (useful when generating predicates that
    /// must share the graph's vocabulary).
    pub fn intern(&mut self, s: &str) -> LabelId {
        self.interner.intern(s)
    }

    /// Freezes into an immutable [`Graph`], building the CSR columns
    /// (adjacency runs, per-label edge/node partitions, forward and
    /// reverse label CSRs) in counting-sort passes.
    pub fn freeze(self) -> Graph {
        build_parts(self.interner, self.nodes, self.edges).into_graph()
    }
}

/// The column-construction core shared by [`GraphBuilder::freeze`] and
/// delta compaction ([`crate::mutate`]): turns flat node/edge rows into
/// the full CSR column set.
pub(crate) fn build_parts(
    interner: Interner,
    mut nodes: Vec<NodeBuild>,
    mut edges: Vec<EdgeBuild>,
) -> GraphParts {
    let n = nodes.len();
    let m = edges.len();
    assert!(m < (1 << 31), "graphs are capped at 2^31 - 1 edges");
    let l = interner.len();

    // Node columns: label, and per-node type runs in insertion order.
    let mut node_label = Vec::with_capacity(n);
    let mut type_offsets = Vec::with_capacity(n + 1);
    let mut type_ids = Vec::new();
    type_offsets.push(0u32);
    for nd in &nodes {
        node_label.push(nd.label.0);
        type_ids.extend(nd.types.iter().map(|t| t.0));
        type_offsets.push(type_ids.len() as u32);
    }

    // Edge triple column: interleaved (src, dst, label).
    let mut edge_ndl = Vec::with_capacity(3 * m);
    for e in &edges {
        edge_ndl.extend([e.src.0, e.dst.0, e.label.0]);
    }

    // Adjacency CSR: count, prefix-sum, fill. Iterating edges in id
    // order (outgoing entry before the incoming one) reproduces the
    // exact per-node order queue-order-sensitive traversals rely on:
    // ascending edge id, out before in for self-loops.
    let mut adj_offsets = vec![0u32; n + 1];
    for e in &edges {
        adj_offsets[e.src.index() + 1] += 1;
        adj_offsets[e.dst.index() + 1] += 1;
    }
    for i in 0..n {
        adj_offsets[i + 1] += adj_offsets[i];
    }
    let mut cursor: Vec<u32> = adj_offsets[..n].to_vec();
    let mut adj_pairs = vec![0u32; 4 * m];
    for (i, e) in edges.iter().enumerate() {
        let id = EdgeId::new(i);
        let entries = [
            (e.src, Adj::new(id, e.dst, true)),
            (e.dst, Adj::new(id, e.src, false)),
        ];
        for (node, adj) in entries {
            let slot = cursor[node.index()] as usize;
            cursor[node.index()] += 1;
            adj_pairs[2 * slot..2 * slot + 2].copy_from_slice(&adj.words());
        }
    }

    // Per-label edge partitions, ascending edge id within each run.
    let mut elab_offsets = vec![0u32; l + 1];
    for e in &edges {
        elab_offsets[e.label.index() + 1] += 1;
    }
    for i in 0..l {
        elab_offsets[i + 1] += elab_offsets[i];
    }
    let mut ecur: Vec<u32> = elab_offsets[..l].to_vec();
    let mut elab_edges = vec![0u32; m];
    for (i, e) in edges.iter().enumerate() {
        let slot = ecur[e.label.index()] as usize;
        ecur[e.label.index()] += 1;
        elab_edges[slot] = i as u32;
    }
    // Forward/reverse label CSRs: each label run re-sorted by
    // endpoint (stable, so ties keep ascending edge-id order).
    let mut fwd_edges = elab_edges.clone();
    let mut rev_edges = elab_edges.clone();
    for li in 0..l {
        let r = elab_offsets[li] as usize..elab_offsets[li + 1] as usize;
        fwd_edges[r.clone()].sort_by_key(|&e| edges[e as usize].src.0);
        rev_edges[r].sort_by_key(|&e| edges[e as usize].dst.0);
    }

    // Per-label and per-type node partitions, ascending node id.
    let mut nlab_offsets = vec![0u32; l + 1];
    let mut ntype_offsets = vec![0u32; l + 1];
    for nd in &nodes {
        nlab_offsets[nd.label.index() + 1] += 1;
        for t in &nd.types {
            ntype_offsets[t.index() + 1] += 1;
        }
    }
    for i in 0..l {
        nlab_offsets[i + 1] += nlab_offsets[i];
        ntype_offsets[i + 1] += ntype_offsets[i];
    }
    let mut lcur: Vec<u32> = nlab_offsets[..l].to_vec();
    let mut tcur: Vec<u32> = ntype_offsets[..l].to_vec();
    let mut nlab_nodes = vec![0u32; n];
    let mut ntype_nodes = vec![0u32; type_ids.len()];
    for (i, nd) in nodes.iter().enumerate() {
        let slot = lcur[nd.label.index()] as usize;
        lcur[nd.label.index()] += 1;
        nlab_nodes[slot] = i as u32;
        for t in &nd.types {
            let slot = tcur[t.index()] as usize;
            tcur[t.index()] += 1;
            ntype_nodes[slot] = i as u32;
        }
    }

    // Sparse property side tables, sorted by entity id then key.
    let collect_props = |items: &mut dyn Iterator<Item = (usize, Vec<(LabelId, Value)>)>| {
        items
            .filter(|(_, p)| !p.is_empty())
            .map(|(i, mut p)| {
                p.sort_by_key(|(k, _)| *k);
                (i as u32, p.into_boxed_slice())
            })
            .collect::<Vec<_>>()
            .into_boxed_slice()
    };
    let node_props: PropTable = collect_props(
        &mut nodes
            .iter_mut()
            .map(|nb| std::mem::take(&mut nb.props))
            .enumerate(),
    );
    let edge_props: PropTable = collect_props(
        &mut edges
            .iter_mut()
            .map(|eb| std::mem::take(&mut eb.props))
            .enumerate(),
    );

    GraphParts {
        interner,
        n,
        m,
        node_label: Storage::from_vec(node_label),
        type_offsets: Storage::from_vec(type_offsets),
        type_ids: Storage::from_vec(type_ids),
        edge_ndl: Storage::from_vec(edge_ndl),
        adj_offsets: Storage::from_vec(adj_offsets),
        adj_pairs: Storage::from_vec(adj_pairs),
        elab_offsets: Storage::from_vec(elab_offsets),
        elab_edges: Storage::from_vec(elab_edges),
        fwd_edges: Storage::from_vec(fwd_edges),
        rev_edges: Storage::from_vec(rev_edges),
        nlab_offsets: Storage::from_vec(nlab_offsets),
        nlab_nodes: Storage::from_vec(nlab_nodes),
        ntype_offsets: Storage::from_vec(ntype_offsets),
        ntype_nodes: Storage::from_vec(ntype_nodes),
        node_props,
        edge_props,
    }
}

fn set_prop(props: &mut Vec<(LabelId, Value)>, key: LabelId, value: Value) {
    match props.iter_mut().find(|(k, _)| *k == key) {
        Some(slot) => slot.1 = value,
        None => props.push((key, value)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_with_types_and_props() {
        let mut b = GraphBuilder::new();
        let a = b.add_typed_node("Alice", &["entrepreneur"]);
        let f = b.add_typed_node("France", &["country"]);
        let e = b.add_edge(a, "citizenOf", f);
        b.set_node_prop(a, "age", 41i64);
        b.set_edge_prop(e, "since", 1999i64);
        b.add_type(a, "person");
        b.add_type(a, "person"); // idempotent
        let g = b.freeze();

        assert_eq!(
            g.node_types(a).collect::<Vec<_>>(),
            ["entrepreneur", "person"]
        );
        assert_eq!(g.node_prop(a, "age"), Some(&Value::Int(41)));
        assert_eq!(g.edge_prop(e, "since"), Some(&Value::Int(1999)));
        assert_eq!(g.node_prop(a, "missing"), None);
    }

    #[test]
    fn prop_overwrite() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        b.set_node_prop(a, "w", 1i64);
        b.set_node_prop(a, "w", 2i64);
        let g = b.freeze();
        assert_eq!(g.node_prop(a, "w"), Some(&Value::Int(2)));
    }

    #[test]
    fn type_index() {
        let mut b = GraphBuilder::new();
        let a = b.add_typed_node("a", &["t1"]);
        let c = b.add_typed_node("c", &["t1", "t2"]);
        let g = b.freeze();
        let t1 = g.label_id("t1").unwrap();
        let t2 = g.label_id("t2").unwrap();
        assert_eq!(g.nodes_with_type(t1), &[a, c]);
        assert_eq!(g.nodes_with_type(t2), &[c]);
    }

    #[test]
    #[should_panic(expected = "unknown source node")]
    fn edge_requires_existing_nodes() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        b.add_edge(NodeId(99), "x", a);
    }
}
