//! Compact binary snapshot formats for graphs, built on `bytes`.
//!
//! Benchmarks over generated multi-million-edge graphs re-load far
//! faster from a binary snapshot than by re-generating or re-parsing
//! triples; snapshots also pin workloads byte-for-byte for
//! reproducibility. The file-level API (buffered save/load/inspect)
//! lives in [`crate::snapshot`]; this module owns the wire format.
//!
//! Two format versions exist, distinguished by the magic:
//!
//! **CSG1** (legacy, read-only): one unframed stream —
//!
//! ```text
//! magic "CSG1" | u32 #strings | (u32 len, bytes)*      — interner
//! u32 #nodes | per node: u32 label, u16 #types (u32)*,
//!                        u16 #props (u32 key, value)*
//! u32 #edges | per edge: u32 src, u32 dst, u32 label,
//!                        u16 #props (u32 key, value)*
//! value := u8 tag (0 str, 1 int, 2 float) + payload
//! ```
//!
//! **CSG2** (current, written by [`encode_graph`]): the same payload
//! encodings, framed into self-describing sections so corruption is
//! detected before any payload is interpreted and readers can skip
//! sections they do not know:
//!
//! ```text
//! magic "CSG2" | u32 #sections
//! per section: u32 id | u64 payload_len | u32 crc32(payload) | payload
//! ```
//!
//! Sections: interner (1), nodes (2), edges (3) — required — and the
//! optional statistics sidecar (4) serialising the graph's
//! [`Cardinalities`] so a loaded graph starts with a *warm* planner:
//! [`decode_graph`] seeds [`crate::Graph::cardinalities`]'s `OnceLock`
//! from the decoded section, skipping the first-query full-scan stats
//! pass. Unknown section ids are checksummed and skipped, so future
//! sections stay forward-compatible.

use crate::builder::GraphBuilder;
use crate::ids::LabelId;
use crate::model::Graph;
use crate::stats::{Cardinalities, LabelCard};
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC_V1: &[u8; 4] = b"CSG1";
const MAGIC_V2: &[u8; 4] = b"CSG2";

/// Section id of the string interner (required).
pub const SECTION_INTERNER: u32 = 1;
/// Section id of the node table (required).
pub const SECTION_NODES: u32 = 2;
/// Section id of the edge table (required).
pub const SECTION_EDGES: u32 = 3;
/// Section id of the optional [`Cardinalities`] statistics sidecar.
pub const SECTION_STATS: u32 = 4;

/// Human-readable name of a section id (`"unknown"` for future ids).
pub fn section_name(id: u32) -> &'static str {
    match id {
        SECTION_INTERNER => "interner",
        SECTION_NODES => "nodes",
        SECTION_EDGES => "edges",
        SECTION_STATS => "stats",
        _ => "unknown",
    }
}

/// Errors decoding a snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic header matched neither CSG1 nor CSG2.
    BadMagic,
    /// The buffer ended prematurely or a length was inconsistent.
    Truncated,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An id referenced out of range.
    BadReference,
    /// A section's payload did not match its stored checksum.
    BadChecksum {
        /// The corrupt section's id.
        section: u32,
    },
    /// A required section is absent.
    MissingSection {
        /// The missing section's id.
        section: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a CSG1/CSG2 snapshot"),
            DecodeError::Truncated => write!(f, "snapshot truncated"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 in snapshot string"),
            DecodeError::BadReference => write!(f, "snapshot references unknown id"),
            DecodeError::BadChecksum { section } => write!(
                f,
                "checksum mismatch in {} section (corrupt snapshot)",
                section_name(*section)
            ),
            DecodeError::MissingSection { section } => {
                write!(f, "snapshot misses {} section", section_name(*section))
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven; the table is built at compile time.

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the per-section checksum of CSG2.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Payload encoders (shared between CSG1 and CSG2 — the framing differs,
// the payload encodings do not).

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Str(s) => {
            buf.put_u8(0);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        Value::Float(x) => {
            buf.put_u8(2);
            buf.put_f64_le(*x);
        }
    }
}

fn encode_interner_payload(g: &Graph) -> Bytes {
    let interner = g.interner();
    let mut buf = BytesMut::with_capacity(8 + interner.len() * 12);
    buf.put_u32_le(interner.len() as u32);
    for (_, s) in interner.iter() {
        buf.put_u32_le(s.len() as u32);
        buf.put_slice(s.as_bytes());
    }
    buf.freeze()
}

fn encode_nodes_payload(g: &Graph) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + g.node_count() * 12);
    buf.put_u32_le(g.node_count() as u32);
    for n in g.node_ids() {
        let nd = g.node(n);
        buf.put_u32_le(nd.label.0);
        buf.put_u16_le(nd.types.len() as u16);
        for t in nd.types.iter() {
            buf.put_u32_le(t.0);
        }
        buf.put_u16_le(nd.props.len() as u16);
        for (k, v) in nd.props.iter() {
            buf.put_u32_le(k.0);
            put_value(&mut buf, v);
        }
    }
    buf.freeze()
}

fn encode_edges_payload(g: &Graph) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + g.edge_count() * 16);
    buf.put_u32_le(g.edge_count() as u32);
    for e in g.edge_ids() {
        let ed = g.edge(e);
        buf.put_u32_le(ed.src.0);
        buf.put_u32_le(ed.dst.0);
        buf.put_u32_le(ed.label.0);
        buf.put_u16_le(ed.props.len() as u16);
        for (k, v) in ed.props.iter() {
            buf.put_u32_le(k.0);
            put_value(&mut buf, v);
        }
    }
    buf.freeze()
}

/// Serialises a [`Cardinalities`] snapshot. Map entries are sorted by
/// label id so encoding is deterministic (snapshots diff byte-for-byte).
fn encode_stats_payload(c: &Cardinalities) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + c.edge_labels.len() * 28);
    buf.put_u64_le(c.nodes as u64);
    buf.put_u64_le(c.edges as u64);

    let mut edge_labels: Vec<(&LabelId, &LabelCard)> = c.edge_labels.iter().collect();
    edge_labels.sort_by_key(|(l, _)| l.0);
    buf.put_u32_le(edge_labels.len() as u32);
    for (l, card) in edge_labels {
        buf.put_u32_le(l.0);
        buf.put_u64_le(card.edges as u64);
        buf.put_u64_le(card.distinct_src as u64);
        buf.put_u64_le(card.distinct_dst as u64);
    }

    for map in [&c.node_labels, &c.node_types] {
        let mut entries: Vec<(&LabelId, &usize)> = map.iter().collect();
        entries.sort_by_key(|(l, _)| l.0);
        buf.put_u32_le(entries.len() as u32);
        for (l, n) in entries {
            buf.put_u32_le(l.0);
            buf.put_u64_le(*n as u64);
        }
    }
    buf.freeze()
}

/// Options controlling [`encode_graph_with`].
#[derive(Debug, Clone)]
pub struct EncodeOptions {
    /// Embed the statistics sidecar section (computing the graph's
    /// [`Cardinalities`] if they are not cached yet) so the planner of
    /// a loaded graph starts warm. Default `true`.
    pub include_stats: bool,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            include_stats: true,
        }
    }
}

/// Encodes the CSG2 sections of `g` in file order, without framing —
/// the building block [`crate::snapshot::save_to`] streams through a
/// buffered writer instead of concatenating a whole-file buffer.
pub fn encode_sections(g: &Graph, opts: &EncodeOptions) -> Vec<(u32, Bytes)> {
    let mut sections = vec![
        (SECTION_INTERNER, encode_interner_payload(g)),
        (SECTION_NODES, encode_nodes_payload(g)),
        (SECTION_EDGES, encode_edges_payload(g)),
    ];
    if opts.include_stats {
        sections.push((SECTION_STATS, encode_stats_payload(g.cardinalities())));
    }
    sections
}

/// The 16-byte CSG2 section header (`id | payload_len | crc32`).
pub fn section_header(id: u32, payload: &[u8]) -> [u8; 16] {
    let mut h = [0u8; 16];
    h[..4].copy_from_slice(&id.to_le_bytes());
    h[4..12].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    h[12..].copy_from_slice(&crc32(payload).to_le_bytes());
    h
}

/// Encodes a graph into the current (CSG2) snapshot format, statistics
/// sidecar included.
pub fn encode_graph(g: &Graph) -> Bytes {
    encode_graph_with(g, &EncodeOptions::default())
}

/// Encodes a graph into the CSG2 format with explicit options.
pub fn encode_graph_with(g: &Graph, opts: &EncodeOptions) -> Bytes {
    let sections = encode_sections(g, opts);
    let total: usize = sections.iter().map(|(_, p)| 16 + p.len()).sum();
    let mut buf = BytesMut::with_capacity(8 + total);
    buf.put_slice(MAGIC_V2);
    buf.put_u32_le(sections.len() as u32);
    for (id, payload) in &sections {
        buf.put_slice(&section_header(*id, payload));
        buf.put_slice(payload);
    }
    buf.freeze()
}

/// Encodes a graph into the legacy CSG1 format (no sections, no
/// checksums, no statistics). Kept for forward-compatibility tests and
/// interop with CSG1-only readers.
pub fn encode_graph_v1(g: &Graph) -> Bytes {
    let interner = encode_interner_payload(g);
    let nodes = encode_nodes_payload(g);
    let edges = encode_edges_payload(g);
    let mut buf = BytesMut::with_capacity(4 + interner.len() + nodes.len() + edges.len());
    buf.put_slice(MAGIC_V1);
    buf.put_slice(&interner);
    buf.put_slice(&nodes);
    buf.put_slice(&edges);
    buf.freeze()
}

// ---------------------------------------------------------------------------
// Decoding.

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let s = std::str::from_utf8(&self.buf[..len])
            .map_err(|_| DecodeError::BadUtf8)?
            .to_string();
        self.buf.advance(len);
        Ok(s)
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        match self.u8()? {
            0 => Ok(Value::str(self.string()?)),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Float(self.f64()?)),
            _ => Err(DecodeError::Truncated),
        }
    }
}

fn decode_strings(r: &mut Reader<'_>) -> Result<Vec<String>, DecodeError> {
    let n_strings = r.u32()? as usize;
    // Guard against absurd preallocation from corrupt counts: each
    // string costs at least its 4-byte length prefix.
    if n_strings > r.buf.remaining() / 4 + 1 {
        return Err(DecodeError::Truncated);
    }
    let mut strings = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        strings.push(r.string()?);
    }
    Ok(strings)
}

/// Pre-interns the wire string table so the decoded graph's [`LabelId`]s
/// equal the wire ids exactly. Everything keyed by id (the statistics
/// sidecar, byte-for-byte re-encoding) depends on this; a table whose
/// entries don't round-trip to their own index (duplicate strings, or a
/// first entry that is not ε) cannot have come from our encoder and is
/// rejected.
fn preintern(b: &mut GraphBuilder, strings: &[String]) -> Result<(), DecodeError> {
    for (i, s) in strings.iter().enumerate() {
        if b.intern(s) != LabelId::new(i) {
            return Err(DecodeError::BadReference);
        }
    }
    Ok(())
}

/// Resolves a wire string id against the decoded string table.
fn resolve(strings: &[String], id: u32) -> Result<&str, DecodeError> {
    strings
        .get(id as usize)
        .map(String::as_str)
        .ok_or(DecodeError::BadReference)
}

fn decode_nodes(
    r: &mut Reader<'_>,
    b: &mut GraphBuilder,
    strings: &[String],
) -> Result<usize, DecodeError> {
    let resolve = |id: u32| resolve(strings, id);
    let n_nodes = r.u32()? as usize;
    if n_nodes > r.buf.remaining() / 4 + 1 {
        return Err(DecodeError::Truncated);
    }
    b.reserve(n_nodes, 0);
    for _ in 0..n_nodes {
        let label = r.u32()?;
        let n = b.add_node(resolve(label)?);
        let n_types = r.u16()?;
        for _ in 0..n_types {
            let t = r.u32()?;
            b.add_type(n, resolve(t)?);
        }
        let n_props = r.u16()?;
        for _ in 0..n_props {
            let k = r.u32()?;
            let key = resolve(k)?.to_string();
            let v = r.value()?;
            b.set_node_prop(n, &key, v);
        }
    }
    Ok(n_nodes)
}

fn decode_edges(
    r: &mut Reader<'_>,
    b: &mut GraphBuilder,
    strings: &[String],
    n_nodes: usize,
) -> Result<(), DecodeError> {
    let resolve = |id: u32| resolve(strings, id);
    let n_edges = r.u32()? as usize;
    if n_edges > r.buf.remaining() / 12 + 1 {
        return Err(DecodeError::Truncated);
    }
    b.reserve(0, n_edges);
    for _ in 0..n_edges {
        let src = r.u32()?;
        let dst = r.u32()?;
        let label = r.u32()?;
        if src as usize >= n_nodes || dst as usize >= n_nodes {
            return Err(DecodeError::BadReference);
        }
        let e = b.add_edge(
            crate::ids::NodeId(src),
            resolve(label)?,
            crate::ids::NodeId(dst),
        );
        let n_props = r.u16()?;
        for _ in 0..n_props {
            let k = r.u32()?;
            let key = resolve(k)?.to_string();
            let v = r.value()?;
            b.set_edge_prop(e, &key, v);
        }
    }
    Ok(())
}

fn decode_stats(
    r: &mut Reader<'_>,
    n_strings: usize,
    n_nodes: usize,
    n_edges: usize,
) -> Result<Cardinalities, DecodeError> {
    let nodes = r.u64()? as usize;
    let edges = r.u64()? as usize;
    // Statistics describing a different graph than the one in the
    // nodes/edges sections are corruption the checksum cannot see
    // (e.g. a stats section spliced in from another snapshot).
    if nodes != n_nodes || edges != n_edges {
        return Err(DecodeError::BadReference);
    }
    let mut c = Cardinalities {
        nodes,
        edges,
        ..Cardinalities::default()
    };
    let check = |l: u32| -> Result<LabelId, DecodeError> {
        if (l as usize) < n_strings {
            Ok(LabelId(l))
        } else {
            Err(DecodeError::BadReference)
        }
    };
    let n_edge_labels = r.u32()? as usize;
    if n_edge_labels > r.buf.remaining() / 28 + 1 {
        return Err(DecodeError::Truncated);
    }
    for _ in 0..n_edge_labels {
        let l = check(r.u32()?)?;
        let card = LabelCard {
            edges: r.u64()? as usize,
            distinct_src: r.u64()? as usize,
            distinct_dst: r.u64()? as usize,
        };
        c.edge_labels.insert(l, card);
    }
    for map in [&mut c.node_labels, &mut c.node_types] {
        let n = r.u32()? as usize;
        if n > r.buf.remaining() / 12 + 1 {
            return Err(DecodeError::Truncated);
        }
        for _ in 0..n {
            let l = check(r.u32()?)?;
            map.insert(l, r.u64()? as usize);
        }
    }
    Ok(c)
}

/// One checksum-verified CSG2 section, borrowed from the input buffer.
#[derive(Debug, Clone, Copy)]
pub struct RawSection<'a> {
    /// The section id (see the `SECTION_*` constants).
    pub id: u32,
    /// The section payload (checksum already verified).
    pub payload: &'a [u8],
}

/// Walks the CSG2 section table, verifying every checksum. Errors on
/// anything other than a well-formed CSG2 buffer; CSG1 input is
/// [`DecodeError::BadMagic`] here (use [`decode_graph`] to accept both).
pub fn read_sections(bytes: &[u8]) -> Result<Vec<RawSection<'_>>, DecodeError> {
    let mut r = Reader { buf: bytes };
    r.need(4)?;
    if &r.buf[..4] != MAGIC_V2 {
        return Err(DecodeError::BadMagic);
    }
    r.buf.advance(4);
    let n_sections = r.u32()? as usize;
    // Each section costs at least its 16-byte header.
    if n_sections > r.buf.remaining() / 16 + 1 {
        return Err(DecodeError::Truncated);
    }
    let mut sections = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        let id = r.u32()?;
        let len = r.u64()?;
        let stored_crc = r.u32()?;
        let len = usize::try_from(len).map_err(|_| DecodeError::Truncated)?;
        r.need(len)?;
        let payload = &r.buf[..len];
        if crc32(payload) != stored_crc {
            return Err(DecodeError::BadChecksum { section: id });
        }
        r.buf.advance(len);
        sections.push(RawSection { id, payload });
    }
    Ok(sections)
}

fn section<'a>(sections: &[RawSection<'a>], id: u32) -> Result<&'a [u8], DecodeError> {
    sections
        .iter()
        .find(|s| s.id == id)
        .map(|s| s.payload)
        .ok_or(DecodeError::MissingSection { section: id })
}

fn decode_graph_v2(bytes: &[u8]) -> Result<Graph, DecodeError> {
    let sections = read_sections(bytes)?;

    let mut r = Reader {
        buf: section(&sections, SECTION_INTERNER)?,
    };
    let strings = decode_strings(&mut r)?;

    let mut b = GraphBuilder::with_capacity(0, 0);
    preintern(&mut b, &strings)?;
    let mut r = Reader {
        buf: section(&sections, SECTION_NODES)?,
    };
    let n_nodes = decode_nodes(&mut r, &mut b, &strings)?;

    let mut r = Reader {
        buf: section(&sections, SECTION_EDGES)?,
    };
    decode_edges(&mut r, &mut b, &strings, n_nodes)?;
    let n_edges = b.edge_count();

    // The optional sidecar: decode *before* freezing so a corrupt
    // stats section fails the whole load rather than silently cooling
    // the planner.
    let stats = match sections.iter().find(|s| s.id == SECTION_STATS) {
        Some(s) => {
            let mut r = Reader { buf: s.payload };
            Some(decode_stats(&mut r, strings.len(), n_nodes, n_edges)?)
        }
        None => None,
    };

    let g = b.freeze();
    if let Some(c) = stats {
        g.warm_cardinalities(c);
    }
    Ok(g)
}

fn decode_graph_v1(bytes: &[u8]) -> Result<Graph, DecodeError> {
    let mut r = Reader { buf: &bytes[4..] };
    let strings = decode_strings(&mut r)?;
    let mut b = GraphBuilder::with_capacity(0, 0);
    preintern(&mut b, &strings)?;
    let n_nodes = decode_nodes(&mut r, &mut b, &strings)?;
    decode_edges(&mut r, &mut b, &strings, n_nodes)?;
    Ok(b.freeze())
}

/// Decodes a snapshot produced by [`encode_graph`] (CSG2) or by the
/// legacy CSG1 encoder. A CSG2 statistics section, when present, seeds
/// the graph's cached [`Cardinalities`] so
/// [`Graph::cardinalities`](crate::Graph::cardinalities) returns
/// without a stats pass.
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    match &bytes[..4] {
        m if m == MAGIC_V2 => decode_graph_v2(bytes),
        m if m == MAGIC_V1 => decode_graph_v1(bytes),
        _ => Err(DecodeError::BadMagic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;
    use crate::generate::{scale_free, ScaleFreeParams};

    fn assert_same_graph(g: &Graph, g2: &Graph) {
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for n in g.node_ids() {
            assert_eq!(g2.node_label(n), g.node_label(n));
            assert_eq!(
                g2.node_types(n).collect::<Vec<_>>(),
                g.node_types(n).collect::<Vec<_>>()
            );
        }
        for e in g.edge_ids() {
            assert_eq!(g2.describe_edge(e), g.describe_edge(e));
        }
    }

    #[test]
    fn roundtrip_figure1() {
        let g = figure1();
        let bytes = encode_graph(&g);
        let g2 = decode_graph(&bytes).unwrap();
        assert_same_graph(&g, &g2);
    }

    #[test]
    fn roundtrip_with_properties() {
        let mut b = GraphBuilder::new();
        let a = b.add_typed_node("a", &["t"]);
        let c = b.add_node("c");
        let e = b.add_edge(a, "r", c);
        b.set_node_prop(a, "age", 42i64);
        b.set_node_prop(a, "name", "alpha");
        b.set_edge_prop(e, "w", 2.5f64);
        let g = b.freeze();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.node_prop(a, "age"), Some(&Value::Int(42)));
        assert_eq!(g2.node_prop(a, "name"), Some(&Value::str("alpha")));
        assert_eq!(g2.edge_prop(e, "w"), Some(&Value::Float(2.5)));
    }

    #[test]
    fn roundtrip_generated_graph() {
        let g = scale_free(&ScaleFreeParams {
            nodes: 300,
            edges_per_node: 3,
            labels: 8,
            types: 4,
            seed: 3,
        });
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        let l = g.label_id("rel0").unwrap();
        let l2 = g2.label_id("rel0").unwrap();
        assert_eq!(g.edges_with_label(l).len(), g2.edges_with_label(l2).len());
    }

    #[test]
    fn stats_sidecar_loads_warm_and_equal() {
        let g = figure1();
        let computed = g.cardinalities().clone(); // force + copy
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        let warm = g2
            .cardinalities_if_computed()
            .expect("stats section must seed the OnceLock before first use");
        assert_eq!(*warm, computed);
    }

    #[test]
    fn stats_sidecar_is_optional() {
        let g = figure1();
        let bytes = encode_graph_with(
            &g,
            &EncodeOptions {
                include_stats: false,
            },
        );
        let g2 = decode_graph(&bytes).unwrap();
        assert!(g2.cardinalities_if_computed().is_none());
        // Cold path still works.
        assert_eq!(g2.cardinalities().edges, g.edge_count());
    }

    #[test]
    fn csg1_still_readable() {
        let g = figure1();
        let v1 = encode_graph_v1(&g);
        assert_eq!(&v1[..4], b"CSG1");
        let g2 = decode_graph(&v1).unwrap();
        assert_same_graph(&g, &g2);
        assert!(g2.cardinalities_if_computed().is_none());
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode_graph(b"nope").unwrap_err(), DecodeError::BadMagic);
        assert_eq!(decode_graph(b"CS").unwrap_err(), DecodeError::Truncated);
        let g = figure1();
        let bytes = encode_graph(&g);
        let truncated = &bytes[..bytes.len() / 2];
        assert!(decode_graph(truncated).is_err());
    }

    #[test]
    fn bit_flip_is_checksum_error() {
        let g = figure1();
        let mut bytes = encode_graph(&g).to_vec();
        // Flip a byte well inside the first section's payload.
        let target = bytes.len() / 2;
        bytes[target] ^= 0xA5;
        let err = decode_graph(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::BadChecksum { .. } | DecodeError::Truncated
            ),
            "bit flip must be caught by framing, got {err:?}"
        );
    }

    #[test]
    fn missing_required_section() {
        let g = figure1();
        // Re-frame with the edges section dropped.
        let sections = encode_sections(&g, &EncodeOptions::default());
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CSG2");
        let kept: Vec<_> = sections
            .iter()
            .filter(|(id, _)| *id != SECTION_EDGES)
            .collect();
        buf.extend_from_slice(&(kept.len() as u32).to_le_bytes());
        for (id, payload) in kept {
            buf.extend_from_slice(&section_header(*id, payload));
            buf.extend_from_slice(payload);
        }
        assert_eq!(
            decode_graph(&buf).unwrap_err(),
            DecodeError::MissingSection {
                section: SECTION_EDGES
            }
        );
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let g = figure1();
        let mut sections = encode_sections(&g, &EncodeOptions::default());
        sections.push((999, Bytes::from_vec(b"future data".to_vec())));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CSG2");
        buf.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        for (id, payload) in &sections {
            buf.extend_from_slice(&section_header(*id, payload));
            buf.extend_from_slice(payload);
        }
        let g2 = decode_graph(&buf).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = GraphBuilder::new().freeze();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn encoding_is_deterministic() {
        // HashMap iteration must not leak into the bytes (snapshots are
        // meant to pin workloads byte-for-byte).
        let g = scale_free(&ScaleFreeParams {
            nodes: 120,
            edges_per_node: 3,
            labels: 9,
            types: 5,
            seed: 11,
        });
        let a = encode_graph(&g);
        let g2 = decode_graph(&a).unwrap();
        let b = encode_graph(&g2);
        assert_eq!(a, b);
    }

    #[test]
    fn crc32_known_vector() {
        // The IEEE CRC32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
