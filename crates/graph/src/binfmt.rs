//! A compact binary snapshot format for graphs, built on `bytes`.
//!
//! Benchmarks over generated multi-million-edge graphs re-load far
//! faster from a binary snapshot than by re-generating or re-parsing
//! triples; snapshots also pin workloads byte-for-byte for
//! reproducibility (EXPERIMENTS.md).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "CSG1" | u32 #strings | (u32 len, bytes)*      — interner
//! u32 #nodes | per node: u32 label, u16 #types (u32)*,
//!                        u16 #props (u32 key, value)*
//! u32 #edges | per edge: u32 src, u32 dst, u32 label,
//!                        u16 #props (u32 key, value)*
//! value := u8 tag (0 str, 1 int, 2 float) + payload
//! ```

use crate::builder::GraphBuilder;
use crate::model::Graph;
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"CSG1";

/// Errors decoding a snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic header did not match.
    BadMagic,
    /// The buffer ended prematurely or a length was inconsistent.
    Truncated,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An id referenced out of range.
    BadReference,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a CSG1 snapshot"),
            DecodeError::Truncated => write!(f, "snapshot truncated"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 in snapshot string"),
            DecodeError::BadReference => write!(f, "snapshot references unknown id"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Str(s) => {
            buf.put_u8(0);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        Value::Float(x) => {
            buf.put_u8(2);
            buf.put_f64_le(*x);
        }
    }
}

/// Encodes a graph into the snapshot format.
pub fn encode_graph(g: &Graph) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + g.node_count() * 16 + g.edge_count() * 16);
    buf.put_slice(MAGIC);

    let interner = g.interner();
    buf.put_u32_le(interner.len() as u32);
    for (_, s) in interner.iter() {
        buf.put_u32_le(s.len() as u32);
        buf.put_slice(s.as_bytes());
    }

    buf.put_u32_le(g.node_count() as u32);
    for n in g.node_ids() {
        let nd = g.node(n);
        buf.put_u32_le(nd.label.0);
        buf.put_u16_le(nd.types.len() as u16);
        for t in nd.types.iter() {
            buf.put_u32_le(t.0);
        }
        buf.put_u16_le(nd.props.len() as u16);
        for (k, v) in nd.props.iter() {
            buf.put_u32_le(k.0);
            put_value(&mut buf, v);
        }
    }

    buf.put_u32_le(g.edge_count() as u32);
    for e in g.edge_ids() {
        let ed = g.edge(e);
        buf.put_u32_le(ed.src.0);
        buf.put_u32_le(ed.dst.0);
        buf.put_u32_le(ed.label.0);
        buf.put_u16_le(ed.props.len() as u16);
        for (k, v) in ed.props.iter() {
            buf.put_u32_le(k.0);
            put_value(&mut buf, v);
        }
    }
    buf.freeze()
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let s = std::str::from_utf8(&self.buf[..len])
            .map_err(|_| DecodeError::BadUtf8)?
            .to_string();
        self.buf.advance(len);
        Ok(s)
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        match self.u8()? {
            0 => Ok(Value::str(self.string()?)),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Float(self.f64()?)),
            _ => Err(DecodeError::Truncated),
        }
    }
}

/// Decodes a snapshot produced by [`encode_graph`].
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, DecodeError> {
    let mut r = Reader { buf: bytes };
    r.need(4)?;
    if &r.buf[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    r.buf.advance(4);

    let n_strings = r.u32()? as usize;
    let mut strings = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        strings.push(r.string()?);
    }
    let resolve = |id: u32| -> Result<&str, DecodeError> {
        strings
            .get(id as usize)
            .map(String::as_str)
            .ok_or(DecodeError::BadReference)
    };

    let n_nodes = r.u32()? as usize;
    let mut b = GraphBuilder::with_capacity(n_nodes, 0);
    for _ in 0..n_nodes {
        let label = r.u32()?;
        let n = b.add_node(resolve(label)?);
        let n_types = r.u16()?;
        for _ in 0..n_types {
            let t = r.u32()?;
            b.add_type(n, resolve(t)?);
        }
        let n_props = r.u16()?;
        for _ in 0..n_props {
            let k = r.u32()?;
            let key = resolve(k)?.to_string();
            let v = r.value()?;
            b.set_node_prop(n, &key, v);
        }
    }

    let n_edges = r.u32()? as usize;
    for _ in 0..n_edges {
        let src = r.u32()?;
        let dst = r.u32()?;
        let label = r.u32()?;
        if src as usize >= n_nodes || dst as usize >= n_nodes {
            return Err(DecodeError::BadReference);
        }
        let e = b.add_edge(
            crate::ids::NodeId(src),
            resolve(label)?,
            crate::ids::NodeId(dst),
        );
        let n_props = r.u16()?;
        for _ in 0..n_props {
            let k = r.u32()?;
            let key = resolve(k)?.to_string();
            let v = r.value()?;
            b.set_edge_prop(e, &key, v);
        }
    }
    Ok(b.freeze())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;
    use crate::generate::{scale_free, ScaleFreeParams};

    #[test]
    fn roundtrip_figure1() {
        let g = figure1();
        let bytes = encode_graph(&g);
        let g2 = decode_graph(&bytes).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for n in g.node_ids() {
            assert_eq!(g2.node_label(n), g.node_label(n));
            assert_eq!(
                g2.node_types(n).collect::<Vec<_>>(),
                g.node_types(n).collect::<Vec<_>>()
            );
        }
        for e in g.edge_ids() {
            assert_eq!(g2.describe_edge(e), g.describe_edge(e));
        }
    }

    #[test]
    fn roundtrip_with_properties() {
        let mut b = GraphBuilder::new();
        let a = b.add_typed_node("a", &["t"]);
        let c = b.add_node("c");
        let e = b.add_edge(a, "r", c);
        b.set_node_prop(a, "age", 42i64);
        b.set_node_prop(a, "name", "alpha");
        b.set_edge_prop(e, "w", 2.5f64);
        let g = b.freeze();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.node_prop(a, "age"), Some(&Value::Int(42)));
        assert_eq!(g2.node_prop(a, "name"), Some(&Value::str("alpha")));
        assert_eq!(g2.edge_prop(e, "w"), Some(&Value::Float(2.5)));
    }

    #[test]
    fn roundtrip_generated_graph() {
        let g = scale_free(&ScaleFreeParams {
            nodes: 300,
            edges_per_node: 3,
            labels: 8,
            types: 4,
            seed: 3,
        });
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        let l = g.label_id("rel0").unwrap();
        let l2 = g2.label_id("rel0").unwrap();
        assert_eq!(g.edges_with_label(l).len(), g2.edges_with_label(l2).len());
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode_graph(b"nope").unwrap_err(), DecodeError::BadMagic);
        assert_eq!(decode_graph(b"CS").unwrap_err(), DecodeError::Truncated);
        let g = figure1();
        let bytes = encode_graph(&g);
        let truncated = &bytes[..bytes.len() / 2];
        assert!(decode_graph(truncated).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = GraphBuilder::new().freeze();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }
}
