//! Compact binary snapshot formats for graphs, built on `bytes`.
//!
//! Benchmarks over generated multi-million-edge graphs re-load far
//! faster from a binary snapshot than by re-generating or re-parsing
//! triples; snapshots also pin workloads byte-for-byte for
//! reproducibility. The file-level API (buffered save/load/inspect)
//! lives in [`crate::snapshot`]; this module owns the wire format.
//!
//! Two format versions exist, distinguished by the magic:
//!
//! **CSG1** (legacy, read-only): one unframed stream —
//!
//! ```text
//! magic "CSG1" | u32 #strings | (u32 len, bytes)*      — interner
//! u32 #nodes | per node: u32 label, u16 #types (u32)*,
//!                        u16 #props (u32 key, value)*
//! u32 #edges | per edge: u32 src, u32 dst, u32 label,
//!                        u16 #props (u32 key, value)*
//! value := u8 tag (0 str, 1 int, 2 float) + payload
//! ```
//!
//! **CSG2** (current, written by [`encode_graph`]): the same payload
//! encodings, framed into self-describing sections so corruption is
//! detected before any payload is interpreted and readers can skip
//! sections they do not know:
//!
//! ```text
//! magic "CSG2" | u32 #sections
//! per section: u32 id | u64 payload_len | u32 crc32(payload) | payload
//! ```
//!
//! Sections: the CSR columns (5) and the interner (1) for the current
//! layout, or interner (1) / nodes (2) / edges (3) for the legacy
//! record layout ([`EncodeOptions::legacy_layout`]); both may carry
//! the sparse property side tables (6) and the optional statistics
//! sidecar (4) serialising the graph's [`Cardinalities`] so a loaded
//! graph starts with a *warm* planner: [`decode_graph`] seeds
//! [`crate::Graph::cardinalities`]'s `OnceLock` from the decoded
//! section, skipping the first-query full-scan stats pass. Unknown
//! section ids are checksummed and skipped, so future sections stay
//! forward-compatible.
//!
//! The CSR section (id 5) is written **first** so its payload starts
//! at file offset 24 — 8-byte aligned — and is the aligned
//! little-endian serialisation of exactly the in-memory columns of
//! [`crate::Graph`] (see `model`'s module docs): a 32-byte header of
//! eight `u32` words (`layout version, n, m, t, l, 0, 0, 0`) followed
//! by the fourteen arrays back to back. Every array starts at a
//! 4-byte-aligned offset, which is what lets
//! [`crate::snapshot::load_from`] back the columns directly by a
//! memory-mapped file without copying.

use crate::builder::GraphBuilder;
use crate::ids::LabelId;
use crate::interner::Interner;
use crate::model::{Graph, GraphParts, PropTable};
use crate::stats::{Cardinalities, LabelCard};
use crate::storage::{MmapFile, Storage};
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::Arc;

const MAGIC_V1: &[u8; 4] = b"CSG1";
const MAGIC_V2: &[u8; 4] = b"CSG2";

/// Section id of the string interner (required).
pub const SECTION_INTERNER: u32 = 1;
/// Section id of the node table (required).
pub const SECTION_NODES: u32 = 2;
/// Section id of the edge table (required).
pub const SECTION_EDGES: u32 = 3;
/// Section id of the optional [`Cardinalities`] statistics sidecar.
pub const SECTION_STATS: u32 = 4;
/// Section id of the label-partitioned CSR columns (current layout).
pub const SECTION_CSR_GRAPH: u32 = 5;
/// Section id of the sparse node/edge property side tables.
pub const SECTION_PROPS: u32 = 6;

/// The CSR section's layout version this reader writes and accepts.
pub const CSR_LAYOUT_VERSION: u32 = 1;

/// Human-readable name of a section id (`"unknown"` for future ids).
pub fn section_name(id: u32) -> &'static str {
    match id {
        SECTION_INTERNER => "interner",
        SECTION_NODES => "nodes",
        SECTION_EDGES => "edges",
        SECTION_STATS => "stats",
        SECTION_CSR_GRAPH => "csr",
        SECTION_PROPS => "props",
        _ => "unknown",
    }
}

/// Errors decoding a snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic header matched neither CSG1 nor CSG2.
    BadMagic,
    /// The buffer ended prematurely or a length was inconsistent.
    Truncated,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An id referenced out of range.
    BadReference,
    /// A section's payload did not match its stored checksum.
    BadChecksum {
        /// The corrupt section's id.
        section: u32,
    },
    /// A required section is absent.
    MissingSection {
        /// The missing section's id.
        section: u32,
    },
    /// The CSR section declares a layout version this reader does not
    /// understand.
    UnsupportedLayout {
        /// The declared layout version.
        version: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a CSG1/CSG2 snapshot"),
            DecodeError::Truncated => write!(f, "snapshot truncated"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 in snapshot string"),
            DecodeError::BadReference => write!(f, "snapshot references unknown id"),
            DecodeError::BadChecksum { section } => write!(
                f,
                "checksum mismatch in {} section (corrupt snapshot)",
                section_name(*section)
            ),
            DecodeError::MissingSection { section } => {
                write!(f, "snapshot misses {} section", section_name(*section))
            }
            DecodeError::UnsupportedLayout { version } => {
                write!(f, "unsupported CSR layout version {version}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven; the table is built at compile time.

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0u32;
    while i < 256 {
        let mut crc = i;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i as usize] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the per-section checksum of CSG2.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Wire-width count narrowing. Every count the format stores narrower
// than the host's `usize` goes through one of these, so an oversized
// graph fails loudly instead of truncating into a silently corrupt
// snapshot (cs-lint L006 bans plain `as` narrowing in this file).

/// Narrows a count to the format's `u32` wire width.
///
/// # Panics
/// Panics when `n` does not fit — encoding must never truncate.
fn wire_u32(n: usize, what: &str) -> u32 {
    n.try_into()
        // cs-lint: allow(L002): documented `# Panics` contract — a
        // count beyond the wire width must fail loudly, not truncate.
        .unwrap_or_else(|_| panic!("{what} count {n} exceeds the CSG u32 wire limit"))
}

/// Narrows a count to the format's `u16` wire width.
///
/// # Panics
/// Panics when `n` does not fit — encoding must never truncate.
fn wire_u16(n: usize, what: &str) -> u16 {
    n.try_into()
        // cs-lint: allow(L002): documented `# Panics` contract — a
        // count beyond the wire width must fail loudly, not truncate.
        .unwrap_or_else(|_| panic!("{what} count {n} exceeds the CSG u16 wire limit"))
}

// ---------------------------------------------------------------------------
// Payload encoders (shared between CSG1 and CSG2 — the framing differs,
// the payload encodings do not).

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Str(s) => {
            buf.put_u8(0);
            buf.put_u32_le(wire_u32(s.len(), "string byte"));
            buf.put_slice(s.as_bytes());
        }
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        Value::Float(x) => {
            buf.put_u8(2);
            buf.put_f64_le(*x);
        }
    }
}

fn encode_interner_payload(g: &Graph) -> Bytes {
    let interner = g.interner();
    let mut buf = BytesMut::with_capacity(8 + interner.len() * 12);
    buf.put_u32_le(wire_u32(interner.len(), "interned string"));
    for (_, s) in interner.iter() {
        buf.put_u32_le(wire_u32(s.len(), "interned string byte"));
        buf.put_slice(s.as_bytes());
    }
    buf.freeze()
}

fn encode_nodes_payload(g: &Graph) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + g.node_count() * 12);
    buf.put_u32_le(wire_u32(g.node_count(), "node"));
    for n in g.node_ids() {
        let nd = g.node(n);
        buf.put_u32_le(nd.label.0);
        buf.put_u16_le(wire_u16(nd.types.len(), "node type"));
        for t in nd.types.iter() {
            buf.put_u32_le(t.0);
        }
        buf.put_u16_le(wire_u16(nd.props.len(), "node property"));
        for (k, v) in nd.props.iter() {
            buf.put_u32_le(k.0);
            put_value(&mut buf, v);
        }
    }
    buf.freeze()
}

fn encode_edges_payload(g: &Graph) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + g.edge_count() * 16);
    buf.put_u32_le(wire_u32(g.edge_count(), "edge"));
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let props = g.edge_props(e);
        buf.put_u32_le(ed.src.0);
        buf.put_u32_le(ed.dst.0);
        buf.put_u32_le(ed.label.0);
        buf.put_u16_le(wire_u16(props.len(), "edge property"));
        for (k, v) in props.iter() {
            buf.put_u32_le(k.0);
            put_value(&mut buf, v);
        }
    }
    buf.freeze()
}

/// Appends a `u32` column as little-endian words (a straight copy on
/// little-endian hosts).
fn put_u32_slice_le(buf: &mut BytesMut, words: &[u32]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: u32 has no padding; reinterpreting the words as
        // bytes is exactly their little-endian encoding on this host.
        let bytes =
            unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 4) };
        buf.put_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for &w in words {
        buf.put_u32_le(w);
    }
}

/// Serialises the CSR columns: a 32-byte header (`layout version, n,
/// m, t, l, 0, 0, 0`) followed by the fourteen arrays back to back.
fn encode_csr_payload(g: &Graph) -> Bytes {
    let cols = g.csr_columns();
    let words: usize = cols.arrays.iter().map(|a| a.len()).sum();
    let mut buf = BytesMut::with_capacity(32 + words * 4);
    put_u32_slice_le(
        &mut buf,
        &[CSR_LAYOUT_VERSION, cols.n, cols.m, cols.t, cols.l, 0, 0, 0],
    );
    for a in cols.arrays {
        put_u32_slice_le(&mut buf, a);
    }
    buf.freeze()
}

fn put_prop_table(buf: &mut BytesMut, table: &PropTable) {
    buf.put_u32_le(wire_u32(table.len(), "property-table entry"));
    for (id, props) in table.iter() {
        buf.put_u32_le(*id);
        buf.put_u32_le(wire_u32(props.len(), "entry property"));
        for (k, v) in props.iter() {
            buf.put_u32_le(k.0);
            put_value(buf, v);
        }
    }
}

/// Serialises the sparse node/edge property side tables (entries in
/// ascending entity-id order, keys sorted within an entry).
fn encode_props_payload(g: &Graph) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    put_prop_table(&mut buf, g.node_prop_table());
    put_prop_table(&mut buf, g.edge_prop_table());
    buf.freeze()
}

/// Serialises a [`Cardinalities`] snapshot. Map entries are sorted by
/// label id so encoding is deterministic (snapshots diff byte-for-byte).
fn encode_stats_payload(c: &Cardinalities) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + c.edge_labels.len() * 28);
    buf.put_u64_le(c.nodes as u64);
    buf.put_u64_le(c.edges as u64);

    let mut edge_labels: Vec<(&LabelId, &LabelCard)> = c.edge_labels.iter().collect();
    edge_labels.sort_by_key(|(l, _)| l.0);
    buf.put_u32_le(wire_u32(edge_labels.len(), "edge-label statistic"));
    for (l, card) in edge_labels {
        buf.put_u32_le(l.0);
        buf.put_u64_le(card.edges as u64);
        buf.put_u64_le(card.distinct_src as u64);
        buf.put_u64_le(card.distinct_dst as u64);
    }

    for map in [&c.node_labels, &c.node_types] {
        let mut entries: Vec<(&LabelId, &usize)> = map.iter().collect();
        entries.sort_by_key(|(l, _)| l.0);
        buf.put_u32_le(wire_u32(entries.len(), "label statistic"));
        for (l, n) in entries {
            buf.put_u32_le(l.0);
            buf.put_u64_le(*n as u64);
        }
    }
    buf.freeze()
}

/// Options controlling [`encode_graph_with`].
#[derive(Debug, Clone)]
pub struct EncodeOptions {
    /// Embed the statistics sidecar section (computing the graph's
    /// [`Cardinalities`] if they are not cached yet) so the planner of
    /// a loaded graph starts warm. Default `true`.
    pub include_stats: bool,
    /// Write the legacy record layout (interner/nodes/edges sections)
    /// instead of the CSR columns. Legacy files decode everywhere but
    /// cannot be loaded zero-copy. Default `false`.
    pub legacy_layout: bool,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            include_stats: true,
            legacy_layout: false,
        }
    }
}

/// Encodes the CSG2 sections of `g` in file order, without framing —
/// the building block [`crate::snapshot::save_to`] streams through a
/// buffered writer instead of concatenating a whole-file buffer.
///
/// In the default CSR layout the CSR section comes first, so its
/// payload lands at the 8-aligned file offset 24 and mapped loads
/// need no re-alignment.
pub fn encode_sections(g: &Graph, opts: &EncodeOptions) -> Vec<(u32, Bytes)> {
    if g.has_delta() {
        // Snapshots persist dense base columns only. Fold the mutation
        // overlay into fresh columns on a clone — the caller's graph
        // keeps its overlay and current edge ids untouched.
        let mut dense = g.clone();
        dense.compact();
        return encode_sections(&dense, opts);
    }
    let mut sections = if opts.legacy_layout {
        vec![
            (SECTION_INTERNER, encode_interner_payload(g)),
            (SECTION_NODES, encode_nodes_payload(g)),
            (SECTION_EDGES, encode_edges_payload(g)),
        ]
    } else {
        let mut s = vec![
            (SECTION_CSR_GRAPH, encode_csr_payload(g)),
            (SECTION_INTERNER, encode_interner_payload(g)),
        ];
        if !g.node_prop_table().is_empty() || !g.edge_prop_table().is_empty() {
            s.push((SECTION_PROPS, encode_props_payload(g)));
        }
        s
    };
    if opts.include_stats {
        sections.push((SECTION_STATS, encode_stats_payload(g.cardinalities())));
    }
    sections
}

/// The 16-byte CSG2 section header (`id | payload_len | crc32`).
pub fn section_header(id: u32, payload: &[u8]) -> [u8; 16] {
    let mut h = [0u8; 16];
    h[..4].copy_from_slice(&id.to_le_bytes());
    h[4..12].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    h[12..].copy_from_slice(&crc32(payload).to_le_bytes());
    h
}

/// Encodes a graph into the current (CSG2) snapshot format, statistics
/// sidecar included.
pub fn encode_graph(g: &Graph) -> Bytes {
    encode_graph_with(g, &EncodeOptions::default())
}

/// Encodes a graph into the CSG2 format with explicit options.
pub fn encode_graph_with(g: &Graph, opts: &EncodeOptions) -> Bytes {
    let sections = encode_sections(g, opts);
    let total: usize = sections.iter().map(|(_, p)| 16 + p.len()).sum();
    let mut buf = BytesMut::with_capacity(8 + total);
    buf.put_slice(MAGIC_V2);
    buf.put_u32_le(wire_u32(sections.len(), "section"));
    for (id, payload) in &sections {
        buf.put_slice(&section_header(*id, payload));
        buf.put_slice(payload);
    }
    buf.freeze()
}

/// Encodes a graph into the legacy CSG1 format (no sections, no
/// checksums, no statistics). Kept for forward-compatibility tests and
/// interop with CSG1-only readers.
pub fn encode_graph_v1(g: &Graph) -> Bytes {
    let interner = encode_interner_payload(g);
    let nodes = encode_nodes_payload(g);
    let edges = encode_edges_payload(g);
    let mut buf = BytesMut::with_capacity(4 + interner.len() + nodes.len() + edges.len());
    buf.put_slice(MAGIC_V1);
    buf.put_slice(&interner);
    buf.put_slice(&nodes);
    buf.put_slice(&edges);
    buf.freeze()
}

// ---------------------------------------------------------------------------
// Decoding.

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let s = std::str::from_utf8(&self.buf[..len])
            .map_err(|_| DecodeError::BadUtf8)?
            .to_string();
        self.buf.advance(len);
        Ok(s)
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        match self.u8()? {
            0 => Ok(Value::str(self.string()?)),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Float(self.f64()?)),
            _ => Err(DecodeError::Truncated),
        }
    }
}

fn decode_strings(r: &mut Reader<'_>) -> Result<Vec<String>, DecodeError> {
    let n_strings = r.u32()? as usize;
    // Guard against absurd preallocation from corrupt counts: each
    // string costs at least its 4-byte length prefix.
    if n_strings > r.buf.remaining() / 4 + 1 {
        return Err(DecodeError::Truncated);
    }
    let mut strings = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        strings.push(r.string()?);
    }
    Ok(strings)
}

/// Pre-interns the wire string table so the decoded graph's [`LabelId`]s
/// equal the wire ids exactly. Everything keyed by id (the statistics
/// sidecar, byte-for-byte re-encoding) depends on this; a table whose
/// entries don't round-trip to their own index (duplicate strings, or a
/// first entry that is not ε) cannot have come from our encoder and is
/// rejected.
fn preintern(b: &mut GraphBuilder, strings: &[String]) -> Result<(), DecodeError> {
    for (i, s) in strings.iter().enumerate() {
        if b.intern(s) != LabelId::new(i) {
            return Err(DecodeError::BadReference);
        }
    }
    Ok(())
}

/// Resolves a wire string id against the decoded string table.
fn resolve(strings: &[String], id: u32) -> Result<&str, DecodeError> {
    strings
        .get(id as usize)
        .map(String::as_str)
        .ok_or(DecodeError::BadReference)
}

fn decode_nodes(
    r: &mut Reader<'_>,
    b: &mut GraphBuilder,
    strings: &[String],
) -> Result<usize, DecodeError> {
    let resolve = |id: u32| resolve(strings, id);
    let n_nodes = r.u32()? as usize;
    if n_nodes > r.buf.remaining() / 4 + 1 {
        return Err(DecodeError::Truncated);
    }
    b.reserve(n_nodes, 0);
    for _ in 0..n_nodes {
        let label = r.u32()?;
        let n = b.add_node(resolve(label)?);
        let n_types = r.u16()?;
        for _ in 0..n_types {
            let t = r.u32()?;
            b.add_type(n, resolve(t)?);
        }
        let n_props = r.u16()?;
        for _ in 0..n_props {
            let k = r.u32()?;
            let key = resolve(k)?.to_string();
            let v = r.value()?;
            b.set_node_prop(n, &key, v);
        }
    }
    Ok(n_nodes)
}

fn decode_edges(
    r: &mut Reader<'_>,
    b: &mut GraphBuilder,
    strings: &[String],
    n_nodes: usize,
) -> Result<(), DecodeError> {
    let resolve = |id: u32| resolve(strings, id);
    let n_edges = r.u32()? as usize;
    if n_edges > r.buf.remaining() / 12 + 1 {
        return Err(DecodeError::Truncated);
    }
    b.reserve(0, n_edges);
    for _ in 0..n_edges {
        let src = r.u32()?;
        let dst = r.u32()?;
        let label = r.u32()?;
        if src as usize >= n_nodes || dst as usize >= n_nodes {
            return Err(DecodeError::BadReference);
        }
        let e = b.add_edge(
            crate::ids::NodeId(src),
            resolve(label)?,
            crate::ids::NodeId(dst),
        );
        let n_props = r.u16()?;
        for _ in 0..n_props {
            let k = r.u32()?;
            let key = resolve(k)?.to_string();
            let v = r.value()?;
            b.set_edge_prop(e, &key, v);
        }
    }
    Ok(())
}

fn decode_stats(
    r: &mut Reader<'_>,
    n_strings: usize,
    n_nodes: usize,
    n_edges: usize,
) -> Result<Cardinalities, DecodeError> {
    let nodes = r.u64()? as usize;
    let edges = r.u64()? as usize;
    // Statistics describing a different graph than the one in the
    // nodes/edges sections are corruption the checksum cannot see
    // (e.g. a stats section spliced in from another snapshot).
    if nodes != n_nodes || edges != n_edges {
        return Err(DecodeError::BadReference);
    }
    let mut c = Cardinalities {
        nodes,
        edges,
        ..Cardinalities::default()
    };
    let check = |l: u32| -> Result<LabelId, DecodeError> {
        if (l as usize) < n_strings {
            Ok(LabelId(l))
        } else {
            Err(DecodeError::BadReference)
        }
    };
    let n_edge_labels = r.u32()? as usize;
    if n_edge_labels > r.buf.remaining() / 28 + 1 {
        return Err(DecodeError::Truncated);
    }
    for _ in 0..n_edge_labels {
        let l = check(r.u32()?)?;
        let card = LabelCard {
            edges: r.u64()? as usize,
            distinct_src: r.u64()? as usize,
            distinct_dst: r.u64()? as usize,
        };
        c.edge_labels.insert(l, card);
    }
    for map in [&mut c.node_labels, &mut c.node_types] {
        let n = r.u32()? as usize;
        if n > r.buf.remaining() / 12 + 1 {
            return Err(DecodeError::Truncated);
        }
        for _ in 0..n {
            let l = check(r.u32()?)?;
            map.insert(l, r.u64()? as usize);
        }
    }
    Ok(c)
}

/// One checksum-verified CSG2 section, borrowed from the input buffer.
#[derive(Debug, Clone, Copy)]
pub struct RawSection<'a> {
    /// The section id (see the `SECTION_*` constants).
    pub id: u32,
    /// The section payload (checksum already verified).
    pub payload: &'a [u8],
}

/// Walks the CSG2 section table, verifying every checksum. Errors on
/// anything other than a well-formed CSG2 buffer; CSG1 input is
/// [`DecodeError::BadMagic`] here (use [`decode_graph`] to accept both).
pub fn read_sections(bytes: &[u8]) -> Result<Vec<RawSection<'_>>, DecodeError> {
    let mut r = Reader { buf: bytes };
    r.need(4)?;
    if &r.buf[..4] != MAGIC_V2 {
        return Err(DecodeError::BadMagic);
    }
    r.buf.advance(4);
    let n_sections = r.u32()? as usize;
    // Each section costs at least its 16-byte header.
    if n_sections > r.buf.remaining() / 16 + 1 {
        return Err(DecodeError::Truncated);
    }
    let mut sections = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        let id = r.u32()?;
        let len = r.u64()?;
        let stored_crc = r.u32()?;
        let len = usize::try_from(len).map_err(|_| DecodeError::Truncated)?;
        r.need(len)?;
        let payload = &r.buf[..len];
        if crc32(payload) != stored_crc {
            return Err(DecodeError::BadChecksum { section: id });
        }
        r.buf.advance(len);
        sections.push(RawSection { id, payload });
    }
    Ok(sections)
}

fn section<'a>(sections: &[RawSection<'a>], id: u32) -> Result<&'a [u8], DecodeError> {
    sections
        .iter()
        .find(|s| s.id == id)
        .map(|s| s.payload)
        .ok_or(DecodeError::MissingSection { section: id })
}

// ---------------------------------------------------------------------------
// CSR section decoding (owned and zero-copy mapped).

/// The header counts of a CSR section payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrHeader {
    /// Declared layout version (see [`CSR_LAYOUT_VERSION`]).
    pub version: u32,
    /// Number of nodes.
    pub nodes: u32,
    /// Number of edges.
    pub edges: u32,
    /// Total node-type entries across all nodes.
    pub type_entries: u32,
    /// Size of the label universe (= interned strings).
    pub labels: u32,
}

/// Reads a CSR section's 32-byte header without touching the arrays.
/// Errors on truncation or an unknown layout version.
pub fn peek_csr_header(payload: &[u8]) -> Result<CsrHeader, DecodeError> {
    if payload.len() < 32 {
        return Err(DecodeError::Truncated);
    }
    // cs-lint: allow(L002): the length guard above makes every 4-byte
    // window of the 32-byte header in-bounds, so try_into cannot fail.
    let word = |i: usize| u32::from_le_bytes(payload[4 * i..4 * i + 4].try_into().unwrap());
    let h = CsrHeader {
        version: word(0),
        nodes: word(1),
        edges: word(2),
        type_entries: word(3),
        labels: word(4),
    };
    if h.version != CSR_LAYOUT_VERSION {
        return Err(DecodeError::UnsupportedLayout { version: h.version });
    }
    Ok(h)
}

/// The byte ranges (relative to the CSR payload) of the fourteen
/// arrays, in serialisation order. Fails unless the payload length is
/// exactly what the header counts demand.
fn csr_array_ranges(
    payload: &[u8],
    h: &CsrHeader,
) -> Result<[std::ops::Range<usize>; 14], DecodeError> {
    let (n, m, t, l) = (
        h.nodes as u64,
        h.edges as u64,
        h.type_entries as u64,
        h.labels as u64,
    );
    let lens: [u64; 14] = [
        n,     // node_label
        n + 1, // type_offsets
        t,     // type_ids
        3 * m, // edge_ndl
        n + 1, // adj_offsets
        4 * m, // adj_pairs
        l + 1, // elab_offsets
        m,     // elab_edges
        m,     // fwd_edges
        m,     // rev_edges
        l + 1, // nlab_offsets
        n,     // nlab_nodes
        l + 1, // ntype_offsets
        t,     // ntype_nodes
    ];
    let mut ranges = std::array::from_fn(|_| 0..0);
    let mut at = 32u64;
    for (i, len) in lens.iter().enumerate() {
        let end = at
            .checked_add(len.checked_mul(4).ok_or(DecodeError::Truncated)?)
            .ok_or(DecodeError::Truncated)?;
        let (s, e) = (
            usize::try_from(at).map_err(|_| DecodeError::Truncated)?,
            usize::try_from(end).map_err(|_| DecodeError::Truncated)?,
        );
        ranges[i] = s..e;
        at = end;
    }
    if at != payload.len() as u64 {
        return Err(DecodeError::Truncated);
    }
    Ok(ranges)
}

/// Rebuilds an [`Interner`] whose ids equal the wire string ids —
/// same round-trip requirement as [`preintern`].
fn build_interner(strings: &[String]) -> Result<Interner, DecodeError> {
    let mut interner = Interner::new();
    for (i, s) in strings.iter().enumerate() {
        if interner.intern(s) != LabelId::new(i) {
            return Err(DecodeError::BadReference);
        }
    }
    Ok(interner)
}

fn decode_prop_table(
    r: &mut Reader<'_>,
    max_id: u32,
    n_strings: usize,
) -> Result<PropTable, DecodeError> {
    let n_entries = r.u32()? as usize;
    if n_entries > r.buf.remaining() / 8 + 1 {
        return Err(DecodeError::Truncated);
    }
    let mut table = Vec::with_capacity(n_entries);
    let mut last_id: Option<u32> = None;
    for _ in 0..n_entries {
        let id = r.u32()?;
        // Ids must ascend strictly (the lookup binary-searches) and
        // stay in range.
        if id >= max_id || last_id.is_some_and(|p| p >= id) {
            return Err(DecodeError::BadReference);
        }
        last_id = Some(id);
        let n_props = r.u32()? as usize;
        if n_props == 0 || n_props > r.buf.remaining() / 5 + 1 {
            return Err(DecodeError::Truncated);
        }
        let mut props = Vec::with_capacity(n_props);
        let mut last_key: Option<u32> = None;
        for _ in 0..n_props {
            let k = r.u32()?;
            if k as usize >= n_strings || last_key.is_some_and(|p| p >= k) {
                return Err(DecodeError::BadReference);
            }
            last_key = Some(k);
            props.push((LabelId(k), r.value()?));
        }
        table.push((id, props.into_boxed_slice()));
    }
    Ok(table.into_boxed_slice())
}

/// Bounds- and monotonicity-checks every CSR column so graph accessors
/// can index without panicking on any decodable file — the checksum
/// guards against corruption, not against crafted input.
fn validate_csr_parts(p: &GraphParts, h: &CsrHeader) -> Result<(), DecodeError> {
    let (n, m, t, l) = (h.nodes, h.edges, h.type_entries, h.labels);
    if p.interner.len() != l as usize || m >= 1 << 31 {
        return Err(DecodeError::BadReference);
    }
    let offsets_ok = |s: &Storage, last: u32| {
        let s = s.as_slice();
        s.first() == Some(&0) && s.windows(2).all(|w| w[0] <= w[1]) && s.last() == Some(&last)
    };
    let within = |s: &Storage, bound: u32| s.as_slice().iter().all(|&v| v < bound);
    let ok = offsets_ok(&p.type_offsets, t)
        && offsets_ok(&p.adj_offsets, 2 * m)
        && offsets_ok(&p.elab_offsets, m)
        && offsets_ok(&p.nlab_offsets, n)
        && offsets_ok(&p.ntype_offsets, t)
        && within(&p.node_label, l.max(1))
        && (t == 0 || within(&p.type_ids, l))
        && p.edge_ndl
            .as_slice()
            .chunks_exact(3)
            .all(|e| e[0] < n && e[1] < n && e[2] < l)
        && p.adj_pairs
            .as_slice()
            .chunks_exact(2)
            .all(|a| a[0] & 0x7FFF_FFFF < m && a[1] < n)
        && within(&p.elab_edges, m.max(1))
        && within(&p.fwd_edges, m.max(1))
        && within(&p.rev_edges, m.max(1))
        && within(&p.nlab_nodes, n.max(1))
        && within(&p.ntype_nodes, n.max(1));
    if ok {
        Ok(())
    } else {
        Err(DecodeError::BadReference)
    }
}

/// Assembles a graph from CSR-layout sections. `storage_for` maps an
/// array's byte range within the CSR payload to its backing storage —
/// an owned copy for byte-slice decoding, a mapped window for
/// zero-copy loads.
fn decode_csr_graph(
    sections: &[RawSection<'_>],
    mut storage_for: impl FnMut(std::ops::Range<usize>) -> Storage,
) -> Result<Graph, DecodeError> {
    let payload = section(sections, SECTION_CSR_GRAPH)?;
    let header = peek_csr_header(payload)?;
    let ranges = csr_array_ranges(payload, &header)?;

    let mut r = Reader {
        buf: section(sections, SECTION_INTERNER)?,
    };
    let strings = decode_strings(&mut r)?;
    let interner = build_interner(&strings)?;

    let (node_props, edge_props) = match sections.iter().find(|s| s.id == SECTION_PROPS) {
        Some(s) => {
            let mut r = Reader { buf: s.payload };
            let nodes = decode_prop_table(&mut r, header.nodes, strings.len())?;
            let edges = decode_prop_table(&mut r, header.edges, strings.len())?;
            if r.buf.remaining() > 0 {
                return Err(DecodeError::Truncated);
            }
            (nodes, edges)
        }
        None => (Box::from([]), Box::from([])),
    };

    let mut next = ranges.into_iter().map(&mut storage_for);
    // cs-lint: allow(L002): `csr_array_ranges` returns exactly the
    // fourteen ranges the fourteen take() calls below consume.
    let mut take = || next.next().expect("fourteen CSR arrays");
    let parts = GraphParts {
        interner,
        n: header.nodes as usize,
        m: header.edges as usize,
        node_label: take(),
        type_offsets: take(),
        type_ids: take(),
        edge_ndl: take(),
        adj_offsets: take(),
        adj_pairs: take(),
        elab_offsets: take(),
        elab_edges: take(),
        fwd_edges: take(),
        rev_edges: take(),
        nlab_offsets: take(),
        nlab_nodes: take(),
        ntype_offsets: take(),
        ntype_nodes: take(),
        node_props,
        edge_props,
    };
    validate_csr_parts(&parts, &header)?;

    let stats = match sections.iter().find(|s| s.id == SECTION_STATS) {
        Some(s) => {
            let mut r = Reader { buf: s.payload };
            Some(decode_stats(
                &mut r,
                strings.len(),
                header.nodes as usize,
                header.edges as usize,
            )?)
        }
        None => None,
    };

    let g = parts.into_graph();
    if let Some(c) = stats {
        g.warm_cardinalities(c);
    }
    Ok(g)
}

/// Copies a little-endian byte range into an owned `u32` column.
fn owned_column(payload: &[u8], range: std::ops::Range<usize>) -> Storage {
    let bytes = &payload[range];
    Storage::from_vec(
        bytes
            .chunks_exact(4)
            // cs-lint: allow(L002): chunks_exact(4) yields only
            // 4-byte slices, so the array conversion cannot fail.
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect(),
    )
}

/// Decodes a CSG2 buffer that is backed by a live memory mapping,
/// backing the CSR columns by the mapping itself (zero-copy). Returns
/// `Ok(None)` if the buffer is not CSG2 or has no CSR section, so the
/// caller can fall back to the owned path. Only little-endian hosts
/// can reinterpret the file bytes in place.
#[cfg(target_endian = "little")]
pub(crate) fn decode_graph_mapped(map: &Arc<MmapFile>) -> Result<Option<Graph>, DecodeError> {
    let bytes = map.bytes();
    if bytes.len() < 4 || &bytes[..4] != MAGIC_V2 {
        return Ok(None);
    }
    let sections = read_sections(bytes)?;
    let Some(csr) = sections.iter().find(|s| s.id == SECTION_CSR_GRAPH) else {
        return Ok(None);
    };
    let base = bytes.as_ptr() as usize;
    let payload_offset = csr.payload.as_ptr() as usize - base;
    let payload = csr.payload;
    let g = decode_csr_graph(&sections, |range| {
        Storage::from_mapping(map, payload_offset + range.start, range.len() / 4)
            .unwrap_or_else(|| owned_column(payload, range))
    })?;
    Ok(Some(g))
}

#[cfg(not(target_endian = "little"))]
pub(crate) fn decode_graph_mapped(_map: &Arc<MmapFile>) -> Result<Option<Graph>, DecodeError> {
    Ok(None)
}

fn decode_graph_v2(bytes: &[u8]) -> Result<Graph, DecodeError> {
    let sections = read_sections(bytes)?;

    if let Some(csr) = sections.iter().find(|s| s.id == SECTION_CSR_GRAPH) {
        let payload = csr.payload;
        return decode_csr_graph(&sections, |range| owned_column(payload, range));
    }

    let mut r = Reader {
        buf: section(&sections, SECTION_INTERNER)?,
    };
    let strings = decode_strings(&mut r)?;

    let mut b = GraphBuilder::with_capacity(0, 0);
    preintern(&mut b, &strings)?;
    let mut r = Reader {
        buf: section(&sections, SECTION_NODES)?,
    };
    let n_nodes = decode_nodes(&mut r, &mut b, &strings)?;

    let mut r = Reader {
        buf: section(&sections, SECTION_EDGES)?,
    };
    decode_edges(&mut r, &mut b, &strings, n_nodes)?;
    let n_edges = b.edge_count();

    // The optional sidecar: decode *before* freezing so a corrupt
    // stats section fails the whole load rather than silently cooling
    // the planner.
    let stats = match sections.iter().find(|s| s.id == SECTION_STATS) {
        Some(s) => {
            let mut r = Reader { buf: s.payload };
            Some(decode_stats(&mut r, strings.len(), n_nodes, n_edges)?)
        }
        None => None,
    };

    let g = b.freeze();
    if let Some(c) = stats {
        g.warm_cardinalities(c);
    }
    Ok(g)
}

fn decode_graph_v1(bytes: &[u8]) -> Result<Graph, DecodeError> {
    let mut r = Reader { buf: &bytes[4..] };
    let strings = decode_strings(&mut r)?;
    let mut b = GraphBuilder::with_capacity(0, 0);
    preintern(&mut b, &strings)?;
    let n_nodes = decode_nodes(&mut r, &mut b, &strings)?;
    decode_edges(&mut r, &mut b, &strings, n_nodes)?;
    Ok(b.freeze())
}

/// The record counts of a legacy CSG1 snapshot, obtained by walking the
/// record stream without building a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountsV1 {
    /// Interned strings.
    pub strings: usize,
    /// Node records.
    pub nodes: usize,
    /// Edge records.
    pub edges: usize,
}

/// Skips over one serialised [`Value`] without materialising it.
fn skip_value(r: &mut Reader<'_>) -> Result<(), DecodeError> {
    match r.u8()? {
        0 => {
            let len = r.u32()? as usize;
            r.need(len)?;
            r.buf.advance(len);
            Ok(())
        }
        1 | 2 => {
            r.need(8)?;
            r.buf.advance(8);
            Ok(())
        }
        _ => Err(DecodeError::Truncated),
    }
}

/// Reads a CSG1 file's string/node/edge counts by skipping over the
/// records (no graph build, no per-record allocation). `bytes` must
/// start with the CSG1 magic.
pub fn peek_counts_v1(bytes: &[u8]) -> Result<CountsV1, DecodeError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC_V1 {
        return Err(DecodeError::BadMagic);
    }
    let mut r = Reader { buf: &bytes[4..] };
    let strings = r.u32()? as usize;
    for _ in 0..strings {
        let len = r.u32()? as usize;
        r.need(len)?;
        r.buf.advance(len);
    }
    let nodes = r.u32()? as usize;
    for _ in 0..nodes {
        r.u32()?; // label
        let n_types = r.u16()?;
        let skip = 4 * n_types as usize;
        r.need(skip)?;
        r.buf.advance(skip);
        let n_props = r.u16()?;
        for _ in 0..n_props {
            r.u32()?; // key
            skip_value(&mut r)?;
        }
    }
    let edges = r.u32()? as usize;
    for _ in 0..edges {
        r.need(12)?;
        r.buf.advance(12); // src, dst, label
        let n_props = r.u16()?;
        for _ in 0..n_props {
            r.u32()?;
            skip_value(&mut r)?;
        }
    }
    Ok(CountsV1 {
        strings,
        nodes,
        edges,
    })
}

/// Decodes a snapshot produced by [`encode_graph`] (CSG2) or by the
/// legacy CSG1 encoder. A CSG2 statistics section, when present, seeds
/// the graph's cached [`Cardinalities`] so
/// [`Graph::cardinalities`](crate::Graph::cardinalities) returns
/// without a stats pass.
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    match &bytes[..4] {
        m if m == MAGIC_V2 => decode_graph_v2(bytes),
        m if m == MAGIC_V1 => decode_graph_v1(bytes),
        _ => Err(DecodeError::BadMagic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;
    use crate::generate::{scale_free, ScaleFreeParams};

    #[test]
    fn mutated_graph_snapshots_compacted() {
        let mut g = figure1();
        let alice = g.node_by_label("Alice").unwrap();
        let zoe = g.insert_node("Zoe", &["person"]);
        g.insert_edge(alice, "mentors", zoe);
        let l = g.label_id("citizenOf").unwrap();
        let victim = g.edges_with_label(l)[0];
        g.remove_edge(victim);
        assert!(g.has_delta());
        let bytes = encode_graph(&g);
        // The caller's graph keeps its overlay; the snapshot holds the
        // dense equivalent.
        assert!(g.has_delta());
        let loaded = decode_graph(&bytes).unwrap();
        assert!(!loaded.has_delta());
        assert_eq!(loaded.node_count(), g.node_count());
        assert_eq!(loaded.edge_count(), g.edge_count());
        let live: Vec<String> = g.edge_ids().map(|e| g.describe_edge(e)).collect();
        let round: Vec<String> = loaded.edge_ids().map(|e| loaded.describe_edge(e)).collect();
        assert_eq!(live, round, "live edges round-trip in enumeration order");
        // The stats sidecar carried the incrementally maintained
        // cardinalities.
        assert_eq!(
            loaded.cardinalities_if_computed().unwrap(),
            &crate::stats::Cardinalities::of(&loaded)
        );
    }

    #[test]
    fn wire_width_boundaries_fit() {
        assert_eq!(wire_u32(u32::MAX as usize, "test"), u32::MAX);
        assert_eq!(wire_u16(u16::MAX as usize, "test"), u16::MAX);
        assert_eq!(wire_u32(0, "test"), 0);
        assert_eq!(wire_u16(0, "test"), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the CSG u32 wire limit")]
    fn wire_u32_overflow_panics() {
        wire_u32(u32::MAX as usize + 1, "test");
    }

    #[test]
    #[should_panic(expected = "exceeds the CSG u16 wire limit")]
    fn wire_u16_overflow_panics() {
        wire_u16(u16::MAX as usize + 1, "test");
    }

    /// The legacy record layout stores per-node type counts as `u16`;
    /// a node with 2^16 types must fail the encode loudly instead of
    /// truncating into a corrupt snapshot (the historical `as u16`
    /// behaviour cs-lint rule L006 now bans).
    #[cfg(not(miri))] // interns 2^16 strings — too slow interpreted
    #[test]
    #[should_panic(expected = "node type count 65536 exceeds the CSG u16 wire limit")]
    fn legacy_encoding_rejects_oversized_type_list() {
        let mut b = GraphBuilder::new();
        let names: Vec<String> = (0..=usize::from(u16::MAX))
            .map(|i| format!("t{i}"))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.add_typed_node("n", &refs);
        let _ = encode_graph_with(
            &b.freeze(),
            &EncodeOptions {
                legacy_layout: true,
                ..EncodeOptions::default()
            },
        );
    }

    fn assert_same_graph(g: &Graph, g2: &Graph) {
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for n in g.node_ids() {
            assert_eq!(g2.node_label(n), g.node_label(n));
            assert_eq!(
                g2.node_types(n).collect::<Vec<_>>(),
                g.node_types(n).collect::<Vec<_>>()
            );
        }
        for e in g.edge_ids() {
            assert_eq!(g2.describe_edge(e), g.describe_edge(e));
        }
    }

    #[test]
    fn roundtrip_figure1() {
        let g = figure1();
        let bytes = encode_graph(&g);
        let g2 = decode_graph(&bytes).unwrap();
        assert_same_graph(&g, &g2);
    }

    #[test]
    fn roundtrip_with_properties() {
        let mut b = GraphBuilder::new();
        let a = b.add_typed_node("a", &["t"]);
        let c = b.add_node("c");
        let e = b.add_edge(a, "r", c);
        b.set_node_prop(a, "age", 42i64);
        b.set_node_prop(a, "name", "alpha");
        b.set_edge_prop(e, "w", 2.5f64);
        let g = b.freeze();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.node_prop(a, "age"), Some(&Value::Int(42)));
        assert_eq!(g2.node_prop(a, "name"), Some(&Value::str("alpha")));
        assert_eq!(g2.edge_prop(e, "w"), Some(&Value::Float(2.5)));
    }

    // Generates a 300-node scale-free graph — fine natively, far too
    // slow under the Miri interpreter.
    #[cfg(not(miri))]
    #[test]
    fn roundtrip_generated_graph() {
        let g = scale_free(&ScaleFreeParams {
            nodes: 300,
            edges_per_node: 3,
            labels: 8,
            types: 4,
            seed: 3,
        });
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        let l = g.label_id("rel0").unwrap();
        let l2 = g2.label_id("rel0").unwrap();
        assert_eq!(g.edges_with_label(l).len(), g2.edges_with_label(l2).len());
    }

    #[test]
    fn stats_sidecar_loads_warm_and_equal() {
        let g = figure1();
        let computed = g.cardinalities().clone(); // force + copy
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        let warm = g2
            .cardinalities_if_computed()
            .expect("stats section must seed the OnceLock before first use");
        assert_eq!(*warm, computed);
    }

    #[test]
    fn stats_sidecar_is_optional() {
        let g = figure1();
        let bytes = encode_graph_with(
            &g,
            &EncodeOptions {
                include_stats: false,
                ..EncodeOptions::default()
            },
        );
        let g2 = decode_graph(&bytes).unwrap();
        assert!(g2.cardinalities_if_computed().is_none());
        // Cold path still works.
        assert_eq!(g2.cardinalities().edges, g.edge_count());
    }

    #[test]
    fn csg1_still_readable() {
        let g = figure1();
        let v1 = encode_graph_v1(&g);
        assert_eq!(&v1[..4], b"CSG1");
        let g2 = decode_graph(&v1).unwrap();
        assert_same_graph(&g, &g2);
        assert!(g2.cardinalities_if_computed().is_none());
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode_graph(b"nope").unwrap_err(), DecodeError::BadMagic);
        assert_eq!(decode_graph(b"CS").unwrap_err(), DecodeError::Truncated);
        let g = figure1();
        let bytes = encode_graph(&g);
        let truncated = &bytes[..bytes.len() / 2];
        assert!(decode_graph(truncated).is_err());
    }

    #[test]
    fn bit_flip_is_checksum_error() {
        let g = figure1();
        let mut bytes = encode_graph(&g).to_vec();
        // Flip a byte well inside the first section's payload.
        let target = bytes.len() / 2;
        bytes[target] ^= 0xA5;
        let err = decode_graph(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::BadChecksum { .. } | DecodeError::Truncated
            ),
            "bit flip must be caught by framing, got {err:?}"
        );
    }

    fn reframe<'a>(sections: impl IntoIterator<Item = &'a (u32, Bytes)>) -> Vec<u8> {
        let sections: Vec<_> = sections.into_iter().collect();
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CSG2");
        buf.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        for (id, payload) in sections {
            buf.extend_from_slice(&section_header(*id, payload));
            buf.extend_from_slice(payload);
        }
        buf
    }

    #[test]
    fn missing_required_section() {
        let g = figure1();
        // Re-frame a record-layout file with the edges section dropped.
        let sections = encode_sections(
            &g,
            &EncodeOptions {
                legacy_layout: true,
                ..EncodeOptions::default()
            },
        );
        let buf = reframe(sections.iter().filter(|(id, _)| *id != SECTION_EDGES));
        assert_eq!(
            decode_graph(&buf).unwrap_err(),
            DecodeError::MissingSection {
                section: SECTION_EDGES
            }
        );
    }

    #[test]
    fn csr_file_without_interner_is_rejected() {
        let g = figure1();
        let sections = encode_sections(&g, &EncodeOptions::default());
        let buf = reframe(sections.iter().filter(|(id, _)| *id != SECTION_INTERNER));
        assert_eq!(
            decode_graph(&buf).unwrap_err(),
            DecodeError::MissingSection {
                section: SECTION_INTERNER
            }
        );
    }

    #[test]
    fn legacy_record_layout_still_roundtrips() {
        let g = figure1();
        let bytes = encode_graph_with(
            &g,
            &EncodeOptions {
                legacy_layout: true,
                ..EncodeOptions::default()
            },
        );
        let g2 = decode_graph(&bytes).unwrap();
        assert_same_graph(&g, &g2);
        // The sidecar still warms the planner on the legacy path.
        assert!(g2.cardinalities_if_computed().is_some());
    }

    #[test]
    fn unknown_csr_layout_version_is_rejected() {
        let g = figure1();
        let mut sections = encode_sections(&g, &EncodeOptions::default());
        let mut payload = sections[0].1.to_vec();
        assert_eq!(sections[0].0, SECTION_CSR_GRAPH);
        payload[0..4].copy_from_slice(&99u32.to_le_bytes());
        sections[0].1 = Bytes::from_vec(payload);
        let buf = reframe(sections.iter());
        assert_eq!(
            decode_graph(&buf).unwrap_err(),
            DecodeError::UnsupportedLayout { version: 99 }
        );
    }

    #[test]
    fn csr_payload_length_must_match_header() {
        let g = figure1();
        let mut sections = encode_sections(&g, &EncodeOptions::default());
        let mut payload = sections[0].1.to_vec();
        payload.extend_from_slice(&[0u8; 4]); // one stray trailing word
        sections[0].1 = Bytes::from_vec(payload);
        let buf = reframe(sections.iter());
        assert_eq!(decode_graph(&buf).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let g = figure1();
        let mut sections = encode_sections(&g, &EncodeOptions::default());
        sections.push((999, Bytes::from_vec(b"future data".to_vec())));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CSG2");
        buf.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        for (id, payload) in &sections {
            buf.extend_from_slice(&section_header(*id, payload));
            buf.extend_from_slice(payload);
        }
        let g2 = decode_graph(&buf).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = GraphBuilder::new().freeze();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn encoding_is_deterministic() {
        // HashMap iteration must not leak into the bytes (snapshots are
        // meant to pin workloads byte-for-byte).
        let g = scale_free(&ScaleFreeParams {
            nodes: 120,
            edges_per_node: 3,
            labels: 9,
            types: 5,
            seed: 11,
        });
        let a = encode_graph(&g);
        let g2 = decode_graph(&a).unwrap();
        let b = encode_graph(&g2);
        assert_eq!(a, b);
    }

    #[test]
    fn crc32_known_vector() {
        // The IEEE CRC32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
