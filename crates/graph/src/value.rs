//! Property values attached to nodes and edges.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A property value: strings, integers, and floats cover the paper's data
/// model (RDF literals / property-graph properties).
#[derive(Debug, Clone)]
pub enum Value {
    /// A string value (RDF literal or URI tail).
    Str(Arc<str>),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the string content if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric content widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// Compares two values if they are of comparable kinds.
    ///
    /// Strings compare lexicographically with strings; numbers compare
    /// numerically with numbers (ints and floats inter-compare). A
    /// string never compares with a number — the paper requires the
    /// operator to be "well-defined on any value of property p together
    /// with c" (Def. 2.2), so incomparable pairs yield `None` and the
    /// condition evaluates to false.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.partial_cmp_value(other) == Some(Ordering::Equal)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_comparison() {
        assert_eq!(Value::str("a"), Value::str("a"));
        assert!(Value::str("a").partial_cmp_value(&Value::str("b")) == Some(Ordering::Less));
    }

    #[test]
    fn numeric_cross_comparison() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(
            Value::Int(2).partial_cmp_value(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_kinds() {
        assert_eq!(Value::str("3").partial_cmp_value(&Value::Int(3)), None);
        assert_ne!(Value::str("3"), Value::Int(3));
    }

    #[test]
    fn display() {
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Int(-5).to_string(), "-5");
    }
}
