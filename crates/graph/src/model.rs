//! The immutable labelled multigraph (paper Def. 2.1) in a
//! label-partitioned CSR (compressed sparse row) layout.
//!
//! A graph `G(N, E)` has labelled nodes and labelled directed edges;
//! the CTP semantics traverse edges in *both* directions (requirement
//! R3). Instead of per-node heap allocations and hash-map label
//! indexes, every structure is a pair of contiguous `u32` columns —
//! an offsets array partitioning a values array:
//!
//! ```text
//! node_label    [n]    label of each node
//! type_offsets  [n+1]  ─┐ per-node type-id runs (insertion order)
//! type_ids      [t]    ─┘
//! edge_ndl      [3m]   interleaved (src, dst, label) per edge — the
//!                      words of the public `EdgeData` POD
//! adj_offsets   [n+1]  ─┐ per-node bidirectional adjacency runs of
//! adj_pairs     [4m]   ─┘ (edge|dir, other) pairs — `Adj` PODs, in
//!                         ascending edge-id order per node
//! elab_offsets  [L+1]  ─┐ per-edge-label edge runs in ascending
//! elab_edges    [m]    ─┘ edge-id order (`edges_with_label`)
//! fwd_edges     [m]    per-label runs re-sorted by (src, id): the
//!                      forward CSR — `out_edges_labelled` binary
//!                      searches a source node's contiguous group
//! rev_edges     [m]    same, sorted by (dst, id): the reverse CSR
//! nlab_offsets  [L+1]  ─┐ per-label node runs, ascending node id
//! nlab_nodes    [n]    ─┘ (`nodes_with_label`)
//! ntype_offsets [L+1]  ─┐ per-type node runs, ascending node id
//! ntype_nodes   [t]    ─┘ (`nodes_with_type`)
//! ```
//!
//! Neighbour expansion (Grow) walks one cache-friendly linear run;
//! `AccessPath::EdgeLabelIndex` is a slice iteration; and because the
//! columns are plain little-endian `u32` arrays, a CSG2 snapshot can
//! serialise them verbatim and [`crate::snapshot::load_from`] can back
//! them by a memory-mapped file with zero copying (see
//! [`crate::storage`]). Sparse node/edge properties stay in owned
//! side tables sorted by entity id.
//!
//! Construct with [`crate::GraphBuilder`]; once frozen, a `Graph` is
//! `Send + Sync` and safely shared across search threads. Edge count
//! is capped at `2^31 - 1` because the adjacency word keeps the
//! direction flag in the top bit.

use crate::ids::{EdgeId, LabelId, NodeId};
use crate::interner::Interner;
use crate::mutate::{DeltaState, MutationRecord};
use crate::stats::Cardinalities;
use crate::storage::Storage;
use crate::value::Value;
use std::collections::VecDeque;
use std::sync::OnceLock;

/// A node's payload, viewed against the columnar storage: label, zero
/// or more types, sparse properties.
#[derive(Debug, Clone, Copy)]
pub struct NodeRef<'g> {
    /// The node label (ε if unlabelled).
    pub label: LabelId,
    /// RDF types / PG labels of the node (paper: "an RDF node may have
    /// 0 or more types"), in insertion order.
    pub types: &'g [LabelId],
    /// Additional properties, sorted by key.
    pub props: &'g [(LabelId, Value)],
}

/// Per-edge payload: endpoints and label.
///
/// Stored as three consecutive `u32` words per edge, so the edge table
/// is a single contiguous column (possibly a mapped snapshot region).
/// Edge properties live in a side table — see [`Graph::edge_props`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct EdgeData {
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub dst: NodeId,
    /// Edge label (ε if unlabelled).
    pub label: LabelId,
}

/// One entry of a node's combined (bidirectional) adjacency list:
/// two `u32` words — the edge id with the direction flag in the top
/// bit, and the far endpoint.
#[derive(Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Adj {
    word: u32,
    other: u32,
}

const DIR_BIT: u32 = 1 << 31;

impl Adj {
    #[inline]
    pub(crate) fn new(edge: EdgeId, other: NodeId, outgoing: bool) -> Adj {
        debug_assert!(edge.0 < DIR_BIT, "edge id overflows the direction bit");
        Adj {
            word: edge.0 | if outgoing { DIR_BIT } else { 0 },
            other: other.0,
        }
    }

    /// The incident edge.
    #[inline]
    pub fn edge(&self) -> EdgeId {
        EdgeId(self.word & !DIR_BIT)
    }

    /// The endpoint on the far side (equals the node itself for loops).
    #[inline]
    pub fn other(&self) -> NodeId {
        NodeId(self.other)
    }

    /// True if the edge leaves this node (`src == this`), false if it
    /// enters it. A self-loop appears twice, once per direction.
    #[inline]
    pub fn outgoing(&self) -> bool {
        self.word & DIR_BIT != 0
    }

    /// The entry's two storage words, in column order.
    #[inline]
    pub(crate) fn words(self) -> [u32; 2] {
        [self.word, self.other]
    }
}

impl std::fmt::Debug for Adj {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Adj({:?} {} {:?})",
            self.edge(),
            if self.outgoing() { "->" } else { "<-" },
            self.other()
        )
    }
}

/// Sparse property side table: `(entity id, sorted props)` entries,
/// sorted by entity id.
pub(crate) type PropTable = Box<[(u32, Box<[(LabelId, Value)]>)]>;

/// The graph's raw CSR columns in serialisation order (see the
/// [module docs](self)), plus the header counts `n`/`m`/`t`/`l`.
pub(crate) struct CsrColumns<'g> {
    pub n: u32,
    pub m: u32,
    pub t: u32,
    pub l: u32,
    pub arrays: [&'g [u32]; 14],
}

/// Everything needed to assemble a [`Graph`] — produced by the builder
/// (owned columns) and by the snapshot decoder (owned or mapped
/// columns).
#[derive(Debug, Clone)]
pub(crate) struct GraphParts {
    pub interner: Interner,
    pub n: usize,
    pub m: usize,
    pub node_label: Storage,
    pub type_offsets: Storage,
    pub type_ids: Storage,
    pub edge_ndl: Storage,
    pub adj_offsets: Storage,
    pub adj_pairs: Storage,
    pub elab_offsets: Storage,
    pub elab_edges: Storage,
    pub fwd_edges: Storage,
    pub rev_edges: Storage,
    pub nlab_offsets: Storage,
    pub nlab_nodes: Storage,
    pub ntype_offsets: Storage,
    pub ntype_nodes: Storage,
    pub node_props: PropTable,
    pub edge_props: PropTable,
}

impl GraphParts {
    pub(crate) fn into_graph(self) -> Graph {
        Graph {
            interner: self.interner,
            n: self.n,
            m: self.m,
            node_label: self.node_label,
            type_offsets: self.type_offsets,
            type_ids: self.type_ids,
            edge_ndl: self.edge_ndl,
            adj_offsets: self.adj_offsets,
            adj_pairs: self.adj_pairs,
            elab_offsets: self.elab_offsets,
            elab_edges: self.elab_edges,
            fwd_edges: self.fwd_edges,
            rev_edges: self.rev_edges,
            nlab_offsets: self.nlab_offsets,
            nlab_nodes: self.nlab_nodes,
            ntype_offsets: self.ntype_offsets,
            ntype_nodes: self.ntype_nodes,
            node_props: self.node_props,
            edge_props: self.edge_props,
            cardinalities: OnceLock::new(),
            delta: None,
            generation: 0,
            log: VecDeque::new(),
            compact_threshold: crate::mutate::DEFAULT_COMPACT_THRESHOLD,
        }
    }
}

/// An immutable labelled multigraph in label-partitioned CSR form —
/// see the `model` module docs for the column layout.
///
/// Construct with [`crate::GraphBuilder`] or load from a snapshot
/// ([`crate::snapshot`]); a `Graph` is `Send + Sync` and safely shared
/// across search threads.
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) interner: Interner,
    pub(crate) n: usize,
    pub(crate) m: usize,
    node_label: Storage,
    type_offsets: Storage,
    type_ids: Storage,
    edge_ndl: Storage,
    adj_offsets: Storage,
    adj_pairs: Storage,
    elab_offsets: Storage,
    elab_edges: Storage,
    fwd_edges: Storage,
    rev_edges: Storage,
    nlab_offsets: Storage,
    nlab_nodes: Storage,
    ntype_offsets: Storage,
    ntype_nodes: Storage,
    node_props: PropTable,
    edge_props: PropTable,
    pub(crate) cardinalities: OnceLock<Cardinalities>,
    /// Copy-on-write mutation overlay; `None` while the graph matches
    /// its base columns (see [`crate::mutate`]).
    pub(crate) delta: Option<Box<DeltaState>>,
    /// Monotonic mutation counter, bumped once per effective batch.
    pub(crate) generation: u64,
    /// Bounded per-batch mutation log (what each generation touched).
    pub(crate) log: VecDeque<MutationRecord>,
    /// Overlay-op count that triggers compaction in `apply`.
    pub(crate) compact_threshold: usize,
}

/// Casts a `u32` column to a slice of a `u32`-word POD (`EdgeId`,
/// `NodeId`, `LabelId` are `repr(transparent)`; `Adj`/`EdgeData` are
/// `repr(C)` tuples of those), which is sound for any bit pattern.
macro_rules! cast_words {
    ($slice:expr, $ty:ty, $words:expr) => {{
        let s: &[u32] = $slice;
        #[allow(clippy::modulo_one)] // $words is 1 for single-word ids
        {
            debug_assert_eq!(s.len() % $words, 0);
        }
        debug_assert_eq!(std::mem::size_of::<$ty>(), 4 * $words);
        debug_assert_eq!(std::mem::align_of::<$ty>(), 4);
        // SAFETY: $ty is a POD of $words u32 words with align 4, and
        // every bit pattern is a valid value.
        unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<$ty>(), s.len() / $words) }
    }};
}

/// The half-open value range of partition `i` in an offsets column.
#[inline(always)]
fn run(offsets: &[u32], i: usize) -> std::ops::Range<usize> {
    offsets[i] as usize..offsets[i + 1] as usize
}

#[inline]
fn side_props(table: &PropTable, id: u32) -> &[(LabelId, Value)] {
    match table.binary_search_by_key(&id, |(k, _)| *k) {
        Ok(i) => &table[i].1,
        Err(_) => &[],
    }
}

impl Graph {
    /// Number of nodes |N|.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges |E|.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::new)
    }

    /// Iterates over all live edge ids, ascending. Before compaction a
    /// mutated graph's edge-id space may be sparse (removed ids are
    /// skipped, inserted ids extend past the base columns).
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        let space = match &self.delta {
            Some(d) => d.base_m + d.extra_edges.len(),
            None => self.m,
        };
        (0..space)
            .map(EdgeId::new)
            .filter(move |e| match &self.delta {
                Some(d) => !d.removed.contains(&e.0),
                None => true,
            })
    }

    /// Node payload (label, types, properties).
    #[inline]
    pub fn node(&self, n: NodeId) -> NodeRef<'_> {
        if let Some(d) = &self.delta {
            if n.index() >= d.base_n {
                let x = &d.extra_nodes[n.index() - d.base_n];
                return NodeRef {
                    label: x.label,
                    types: &x.types,
                    props: &[],
                };
            }
        }
        let label = LabelId(self.node_label.as_slice()[n.index()]);
        let types_raw = &self.type_ids.as_slice()[run(self.type_offsets.as_slice(), n.index())];
        NodeRef {
            label,
            types: cast_words!(types_raw, LabelId, 1),
            props: side_props(&self.node_props, n.0),
        }
    }

    /// Edge payload (endpoints and label). The id must be live: data
    /// for a removed edge is unspecified (base rows linger as
    /// tombstones until compaction).
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeData {
        if let Some(d) = &self.delta {
            if e.index() >= d.base_m {
                return &d.extra_edges[e.index() - d.base_m];
            }
        }
        &cast_words!(self.edge_ndl.as_slice(), EdgeData, 3)[e.index()]
    }

    /// The combined (both-direction) adjacency list of `n` — one
    /// contiguous run of the CSR adjacency column (or its patched
    /// overlay copy), in ascending edge-id order.
    #[inline]
    pub fn adjacent(&self, n: NodeId) -> &[Adj] {
        if let Some(d) = &self.delta {
            if let Some(v) = d.adj.get(&n.0) {
                return v;
            }
            if n.index() >= d.base_n {
                return &[];
            }
        }
        let r = run(self.adj_offsets.as_slice(), n.index());
        &cast_words!(self.adj_pairs.as_slice(), Adj, 2)[r]
    }

    /// The number of incident edges `d_n` (paper §4.6); loops count twice.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        if self.delta.is_some() {
            return self.adjacent(n).len();
        }
        let r = run(self.adj_offsets.as_slice(), n.index());
        r.end - r.start
    }

    /// Outgoing incident entries only.
    pub fn outgoing(&self, n: NodeId) -> impl Iterator<Item = &Adj> {
        self.adjacent(n).iter().filter(|a| a.outgoing())
    }

    /// Incoming incident entries only.
    pub fn incoming(&self, n: NodeId) -> impl Iterator<Item = &Adj> {
        self.adjacent(n).iter().filter(|a| !a.outgoing())
    }

    /// Given an edge and one of its endpoints, returns the other endpoint.
    ///
    /// # Panics
    /// Panics in debug builds if `n` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, n: NodeId) -> NodeId {
        let ed = self.edge(e);
        debug_assert!(ed.src == n || ed.dst == n, "{n:?} not an endpoint of {e:?}");
        if ed.src == n {
            ed.dst
        } else {
            ed.src
        }
    }

    /// The label string of a node.
    pub fn node_label(&self, n: NodeId) -> &str {
        self.interner.resolve(self.node(n).label)
    }

    /// The label string of an edge.
    pub fn edge_label(&self, e: EdgeId) -> &str {
        self.interner.resolve(self.edge(e).label)
    }

    /// The type strings of a node.
    pub fn node_types(&self, n: NodeId) -> impl Iterator<Item = &str> {
        self.node(n).types.iter().map(|&t| self.interner.resolve(t))
    }

    /// A node's sparse properties, sorted by key (empty for most nodes).
    pub fn node_props(&self, n: NodeId) -> &[(LabelId, Value)] {
        side_props(&self.node_props, n.0)
    }

    /// An edge's sparse properties, sorted by key (empty for most edges).
    pub fn edge_props(&self, e: EdgeId) -> &[(LabelId, Value)] {
        side_props(&self.edge_props, e.0)
    }

    /// Looks up an interned label id without inserting.
    pub fn label_id(&self, s: &str) -> Option<LabelId> {
        self.interner.get(s)
    }

    /// Resolves a label id to its string.
    pub fn resolve(&self, l: LabelId) -> &str {
        self.interner.resolve(l)
    }

    /// The shared interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The half-open range of label `l`'s partition in a per-label
    /// offsets column, empty for out-of-universe ids.
    #[inline]
    fn label_run(&self, offsets: &Storage, l: LabelId) -> std::ops::Range<usize> {
        let offsets = offsets.as_slice();
        if l.index() + 1 >= offsets.len() {
            return 0..0;
        }
        run(offsets, l.index())
    }

    /// All edges carrying label `l` (empty slice if none), in ascending
    /// edge-id order.
    pub fn edges_with_label(&self, l: LabelId) -> &[EdgeId] {
        if let Some(d) = &self.delta {
            if let Some(v) = d.elab.get(&l.0) {
                return v;
            }
        }
        let r = self.label_run(&self.elab_offsets, l);
        cast_words!(&self.elab_edges.as_slice()[r], EdgeId, 1)
    }

    /// Edges with label `l` leaving node `n`, in ascending edge-id
    /// order — a binary-searched sub-run of the forward label CSR.
    pub fn out_edges_labelled(&self, n: NodeId, l: LabelId) -> &[EdgeId] {
        if let Some(d) = &self.delta {
            if let Some(run) = d.fwd.get(&l.0) {
                return self.endpoint_group(run, n, false);
            }
        }
        self.labelled_endpoint_run(&self.fwd_edges, l, n, 0)
    }

    /// Edges with label `l` entering node `n`, in ascending edge-id
    /// order — a binary-searched sub-run of the reverse label CSR.
    pub fn in_edges_labelled(&self, n: NodeId, l: LabelId) -> &[EdgeId] {
        if let Some(d) = &self.delta {
            if let Some(run) = d.rev.get(&l.0) {
                return self.endpoint_group(run, n, true);
            }
        }
        self.labelled_endpoint_run(&self.rev_edges, l, n, 1)
    }

    /// Binary search over a patched forward/reverse run (sorted by
    /// endpoint then id) for node `n`'s group; edge payloads may live
    /// in the overlay, so keys go through [`Graph::edge`].
    fn endpoint_group<'a>(&'a self, run: &'a [EdgeId], n: NodeId, use_dst: bool) -> &'a [EdgeId] {
        let key = |e: &EdgeId| {
            let ed = self.edge(*e);
            if use_dst {
                ed.dst.0
            } else {
                ed.src.0
            }
        };
        let lo = run.partition_point(|e| key(e) < n.0);
        let hi = lo + run[lo..].partition_point(|e| key(e) == n.0);
        &run[lo..hi]
    }

    /// The base forward-CSR run of label `l`, ignoring any overlay —
    /// used by the overlay itself to seed patched runs.
    pub(crate) fn base_fwd_run(&self, l: LabelId) -> &[EdgeId] {
        let r = self.label_run(&self.elab_offsets, l);
        cast_words!(&self.fwd_edges.as_slice()[r], EdgeId, 1)
    }

    /// The base reverse-CSR run of label `l`, ignoring any overlay.
    pub(crate) fn base_rev_run(&self, l: LabelId) -> &[EdgeId] {
        let r = self.label_run(&self.elab_offsets, l);
        cast_words!(&self.rev_edges.as_slice()[r], EdgeId, 1)
    }

    /// The group of edges within label `l`'s run of `column` whose
    /// endpoint word (`0` = src, `1` = dst) equals `n`.
    fn labelled_endpoint_run(
        &self,
        column: &Storage,
        l: LabelId,
        n: NodeId,
        endpoint: usize,
    ) -> &[EdgeId] {
        let run = &column.as_slice()[self.label_run(&self.elab_offsets, l)];
        let ndl = self.edge_ndl.as_slice();
        let key = |e: &u32| ndl[*e as usize * 3 + endpoint];
        let lo = run.partition_point(|e| key(e) < n.0);
        let hi = lo + run[lo..].partition_point(|e| key(e) == n.0);
        cast_words!(&run[lo..hi], EdgeId, 1)
    }

    /// All nodes carrying label `l` (empty slice if none), ascending.
    pub fn nodes_with_label(&self, l: LabelId) -> &[NodeId] {
        if let Some(d) = &self.delta {
            if let Some(v) = d.nlab.get(&l.0) {
                return v;
            }
        }
        let r = self.label_run(&self.nlab_offsets, l);
        cast_words!(&self.nlab_nodes.as_slice()[r], NodeId, 1)
    }

    /// All nodes having type `t` (empty slice if none), ascending.
    pub fn nodes_with_type(&self, t: LabelId) -> &[NodeId] {
        if let Some(d) = &self.delta {
            if let Some(v) = d.ntype.get(&t.0) {
                return v;
            }
        }
        let r = self.label_run(&self.ntype_offsets, t);
        cast_words!(&self.ntype_nodes.as_slice()[r], NodeId, 1)
    }

    /// Finds a node by its exact label string — convenient in tests and
    /// examples where labels are unique.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        let l = self.interner.get(label)?;
        self.nodes_with_label(l).first().copied()
    }

    /// Looks up a node property value by key string.
    pub fn node_prop(&self, n: NodeId, key: &str) -> Option<&Value> {
        let k = self.interner.get(key)?;
        lookup_prop(self.node_props(n), k)
    }

    /// Looks up an edge property value by key string.
    pub fn edge_prop(&self, e: EdgeId, key: &str) -> Option<&Value> {
        let k = self.interner.get(key)?;
        lookup_prop(self.edge_props(e), k)
    }

    /// True if the columnar storage is backed by a memory-mapped
    /// snapshot file rather than owned heap buffers.
    pub fn is_memory_mapped(&self) -> bool {
        self.adj_offsets.is_mapped()
    }

    /// The raw CSR columns in serialisation order, with the header
    /// counts — the exact words `binfmt`'s CSR section persists.
    /// Callers must compact first: the columns do not include the
    /// mutation overlay.
    pub(crate) fn csr_columns(&self) -> CsrColumns<'_> {
        debug_assert!(
            self.delta.is_none(),
            "csr_columns on a graph with a pending delta — compact first"
        );
        CsrColumns {
            n: self.n as u32,
            m: self.m as u32,
            t: self.type_ids.as_slice().len() as u32,
            l: self.interner.len() as u32,
            arrays: [
                self.node_label.as_slice(),
                self.type_offsets.as_slice(),
                self.type_ids.as_slice(),
                self.edge_ndl.as_slice(),
                self.adj_offsets.as_slice(),
                self.adj_pairs.as_slice(),
                self.elab_offsets.as_slice(),
                self.elab_edges.as_slice(),
                self.fwd_edges.as_slice(),
                self.rev_edges.as_slice(),
                self.nlab_offsets.as_slice(),
                self.nlab_nodes.as_slice(),
                self.ntype_offsets.as_slice(),
                self.ntype_nodes.as_slice(),
            ],
        }
    }

    /// Swaps in freshly built columns (delta compaction), clearing the
    /// overlay. Generation, log, and threshold are preserved; the
    /// cardinality cache resets (the caller re-seeds it when the
    /// counts are known to be unchanged).
    pub(crate) fn replace_columns(&mut self, parts: GraphParts) {
        self.interner = parts.interner;
        self.n = parts.n;
        self.m = parts.m;
        self.node_label = parts.node_label;
        self.type_offsets = parts.type_offsets;
        self.type_ids = parts.type_ids;
        self.edge_ndl = parts.edge_ndl;
        self.adj_offsets = parts.adj_offsets;
        self.adj_pairs = parts.adj_pairs;
        self.elab_offsets = parts.elab_offsets;
        self.elab_edges = parts.elab_edges;
        self.fwd_edges = parts.fwd_edges;
        self.rev_edges = parts.rev_edges;
        self.nlab_offsets = parts.nlab_offsets;
        self.nlab_nodes = parts.nlab_nodes;
        self.ntype_offsets = parts.ntype_offsets;
        self.ntype_nodes = parts.ntype_nodes;
        self.node_props = parts.node_props;
        self.edge_props = parts.edge_props;
        self.cardinalities = OnceLock::new();
        self.delta = None;
    }

    /// The sparse node-property side table (sorted by node id).
    pub(crate) fn node_prop_table(&self) -> &PropTable {
        &self.node_props
    }

    /// The sparse edge-property side table (sorted by edge id).
    pub(crate) fn edge_prop_table(&self) -> &PropTable {
        &self.edge_props
    }

    /// The cardinality snapshot of this graph, computed on first use
    /// and cached. Consumed by the BGP planner's cost model. Live
    /// graphs keep the snapshot fresh incrementally: each mutation
    /// batch adjusts the cached counts in place instead of recomputing
    /// (see [`crate::mutate`]).
    pub fn cardinalities(&self) -> &Cardinalities {
        self.cardinalities.get_or_init(|| Cardinalities::of(self))
    }

    /// The cached cardinality snapshot, if one has been computed (or
    /// seeded from a snapshot's statistics section) — `None` means the
    /// next [`Graph::cardinalities`] call will pay the full stats pass.
    pub fn cardinalities_if_computed(&self) -> Option<&Cardinalities> {
        self.cardinalities.get()
    }

    /// Seeds the cardinality cache from an externally decoded snapshot
    /// (`cs_graph::binfmt`'s statistics section). A no-op if the
    /// snapshot was already computed.
    pub(crate) fn warm_cardinalities(&self, c: Cardinalities) {
        let _ = self.cardinalities.set(c);
    }

    /// Renders an edge as `src -label-> dst` using node labels; meant for
    /// debugging and example output.
    pub fn describe_edge(&self, e: EdgeId) -> String {
        let ed = self.edge(e);
        format!(
            "{} -{}-> {}",
            self.node_label(ed.src),
            self.resolve(ed.label),
            self.node_label(ed.dst)
        )
    }
}

#[inline]
fn lookup_prop(props: &[(LabelId, Value)], key: LabelId) -> Option<&Value> {
    props
        .binary_search_by_key(&key, |(k, _)| *k)
        .ok()
        .map(|i| &props[i].1)
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::ids::{LabelId, NodeId};

    fn tiny() -> crate::Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("C");
        b.add_edge(a, "knows", c);
        b.add_edge(c, "likes", a);
        b.add_edge(a, "self", a);
        b.freeze()
    }

    #[test]
    fn counts() {
        let g = tiny();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn adjacency_is_bidirectional() {
        let g = tiny();
        let a = g.node_by_label("A").unwrap();
        let c = g.node_by_label("C").unwrap();
        // A: out "knows", in "likes", loop twice.
        assert_eq!(g.degree(a), 4);
        assert_eq!(g.degree(c), 2);
        assert_eq!(g.outgoing(a).count(), 2); // knows + loop-out
        assert_eq!(g.incoming(a).count(), 2); // likes + loop-in
    }

    #[test]
    fn adjacency_runs_ascend_by_edge_id() {
        let g = tiny();
        for n in g.node_ids() {
            let ids: Vec<_> = g.adjacent(n).iter().map(|a| a.edge().0).collect();
            let mut sorted = ids.clone();
            sorted.sort();
            assert_eq!(ids, sorted, "adjacency of {n:?} not in edge-id order");
        }
    }

    #[test]
    fn other_endpoint() {
        let g = tiny();
        let a = g.node_by_label("A").unwrap();
        let c = g.node_by_label("C").unwrap();
        let e = g
            .adjacent(a)
            .iter()
            .find(|x| x.other() == c)
            .unwrap()
            .edge();
        assert_eq!(g.other_endpoint(e, a), c);
        assert_eq!(g.other_endpoint(e, c), a);
    }

    #[test]
    fn label_indexes() {
        let g = tiny();
        let knows = g.label_id("knows").unwrap();
        assert_eq!(g.edges_with_label(knows).len(), 1);
        assert_eq!(g.nodes_with_label(g.label_id("A").unwrap()), &[NodeId(0)]);
        assert!(g.label_id("absent").is_none());
        // Out-of-universe ids yield empty slices, not panics.
        assert!(g.edges_with_label(LabelId(9999)).is_empty());
        assert!(g.nodes_with_type(LabelId(9999)).is_empty());
    }

    #[test]
    fn labelled_directed_runs() {
        let g = tiny();
        let a = g.node_by_label("A").unwrap();
        let c = g.node_by_label("C").unwrap();
        let knows = g.label_id("knows").unwrap();
        let likes = g.label_id("likes").unwrap();
        let selfl = g.label_id("self").unwrap();
        assert_eq!(g.out_edges_labelled(a, knows).len(), 1);
        assert!(g.out_edges_labelled(c, knows).is_empty());
        assert_eq!(
            g.in_edges_labelled(c, knows),
            g.out_edges_labelled(a, knows)
        );
        assert_eq!(g.in_edges_labelled(a, likes).len(), 1);
        // A self-loop is one edge in both directions of its label run.
        assert_eq!(
            g.out_edges_labelled(a, selfl),
            g.in_edges_labelled(a, selfl)
        );
        assert!(g.out_edges_labelled(a, LabelId(9999)).is_empty());
    }

    #[test]
    fn describe_edge() {
        let g = tiny();
        let knows = g.label_id("knows").unwrap();
        let e = g.edges_with_label(knows)[0];
        assert_eq!(g.describe_edge(e), "A -knows-> C");
    }

    #[test]
    fn builder_graphs_are_owned() {
        assert!(!tiny().is_memory_mapped());
    }
}
