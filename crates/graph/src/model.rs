//! The immutable labelled multigraph (paper Def. 2.1).
//!
//! A graph `G(N, E)` has labelled nodes and labelled directed edges; the
//! CTP semantics traverse edges in *both* directions (requirement R3), so
//! the adjacency representation stores, for every node, all incident
//! edges regardless of direction together with a direction flag.

use crate::fxhash::FxHashMap;
use crate::ids::{EdgeId, LabelId, NodeId};
use crate::interner::Interner;
use crate::stats::Cardinalities;
use crate::value::Value;
use std::sync::OnceLock;

/// Per-node payload: label, zero or more types, sparse properties.
#[derive(Debug, Clone)]
pub struct NodeData {
    /// The node label (ε if unlabelled).
    pub label: LabelId,
    /// RDF types / PG labels of the node (paper: "an RDF node may have 0
    /// or more types").
    pub types: Box<[LabelId]>,
    /// Additional properties, sorted by key.
    pub props: Box<[(LabelId, Value)]>,
}

/// Per-edge payload: endpoints, label, sparse properties.
#[derive(Debug, Clone)]
pub struct EdgeData {
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub dst: NodeId,
    /// Edge label (ε if unlabelled).
    pub label: LabelId,
    /// Additional properties, sorted by key.
    pub props: Box<[(LabelId, Value)]>,
}

/// One entry of a node's combined (bidirectional) adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adj {
    /// The incident edge.
    pub edge: EdgeId,
    /// The endpoint on the far side (equals the node itself for loops).
    pub other: NodeId,
    /// True if the edge leaves this node (`src == this`), false if it
    /// enters it. A self-loop appears twice, once per direction.
    pub outgoing: bool,
}

/// An immutable labelled multigraph with bidirectional adjacency and
/// label/type indexes.
///
/// Construct with [`crate::GraphBuilder`]; once frozen, a `Graph` is
/// `Send + Sync` and safely shared across search threads.
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) interner: Interner,
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) edges: Vec<EdgeData>,
    pub(crate) adj: Vec<Box<[Adj]>>,
    pub(crate) edges_by_label: FxHashMap<LabelId, Vec<EdgeId>>,
    pub(crate) nodes_by_label: FxHashMap<LabelId, Vec<NodeId>>,
    pub(crate) nodes_by_type: FxHashMap<LabelId, Vec<NodeId>>,
    pub(crate) cardinalities: OnceLock<Cardinalities>,
}

impl Graph {
    /// Number of nodes |N|.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges |E|.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::new)
    }

    /// Node payload.
    #[inline]
    pub fn node(&self, n: NodeId) -> &NodeData {
        &self.nodes[n.index()]
    }

    /// Edge payload.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeData {
        &self.edges[e.index()]
    }

    /// The combined (both-direction) adjacency list of `n`.
    #[inline]
    pub fn adjacent(&self, n: NodeId) -> &[Adj] {
        &self.adj[n.index()]
    }

    /// The number of incident edges `d_n` (paper §4.6); loops count twice.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// Outgoing incident entries only.
    pub fn outgoing(&self, n: NodeId) -> impl Iterator<Item = &Adj> {
        self.adjacent(n).iter().filter(|a| a.outgoing)
    }

    /// Incoming incident entries only.
    pub fn incoming(&self, n: NodeId) -> impl Iterator<Item = &Adj> {
        self.adjacent(n).iter().filter(|a| !a.outgoing)
    }

    /// Given an edge and one of its endpoints, returns the other endpoint.
    ///
    /// # Panics
    /// Panics in debug builds if `n` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, n: NodeId) -> NodeId {
        let ed = self.edge(e);
        debug_assert!(ed.src == n || ed.dst == n, "{n:?} not an endpoint of {e:?}");
        if ed.src == n {
            ed.dst
        } else {
            ed.src
        }
    }

    /// The label string of a node.
    pub fn node_label(&self, n: NodeId) -> &str {
        self.interner.resolve(self.node(n).label)
    }

    /// The label string of an edge.
    pub fn edge_label(&self, e: EdgeId) -> &str {
        self.interner.resolve(self.edge(e).label)
    }

    /// The type strings of a node.
    pub fn node_types(&self, n: NodeId) -> impl Iterator<Item = &str> {
        self.node(n).types.iter().map(|&t| self.interner.resolve(t))
    }

    /// Looks up an interned label id without inserting.
    pub fn label_id(&self, s: &str) -> Option<LabelId> {
        self.interner.get(s)
    }

    /// Resolves a label id to its string.
    pub fn resolve(&self, l: LabelId) -> &str {
        self.interner.resolve(l)
    }

    /// The shared interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// All edges carrying label `l` (empty slice if none).
    pub fn edges_with_label(&self, l: LabelId) -> &[EdgeId] {
        self.edges_by_label
            .get(&l)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All nodes carrying label `l` (empty slice if none).
    pub fn nodes_with_label(&self, l: LabelId) -> &[NodeId] {
        self.nodes_by_label
            .get(&l)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All nodes having type `t` (empty slice if none).
    pub fn nodes_with_type(&self, t: LabelId) -> &[NodeId] {
        self.nodes_by_type.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Finds a node by its exact label string — convenient in tests and
    /// examples where labels are unique.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        let l = self.interner.get(label)?;
        self.nodes_with_label(l).first().copied()
    }

    /// Looks up a node property value by key string.
    pub fn node_prop(&self, n: NodeId, key: &str) -> Option<&Value> {
        let k = self.interner.get(key)?;
        lookup_prop(&self.node(n).props, k)
    }

    /// Looks up an edge property value by key string.
    pub fn edge_prop(&self, e: EdgeId, key: &str) -> Option<&Value> {
        let k = self.interner.get(key)?;
        lookup_prop(&self.edge(e).props, k)
    }

    /// The cardinality snapshot of this graph, computed on first use
    /// and cached for the graph's lifetime (the graph is immutable).
    /// Consumed by the BGP planner's cost model.
    pub fn cardinalities(&self) -> &Cardinalities {
        self.cardinalities.get_or_init(|| Cardinalities::of(self))
    }

    /// The cached cardinality snapshot, if one has been computed (or
    /// seeded from a snapshot's statistics section) — `None` means the
    /// next [`Graph::cardinalities`] call will pay the full stats pass.
    pub fn cardinalities_if_computed(&self) -> Option<&Cardinalities> {
        self.cardinalities.get()
    }

    /// Seeds the cardinality cache from an externally decoded snapshot
    /// (`cs_graph::binfmt`'s statistics section). A no-op if the
    /// snapshot was already computed.
    pub(crate) fn warm_cardinalities(&self, c: Cardinalities) {
        let _ = self.cardinalities.set(c);
    }

    /// Renders an edge as `src -label-> dst` using node labels; meant for
    /// debugging and example output.
    pub fn describe_edge(&self, e: EdgeId) -> String {
        let ed = self.edge(e);
        format!(
            "{} -{}-> {}",
            self.node_label(ed.src),
            self.resolve(ed.label),
            self.node_label(ed.dst)
        )
    }
}

#[inline]
fn lookup_prop(props: &[(LabelId, Value)], key: LabelId) -> Option<&Value> {
    props
        .binary_search_by_key(&key, |(k, _)| *k)
        .ok()
        .map(|i| &props[i].1)
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::ids::NodeId;

    fn tiny() -> crate::Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("C");
        b.add_edge(a, "knows", c);
        b.add_edge(c, "likes", a);
        b.add_edge(a, "self", a);
        b.freeze()
    }

    #[test]
    fn counts() {
        let g = tiny();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn adjacency_is_bidirectional() {
        let g = tiny();
        let a = g.node_by_label("A").unwrap();
        let c = g.node_by_label("C").unwrap();
        // A: out "knows", in "likes", loop twice.
        assert_eq!(g.degree(a), 4);
        assert_eq!(g.degree(c), 2);
        assert_eq!(g.outgoing(a).count(), 2); // knows + loop-out
        assert_eq!(g.incoming(a).count(), 2); // likes + loop-in
    }

    #[test]
    fn other_endpoint() {
        let g = tiny();
        let a = g.node_by_label("A").unwrap();
        let c = g.node_by_label("C").unwrap();
        let e = g.adjacent(a).iter().find(|x| x.other == c).unwrap().edge;
        assert_eq!(g.other_endpoint(e, a), c);
        assert_eq!(g.other_endpoint(e, c), a);
    }

    #[test]
    fn label_indexes() {
        let g = tiny();
        let knows = g.label_id("knows").unwrap();
        assert_eq!(g.edges_with_label(knows).len(), 1);
        assert_eq!(g.nodes_with_label(g.label_id("A").unwrap()), &[NodeId(0)]);
        assert!(g.label_id("absent").is_none());
    }

    #[test]
    fn describe_edge() {
        let g = tiny();
        let knows = g.label_id("knows").unwrap();
        let e = g.edges_with_label(knows)[0];
        assert_eq!(g.describe_edge(e), "A -knows-> C");
    }
}
