//! Compact integer identifiers for graph entities.
//!
//! All identifiers are `u32` newtypes: graphs with up to 4 billion nodes,
//! edges, or distinct labels are supported, while halving the memory
//! footprint of adjacency lists and tree edge sets compared to `usize`
//! on 64-bit platforms (see the type-sizes guidance in the Rust
//! Performance Book).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in `u32`.
            #[inline]
            pub fn new(idx: usize) -> Self {
                debug_assert!(idx <= u32::MAX as usize, "identifier overflow");
                $name(idx as u32)
            }

            /// Returns the identifier as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifier of a node in a [`crate::Graph`].
    NodeId,
    "n"
);
id_type!(
    /// Identifier of an edge in a [`crate::Graph`].
    EdgeId,
    "e"
);
id_type!(
    /// Identifier of an interned label string.
    LabelId,
    "l"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
        assert_eq!(format!("{n:?}"), "n42");
        assert_eq!(format!("{n}"), "42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(EdgeId(1) < EdgeId(2));
        assert!(LabelId(0) < LabelId(10));
    }

    #[test]
    fn from_u32() {
        let e: EdgeId = 7u32.into();
        assert_eq!(e, EdgeId(7));
    }
}
