//! Connected Dense Forest (CDF) graphs (paper Figure 9, §5.3), used to
//! evaluate the extended query language end-to-end.
//!
//! A CDF has a *top forest* and a *bottom forest*, each `NT` disjoint
//! complete binary trees of depth 3 (7 nodes, 6 edges). `NL` links, each
//! of `SL` triples, connect eligible top leaves to eligible bottom
//! leaves: a chain when `m = 2`, a Y-shaped connection to two bottom
//! leaves when `m = 3`.
//!
//! Eligibility (paper): only top leaves that are targets of `c` edges
//! participate, and links are concentrated on 50% of them. For `m = 2`
//! only 50% of `g`-edge-target bottom leaves participate; for `m = 3`,
//! 50% of all bottom leaves.

use super::Workload;
use crate::builder::GraphBuilder;
use crate::ids::NodeId;
use crate::model::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a CDF graph.
#[derive(Debug, Clone, Copy)]
pub struct CdfParams {
    /// Arity of the benchmark CTP: 2 (chain links) or 3 (Y links).
    pub m: usize,
    /// Number of trees in each forest.
    pub n_t: usize,
    /// Number of links.
    pub n_l: usize,
    /// Triples per link.
    pub s_l: usize,
    /// RNG seed for link placement.
    pub seed: u64,
}

/// A generated CDF graph plus the ground-truth link endpoints (one
/// CTP answer per link).
#[derive(Debug, Clone)]
pub struct CdfGraph {
    /// The data graph.
    pub graph: Graph,
    /// For each link: `[top_leaf, bottom_leaf]` (m=2) or
    /// `[top_leaf, bottom_leaf_1, bottom_leaf_2]` (m=3).
    pub links: Vec<Vec<NodeId>>,
}

impl CdfGraph {
    /// Converts to a [`Workload`] whose seed sets are the distinct nodes
    /// appearing in each link position.
    pub fn workload(&self) -> Workload {
        let m = self.links.first().map(Vec::len).unwrap_or(0);
        let mut seeds = vec![Vec::new(); m];
        for link in &self.links {
            for (i, &n) in link.iter().enumerate() {
                if !seeds[i].contains(&n) {
                    seeds[i].push(n);
                }
            }
        }
        Workload {
            graph: self.graph.clone(),
            seeds,
        }
    }
}

struct Tree {
    /// The 4 leaves in order [c-target, d-target, c-target, d-target].
    leaves: [NodeId; 4],
}

/// Builds one complete depth-3 binary tree; `labels` = (level-1 pair,
/// level-2 pair), e.g. `(("a","b"), ("c","d"))` for top trees.
fn build_tree(
    b: &mut GraphBuilder,
    idx: usize,
    forest: &str,
    labels: ((&str, &str), (&str, &str)),
) -> Tree {
    let root = b.add_node(&format!("{forest}{idx}"));
    let i1 = b.add_node(&format!("{forest}{idx}.L"));
    let i2 = b.add_node(&format!("{forest}{idx}.R"));
    b.add_edge(root, labels.0 .0, i1);
    b.add_edge(root, labels.0 .1, i2);
    let mut leaves = [root; 4];
    for (k, (parent, suffix)) in [(i1, "LL"), (i1, "LR"), (i2, "RL"), (i2, "RR")]
        .into_iter()
        .enumerate()
    {
        let leaf = b.add_node(&format!("{forest}{idx}.{suffix}"));
        let label = if k % 2 == 0 { labels.1 .0 } else { labels.1 .1 };
        b.add_edge(parent, label, leaf);
        leaves[k] = leaf;
    }
    Tree { leaves }
}

/// Generates a CDF graph.
///
/// # Panics
/// Panics unless `m ∈ {2, 3}`, `n_t ≥ 1`, and `s_l ≥ 3` when `m = 3`
/// (a Y needs a stem plus two arms) or `s_l ≥ 1` when `m = 2`.
pub fn cdf(p: &CdfParams) -> CdfGraph {
    assert!(p.m == 2 || p.m == 3, "CDF supports m in {{2,3}}");
    assert!(p.n_t >= 1);
    if p.m == 3 {
        assert!(p.s_l >= 3, "Y-links need s_l >= 3");
    } else {
        assert!(p.s_l >= 1);
    }

    let mut b = GraphBuilder::new();
    let mut rng = StdRng::seed_from_u64(p.seed);

    let top: Vec<Tree> = (0..p.n_t)
        .map(|i| build_tree(&mut b, i, "T", (("a", "b"), ("c", "d"))))
        .collect();
    let bottom: Vec<Tree> = (0..p.n_t)
        .map(|i| build_tree(&mut b, i, "B", (("e", "f"), ("g", "h"))))
        .collect();

    // Eligible top leaves: c-targets are leaves 0 and 2; concentrate the
    // links on 50% of them — the first c-target of each tree.
    let top_eligible: Vec<NodeId> = top.iter().map(|t| t.leaves[0]).collect();
    // Eligible bottom leaves.
    let bottom_eligible: Vec<NodeId> = if p.m == 2 {
        // 50% of g-targets (leaves 0 and 2): take leaf 0 of each tree.
        bottom.iter().map(|t| t.leaves[0]).collect()
    } else {
        // 50% of all bottom leaves: take the g-targets (2 of 4 per tree),
        // which are exactly the leaves reached by a `g` edge — matching
        // the m=3 query's BGPs (v,"g",bl1),(v,"h",bl2) needing a g/h
        // sibling pair under a shared parent.
        bottom
            .iter()
            .flat_map(|t| [t.leaves[0], t.leaves[2]])
            .collect()
    };

    let mut links = Vec::with_capacity(p.n_l);
    let mut inter = 0usize;
    for _ in 0..p.n_l {
        let tl = top_eligible[rng.gen_range(0..top_eligible.len())];
        if p.m == 2 {
            // Chain of s_l edges: tl -> x1 -> ... -> bl.
            let bl = bottom_eligible[rng.gen_range(0..bottom_eligible.len())];
            let mut prev = tl;
            for _ in 0..(p.s_l - 1) {
                inter += 1;
                let x = b.add_node(&format!("k{inter}"));
                b.add_edge(prev, "link", x);
                prev = x;
            }
            b.add_edge(prev, "link", bl);
            links.push(vec![tl, bl]);
        } else {
            // Y: stem of s_l - 2 edges to a junction, then one edge to
            // each of two bottom leaves that are g/h siblings (so the
            // query's BGPs bind them under a common parent v).
            let bi = rng.gen_range(0..bottom_eligible.len());
            let bl1 = bottom_eligible[bi];
            // The h-sibling of a g-target leaf is the next leaf index.
            let tree_idx = bi / 2;
            let leaf_slot = if bi % 2 == 0 { 1 } else { 3 };
            let bl2 = bottom[tree_idx].leaves[leaf_slot];
            let mut prev = tl;
            for _ in 0..(p.s_l - 2) {
                inter += 1;
                let x = b.add_node(&format!("k{inter}"));
                b.add_edge(prev, "link", x);
                prev = x;
            }
            b.add_edge(prev, "link", bl1);
            b.add_edge(prev, "link", bl2);
            links.push(vec![tl, bl1, bl2]);
        }
    }

    CdfGraph {
        graph: b.freeze(),
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m2_counts_match_paper_formulas() {
        let p = CdfParams {
            m: 2,
            n_t: 4,
            n_l: 10,
            s_l: 3,
            seed: 1,
        };
        let g = cdf(&p);
        // Edges: 12·NT + NL·SL.
        assert_eq!(g.graph.edge_count(), 12 * 4 + 10 * 3);
        // Nodes: 14·NT + NL·(SL-1).
        assert_eq!(g.graph.node_count(), 14 * 4 + 10 * 2);
        assert_eq!(g.links.len(), 10);
    }

    #[test]
    fn m3_edge_count() {
        let p = CdfParams {
            m: 3,
            n_t: 3,
            n_l: 7,
            s_l: 3,
            seed: 2,
        };
        let g = cdf(&p);
        assert_eq!(g.graph.edge_count(), 12 * 3 + 7 * 3);
        assert_eq!(g.links.len(), 7);
        for link in &g.links {
            assert_eq!(link.len(), 3);
            assert_ne!(link[1], link[2]);
        }
    }

    #[test]
    fn links_start_at_c_targets() {
        let p = CdfParams {
            m: 2,
            n_t: 2,
            n_l: 5,
            s_l: 3,
            seed: 3,
        };
        let g = cdf(&p);
        let c = g.graph.label_id("c").unwrap();
        for link in &g.links {
            let tl = link[0];
            let is_c_target = g
                .graph
                .incoming(tl)
                .any(|a| g.graph.edge(a.edge()).label == c);
            assert!(is_c_target);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = CdfParams {
            m: 2,
            n_t: 3,
            n_l: 8,
            s_l: 4,
            seed: 42,
        };
        let a = cdf(&p);
        let b = cdf(&p);
        assert_eq!(a.links, b.links);
    }

    #[test]
    fn workload_groups_links() {
        let p = CdfParams {
            m: 3,
            n_t: 2,
            n_l: 4,
            s_l: 3,
            seed: 5,
        };
        let g = cdf(&p);
        let w = g.workload();
        assert_eq!(w.m(), 3);
        assert!(!w.seeds[0].is_empty());
    }
}
