//! Scale-free labelled graphs substituting for the paper's 18M-triple
//! DBPedia subset (Fig. 12), plus CTP workload sampling substituting for
//! the 312 QGSTP keyword queries.
//!
//! Real knowledge graphs have heavy-tailed degree distributions; we use
//! Barabási–Albert preferential attachment, with edge labels drawn from
//! a Zipf-like distribution over a configurable vocabulary (a handful of
//! labels cover most triples, as in DBPedia), and node types likewise.

use super::Workload;
use crate::builder::GraphBuilder;
use crate::ids::NodeId;
use crate::model::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`scale_free`].
#[derive(Debug, Clone, Copy)]
pub struct ScaleFreeParams {
    /// Total number of nodes.
    pub nodes: usize,
    /// Edges attached per arriving node (BA parameter).
    pub edges_per_node: usize,
    /// Size of the edge-label vocabulary.
    pub labels: usize,
    /// Size of the node-type vocabulary.
    pub types: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScaleFreeParams {
    fn default() -> Self {
        ScaleFreeParams {
            nodes: 10_000,
            edges_per_node: 3,
            labels: 50,
            types: 20,
            seed: 0xDB9ED1A,
        }
    }
}

/// Zipf-ish index sampler: picks `i` with probability ∝ 1/(i+1).
fn zipf(rng: &mut StdRng, n: usize) -> usize {
    // Inverse-CDF on harmonic weights, O(n) precompute avoided by
    // rejection from a log-uniform proposal; for small vocabularies a
    // simple cumulative scan is fine and exact.
    debug_assert!(n >= 1);
    let h: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let mut u = rng.gen::<f64>() * h;
    for i in 0..n {
        u -= 1.0 / (i + 1) as f64;
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Generates a scale-free labelled graph via preferential attachment.
///
/// Each arriving node connects to `edges_per_node` targets chosen
/// proportionally to current degree (with random edge direction), gets a
/// label `v<i>`, and one type drawn Zipf-style from the type vocabulary.
pub fn scale_free(p: &ScaleFreeParams) -> Graph {
    assert!(p.nodes >= 2 && p.edges_per_node >= 1 && p.labels >= 1 && p.types >= 1);
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut b = GraphBuilder::with_capacity(p.nodes, p.nodes * p.edges_per_node);

    let type_names: Vec<String> = (0..p.types).map(|i| format!("type{i}")).collect();
    let label_names: Vec<String> = (0..p.labels).map(|i| format!("rel{i}")).collect();

    // `targets` holds one entry per edge endpoint: sampling uniformly
    // from it is sampling proportionally to degree.
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * p.nodes * p.edges_per_node);
    let mut nodes: Vec<NodeId> = Vec::with_capacity(p.nodes);

    for i in 0..p.nodes {
        let ty = &type_names[zipf(&mut rng, p.types)];
        let n = b.add_typed_node(&format!("v{i}"), &[ty]);
        nodes.push(n);
        if i == 0 {
            continue;
        }
        let k = p.edges_per_node.min(i);
        for _ in 0..k {
            let peer = if targets.is_empty() || rng.gen_bool(0.1) {
                // Small uniform component keeps early graphs connected
                // and adds label heterogeneity.
                nodes[rng.gen_range(0..i)]
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if peer == n {
                continue;
            }
            let l = &label_names[zipf(&mut rng, p.labels)];
            if rng.gen_bool(0.5) {
                b.add_edge(n, l, peer);
            } else {
                b.add_edge(peer, l, n);
            }
            targets.push(n);
            targets.push(peer);
        }
    }
    b.freeze()
}

/// Samples a CTP workload on an arbitrary graph: `m` singleton seed sets
/// whose nodes lie within `radius` (undirected) hops of a random centre,
/// guaranteeing connecting trees exist nearby. Returns `None` if the
/// centre's `radius`-ball holds fewer than `m` distinct nodes.
pub fn sample_ctp_seeds(g: &Graph, m: usize, radius: usize, rng: &mut StdRng) -> Option<Workload> {
    assert!(m >= 2);
    let centre = NodeId::new(rng.gen_range(0..g.node_count()));
    // BFS ball around the centre.
    let mut ball = vec![centre];
    let mut seen = vec![false; g.node_count()];
    seen[centre.index()] = true;
    let mut frontier = vec![centre];
    for _ in 0..radius {
        let mut next = Vec::new();
        for &n in &frontier {
            for a in g.adjacent(n) {
                if !seen[a.other().index()] {
                    seen[a.other().index()] = true;
                    next.push(a.other());
                    ball.push(a.other());
                }
            }
        }
        frontier = next;
    }
    if ball.len() < m {
        return None;
    }
    // Draw m distinct nodes from the ball.
    let mut picked = Vec::with_capacity(m);
    while picked.len() < m {
        let n = ball[rng.gen_range(0..ball.len())];
        if !picked.contains(&n) {
            picked.push(n);
        }
    }
    Some(Workload {
        graph: g.clone(),
        seeds: picked.into_iter().map(|n| vec![n]).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleFreeParams {
        ScaleFreeParams {
            nodes: 500,
            edges_per_node: 3,
            labels: 10,
            types: 5,
            seed: 9,
        }
    }

    #[test]
    fn deterministic() {
        let a = scale_free(&small());
        let b = scale_free(&small());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn heavy_tail() {
        let g = scale_free(&small());
        let max_deg = g.node_ids().map(|n| g.degree(n)).max().unwrap();
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        // A hub should far exceed the average degree.
        assert!(
            max_deg as f64 > 4.0 * avg,
            "max {max_deg} vs avg {avg:.1}: not heavy-tailed"
        );
    }

    #[test]
    fn labels_zipf_skewed() {
        let g = scale_free(&small());
        let rel0 = g.label_id("rel0").unwrap();
        let rel9 = g.label_id("rel9");
        let n0 = g.edges_with_label(rel0).len();
        let n9 = rel9.map(|l| g.edges_with_label(l).len()).unwrap_or(0);
        assert!(n0 > n9, "rel0 ({n0}) should dominate rel9 ({n9})");
    }

    #[test]
    fn workload_sampling() {
        let g = scale_free(&small());
        let mut rng = StdRng::seed_from_u64(1);
        let w = sample_ctp_seeds(&g, 3, 3, &mut rng).expect("ball big enough");
        assert_eq!(w.m(), 3);
        let all: Vec<_> = w.seeds.iter().map(|s| s[0]).collect();
        assert_eq!(
            all.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
