//! A typed-entity knowledge graph substituting for the paper's 6M-triple
//! YAGO3 subset (Table 1).
//!
//! The graph has four entity strata — places, organisations, works, and
//! a (much larger) person stratum — wired with typed relations. What
//! Table 1 stresses is *seed-set cardinality*: query J2 has one very
//! large seed set (here: all persons), and J3 has an `N` seed set (all
//! nodes). The person stratum is deliberately the dominant share of the
//! graph so those cardinality ratios match the experiment's intent.

use crate::builder::GraphBuilder;
use crate::model::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`yago_like`].
#[derive(Debug, Clone, Copy)]
pub struct YagoLikeParams {
    /// Number of person entities (the large stratum).
    pub persons: usize,
    /// Number of organisations.
    pub organisations: usize,
    /// Number of places.
    pub places: usize,
    /// Number of creative works.
    pub works: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YagoLikeParams {
    fn default() -> Self {
        YagoLikeParams {
            persons: 20_000,
            organisations: 1_000,
            places: 300,
            works: 3_000,
            seed: 0x9A90,
        }
    }
}

/// Generates the typed entity graph. Relations (all directed):
///
/// * `bornIn`, `livesIn`: person → place
/// * `citizenOf`: person → place (country-ish subset)
/// * `worksFor`: person → organisation
/// * `created`: person → work
/// * `knows`, `marriedTo`: person → person
/// * `locatedIn`: organisation → place
/// * `about`: work → place
pub fn yago_like(p: &YagoLikeParams) -> Graph {
    assert!(p.persons >= 10 && p.organisations >= 2 && p.places >= 2 && p.works >= 2);
    let mut rng = StdRng::seed_from_u64(p.seed);
    let est_edges = p.persons * 5 + p.organisations + p.works;
    let mut b =
        GraphBuilder::with_capacity(p.persons + p.organisations + p.places + p.works, est_edges);

    let places: Vec<_> = (0..p.places)
        .map(|i| b.add_typed_node(&format!("place{i}"), &["place"]))
        .collect();
    // The first 10% of places act as countries for citizenOf.
    let countries = &places[..(p.places / 10).max(1)];
    let orgs: Vec<_> = (0..p.organisations)
        .map(|i| b.add_typed_node(&format!("org{i}"), &["organisation"]))
        .collect();
    let works: Vec<_> = (0..p.works)
        .map(|i| b.add_typed_node(&format!("work{i}"), &["work"]))
        .collect();
    let persons: Vec<_> = (0..p.persons)
        .map(|i| b.add_typed_node(&format!("person{i}"), &["person"]))
        .collect();

    for &o in &orgs {
        let pl = places[rng.gen_range(0..places.len())];
        b.add_edge(o, "locatedIn", pl);
    }
    for &w in &works {
        if rng.gen_bool(0.5) {
            let pl = places[rng.gen_range(0..places.len())];
            b.add_edge(w, "about", pl);
        }
    }
    for (i, &pe) in persons.iter().enumerate() {
        b.add_edge(pe, "bornIn", places[rng.gen_range(0..places.len())]);
        if rng.gen_bool(0.8) {
            b.add_edge(pe, "livesIn", places[rng.gen_range(0..places.len())]);
        }
        b.add_edge(
            pe,
            "citizenOf",
            countries[rng.gen_range(0..countries.len())],
        );
        if rng.gen_bool(0.7) {
            b.add_edge(pe, "worksFor", orgs[rng.gen_range(0..orgs.len())]);
        }
        if rng.gen_bool(0.3) {
            b.add_edge(pe, "created", works[rng.gen_range(0..works.len())]);
        }
        // Social edges to earlier persons (preferential-ish: earlier
        // persons accumulate more `knows` in-edges).
        if i > 0 {
            let friends = rng.gen_range(0..3);
            for _ in 0..friends {
                let j = rng.gen_range(0..i);
                b.add_edge(pe, "knows", persons[j]);
            }
            if rng.gen_bool(0.2) {
                let j = rng.gen_range(0..i);
                b.add_edge(pe, "marriedTo", persons[j]);
            }
        }
    }
    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> YagoLikeParams {
        YagoLikeParams {
            persons: 400,
            organisations: 30,
            places: 20,
            works: 50,
            seed: 11,
        }
    }

    #[test]
    fn strata_sizes() {
        let g = yago_like(&small());
        let person = g.label_id("person").unwrap();
        let org = g.label_id("organisation").unwrap();
        assert_eq!(g.nodes_with_type(person).len(), 400);
        assert_eq!(g.nodes_with_type(org).len(), 30);
    }

    #[test]
    fn person_stratum_dominates() {
        let g = yago_like(&small());
        let person = g.label_id("person").unwrap();
        assert!(g.nodes_with_type(person).len() * 2 > g.node_count());
    }

    #[test]
    fn relations_typed_correctly() {
        let g = yago_like(&small());
        let born = g.label_id("bornIn").unwrap();
        for &e in g.edges_with_label(born) {
            let ed = g.edge(e);
            assert!(g.node_types(ed.src).any(|t| t == "person"));
            assert!(g.node_types(ed.dst).any(|t| t == "place"));
        }
    }

    #[test]
    fn deterministic() {
        let a = yago_like(&small());
        let b = yago_like(&small());
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
