//! Parameterised graph generators for the paper's synthetic benchmarks
//! (§5.3, Figures 2, 8, 9) plus random graphs for property-based tests
//! and scale-free / typed-entity graphs substituting for the paper's
//! DBPedia and YAGO3 subsets (see DESIGN.md §2).

mod cdf;
mod chain;
mod comb;
mod line;
mod random;
mod scale_free;
mod spec;
mod star;
mod yago_like;

pub use cdf::{cdf, CdfParams};
pub use chain::chain;
pub use comb::comb;
pub use line::line;
pub use random::{gnp, random_connected};
pub use scale_free::{sample_ctp_seeds, scale_free, ScaleFreeParams};
pub use spec::{from_spec, SpecError};
pub use star::star;
pub use yago_like::{yago_like, YagoLikeParams};

use crate::ids::NodeId;
use crate::model::Graph;

/// A generated graph together with the seed sets of the benchmark CTP
/// defined on it (each synthetic benchmark in the paper runs "a CTP
/// defined by the m seeds").
#[derive(Debug, Clone)]
pub struct Workload {
    /// The data graph.
    pub graph: Graph,
    /// One seed set per CTP position; in the synthetic benchmarks each
    /// has size 1.
    pub seeds: Vec<Vec<NodeId>>,
}

impl Workload {
    /// Number of seed sets m.
    pub fn m(&self) -> usize {
        self.seeds.len()
    }
}

/// Label for the i-th seed: `A`, `B`, …, `Z`, `S26`, `S27`, …
pub(crate) fn seed_label(i: usize) -> String {
    if i < 26 {
        ((b'A' + i as u8) as char).to_string()
    } else {
        format!("S{i}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_labels() {
        assert_eq!(seed_label(0), "A");
        assert_eq!(seed_label(25), "Z");
        assert_eq!(seed_label(26), "S26");
    }
}
