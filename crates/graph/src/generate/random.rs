//! Random graphs for property-based testing of the search algorithms.
//!
//! Completeness properties (P3, P8, …) are checked by comparing a
//! pruned algorithm's result set against the exhaustive BFT reference on
//! many small random graphs; these generators provide them with
//! deterministic seeds.

use crate::builder::GraphBuilder;
use crate::ids::NodeId;
use crate::model::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`: each ordered pair gets a directed edge with
/// probability `p`. Labels: nodes `n0..`, edges sampled from a small
/// vocabulary (`r0..r3`) so LABEL filters have something to select.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| b.add_node(&format!("n{i}"))).collect();
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(p) {
                let l = format!("r{}", rng.gen_range(0..4u8));
                b.add_edge(nodes[i], &l, nodes[j]);
            }
        }
    }
    b.freeze()
}

/// A connected random graph: a uniformly random spanning tree plus
/// `extra` additional random edges (possibly parallel). Guaranteed
/// connected, so CTPs on it always have at least one result.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| b.add_node(&format!("n{i}"))).collect();
    // Random attachment tree: node i attaches to a uniform predecessor.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let l = format!("r{}", rng.gen_range(0..4u8));
        // Random orientation (the CTP semantics are direction-blind).
        if rng.gen_bool(0.5) {
            b.add_edge(nodes[j], &l, nodes[i]);
        } else {
            b.add_edge(nodes[i], &l, nodes[j]);
        }
    }
    for _ in 0..extra {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let l = format!("r{}", rng.gen_range(0..4u8));
        b.add_edge(nodes[i], &l, nodes[j]);
    }
    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_determinism() {
        let a = gnp(20, 0.2, 7);
        let b = gnp(20, 0.2, 7);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.node_count(), 20);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(5, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(5, 1.0, 1).edge_count(), 20); // n(n-1)
    }

    #[test]
    fn random_connected_is_connected() {
        let g = random_connected(30, 10, 3);
        // BFS over undirected adjacency must reach all nodes.
        let mut seen = vec![false; g.node_count()];
        let mut stack = vec![crate::ids::NodeId(0)];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for a in g.adjacent(n) {
                if !seen[a.other().index()] {
                    seen[a.other().index()] = true;
                    stack.push(a.other());
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_connected_min_edges() {
        let g = random_connected(10, 0, 5);
        assert_eq!(g.edge_count(), 9);
    }
}
