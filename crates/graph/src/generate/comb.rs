//! Comb graphs (paper Figure 8, top left): a main line of `nA` anchor
//! seeds, each with a lateral *bristle* of `nS` segments; each segment
//! has `sL` edges and ends in another seed. `dBA` intermediate nodes
//! separate successive anchors on the main line.
//!
//! Number of seeds: `m = nA · (nS + 1)`.

use super::{seed_label, Workload};
use crate::builder::GraphBuilder;

/// Generates `Comb(n_a, n_s, s_l, d_ba)`.
///
/// Seeds are labelled `A`, `B`, … in order: anchors first along the main
/// line interleaved with their bristle seeds (anchor 0, its bristle
/// seeds, anchor 1, …). All edges are labelled `r`.
///
/// # Panics
/// Panics if `n_a < 2` (need at least two anchors for a line),
/// `s_l == 0`, or the total seed count is below 2.
pub fn comb(n_a: usize, n_s: usize, s_l: usize, d_ba: usize) -> Workload {
    assert!(n_a >= 2, "a Comb needs at least 2 anchors");
    assert!(s_l >= 1, "bristle segments need at least one edge");
    let m = n_a * (n_s + 1);
    assert!(m >= 2);

    let mut b = GraphBuilder::new();
    let mut seeds = Vec::with_capacity(m);
    let mut inter = 0usize;
    let mut seed_idx = 0usize;
    let mut prev_anchor = None;

    for _ in 0..n_a {
        // Anchor seed on the main line.
        let anchor = b.add_node(&seed_label(seed_idx));
        seed_idx += 1;
        seeds.push(vec![anchor]);
        if let Some(pa) = prev_anchor {
            // Main-line connection: d_ba intermediates between anchors.
            let mut prev = pa;
            for _ in 0..d_ba {
                inter += 1;
                let x = b.add_node(&inter.to_string());
                b.add_edge(prev, "r", x);
                prev = x;
            }
            b.add_edge(prev, "r", anchor);
        }
        prev_anchor = Some(anchor);

        // The bristle: n_s segments of s_l edges, each ending in a seed.
        let mut prev = anchor;
        for _ in 0..n_s {
            for _ in 0..(s_l - 1) {
                inter += 1;
                let x = b.add_node(&inter.to_string());
                b.add_edge(prev, "r", x);
                prev = x;
            }
            let seg_seed = b.add_node(&seed_label(seed_idx));
            seed_idx += 1;
            b.add_edge(prev, "r", seg_seed);
            seeds.push(vec![seg_seed]);
            prev = seg_seed;
        }
    }

    Workload {
        graph: b.freeze(),
        seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_count_formula() {
        for (na, ns) in [(2, 1), (3, 1), (4, 2), (6, 2)] {
            let w = comb(na, ns, 2, 1);
            assert_eq!(w.m(), na * (ns + 1), "nA={na} nS={ns}");
        }
    }

    #[test]
    fn figure8_comb() {
        // Comb(3, 1, 2, 3): 3 anchors, 1 segment each of 2 edges,
        // 3 intermediates between anchors.
        let w = comb(3, 1, 2, 3);
        assert_eq!(w.m(), 6);
        // Nodes: 6 seeds + 2*(3 between-anchor intermediates)
        //        + 3 bristles * 1 intermediate (sL-1) = 6 + 6 + 3 = 15.
        assert_eq!(w.graph.node_count(), 15);
        // Edges: main line 2*(3+1) + bristles 3*2 = 14.
        assert_eq!(w.graph.edge_count(), 14);
    }

    #[test]
    fn connected_and_tree_shaped() {
        let w = comb(4, 2, 3, 1);
        let g = &w.graph;
        // A comb is a tree: |E| = |N| - 1.
        assert_eq!(g.edge_count(), g.node_count() - 1);
    }

    #[test]
    fn anchors_have_bristles() {
        let w = comb(2, 1, 1, 0);
        let g = &w.graph;
        // Anchor A connects to B's anchor and its bristle seed: degree 2;
        // bristle ends are leaves.
        let a = g.node_by_label("A").unwrap();
        assert_eq!(g.degree(a), 2);
    }
}
