//! The "chain" graph of paper Figure 2: N+1 nodes in a line with two
//! parallel edges (labelled `a` and `b`) between each consecutive pair.
//!
//! The CTP `(1, N+1, v3)` asking for all connections between the two end
//! nodes has exactly `2^N` results — the paper's witness that complete
//! CTP computation can be exponential, motivating CTP filters.

use super::Workload;
use crate::builder::GraphBuilder;

/// Generates the chain with `n` node pairs (`n + 1` nodes, `2n` edges).
/// Seeds are the two extremities.
///
/// # Panics
/// Panics if `n == 0`.
pub fn chain(n: usize) -> Workload {
    assert!(n >= 1);
    let mut b = GraphBuilder::new();
    let mut prev = b.add_node("1");
    let first = prev;
    for i in 1..=n {
        let x = b.add_node(&(i + 1).to_string());
        b.add_edge(prev, "a", x);
        b.add_edge(prev, "b", x);
        prev = x;
    }
    Workload {
        graph: b.freeze(),
        seeds: vec![vec![first], vec![prev]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let w = chain(4);
        assert_eq!(w.graph.node_count(), 5);
        assert_eq!(w.graph.edge_count(), 8);
        assert_eq!(w.m(), 2);
    }

    #[test]
    fn parallel_edges_have_different_labels() {
        let w = chain(1);
        let g = &w.graph;
        let a = g.label_id("a").unwrap();
        let b = g.label_id("b").unwrap();
        assert_eq!(g.edges_with_label(a).len(), 1);
        assert_eq!(g.edges_with_label(b).len(), 1);
    }

    #[test]
    fn end_nodes_are_seeds() {
        let w = chain(3);
        let g = &w.graph;
        assert_eq!(g.node_label(w.seeds[0][0]), "1");
        assert_eq!(g.node_label(w.seeds[1][0]), "4");
    }
}
