//! Star graphs (paper Figure 8, top right): `Star(m, sL)` has a central
//! node connected to each of the m seeds by a line of `sL` edges.
//!
//! The topology maximises subtree blow-up: O(2^m · sL^2) subtrees (§5.3),
//! and its unique CTP result is a `(m, centre)` rooted merge — the case
//! where LESP's pruning protection matters (§4.6).

use super::{seed_label, Workload};
use crate::builder::GraphBuilder;

/// Generates `Star(m, s_l)`. The centre is labelled `x`; branch
/// intermediates are numbered; edges are labelled `r` and oriented from
/// the centre outwards.
///
/// # Panics
/// Panics if `m < 2` or `s_l == 0`.
pub fn star(m: usize, s_l: usize) -> Workload {
    assert!(m >= 2, "a Star graph needs at least 2 seeds");
    assert!(s_l >= 1, "branches need at least one edge");
    let mut b = GraphBuilder::new();
    let centre = b.add_node("x");
    let mut seeds = Vec::with_capacity(m);
    let mut inter = 0usize;

    for s in 0..m {
        let mut prev = centre;
        for _ in 0..(s_l - 1) {
            inter += 1;
            let x = b.add_node(&inter.to_string());
            b.add_edge(prev, "r", x);
            prev = x;
        }
        let seed = b.add_node(&seed_label(s));
        b.add_edge(prev, "r", seed);
        seeds.push(vec![seed]);
    }

    Workload {
        graph: b.freeze(),
        seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        // Star(4, 2) as in Figure 8: centre + 4 branches of 2 edges
        // = 1 + 4*2 nodes, 8 edges.
        let w = star(4, 2);
        assert_eq!(w.graph.node_count(), 9);
        assert_eq!(w.graph.edge_count(), 8);
        assert_eq!(w.m(), 4);
    }

    #[test]
    fn centre_degree_is_m() {
        let w = star(5, 3);
        let g = &w.graph;
        let centre = g.node_by_label("x").unwrap();
        assert_eq!(g.degree(centre), 5);
    }

    #[test]
    fn seeds_are_leaves() {
        let w = star(3, 2);
        let g = &w.graph;
        for s in &w.seeds {
            assert_eq!(g.degree(s[0]), 1);
        }
    }

    #[test]
    fn sl_one_connects_seeds_directly() {
        let w = star(3, 1);
        assert_eq!(w.graph.node_count(), 4);
        assert_eq!(w.graph.edge_count(), 3);
    }
}
