//! Textual generator specs — `family:key=value,...` strings naming one
//! of the synthetic workload generators, so CLIs and CI scripts can
//! pin a dataset (`csq snapshot save scale_free:nodes=2000,seed=7
//! data.csg`) without writing Rust.
//!
//! Grammar: `family` or `family:key=value,key=value,...`. Unknown
//! families and keys are errors (a typo must not silently fall back to
//! a default graph). Every generator is deterministic given its
//! parameters, so a spec pins a dataset exactly.
//!
//! | family | keys (default) |
//! |---|---|
//! | `figure1` | — |
//! | `chain` | `n` (4) |
//! | `line` | `m` (3), `nl` (4) |
//! | `comb` | `na` (2), `ns` (2), `sl` (4), `dba` (1) |
//! | `star` | `m` (3), `sl` (4) |
//! | `gnp` | `n` (100), `p_permille` (50), `seed` (1) |
//! | `random_connected` | `n` (100), `extra` (50), `seed` (1) |
//! | `scale_free` | `nodes` (2000), `edges_per_node` (3), `labels` (20), `types` (10), `seed` (7) |
//! | `yago_like` | `persons` (2000), `organisations` (100), `places` (30), `works` (300), `seed` (39568) |
//! | `cdf` | `m` (2), `nt` (32), `nl` (64), `sl` (3), `seed` (3295) |

use super::{
    cdf, chain, comb, gnp, line, random_connected, scale_free, star, yago_like, CdfParams,
    ScaleFreeParams, YagoLikeParams,
};
use crate::model::Graph;
use std::fmt;

/// Errors parsing or applying a generator spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The family name is not one of the known generators.
    UnknownFamily(String),
    /// A key is not valid for the family.
    UnknownKey {
        /// The generator family.
        family: &'static str,
        /// The offending key.
        key: String,
    },
    /// An argument was not `key=value` or the value did not parse as an
    /// integer.
    BadArg(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownFamily(s) => write!(
                f,
                "unknown generator family {s:?} (figure1|chain|line|comb|star|gnp|\
                 random_connected|scale_free|yago_like|cdf)"
            ),
            SpecError::UnknownKey { family, key } => {
                write!(f, "unknown key {key:?} for generator {family:?}")
            }
            SpecError::BadArg(s) => write!(f, "bad generator argument {s:?} (want key=number)"),
        }
    }
}

impl std::error::Error for SpecError {}

fn parse_args(args: &str) -> Result<Vec<(String, u64)>, SpecError> {
    let mut out = Vec::new();
    for part in args.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| SpecError::BadArg(part.into()))?;
        let v: u64 = v
            .trim()
            .parse()
            .map_err(|_| SpecError::BadArg(part.into()))?;
        out.push((k.trim().to_ascii_lowercase(), v));
    }
    Ok(out)
}

/// Applies `key=value` pairs onto named `u64` slots, rejecting unknown
/// keys.
fn bind(
    family: &'static str,
    args: Vec<(String, u64)>,
    slots: &mut [(&str, &mut u64)],
) -> Result<(), SpecError> {
    'args: for (k, v) in args {
        for (name, slot) in slots.iter_mut() {
            if *name == k {
                **slot = v;
                continue 'args;
            }
        }
        return Err(SpecError::UnknownKey { family, key: k });
    }
    Ok(())
}

/// Builds the graph named by a generator spec (see the module docs for
/// the grammar and the per-family keys). Workload-producing families
/// (`line`, `comb`, `star`, `chain`, `cdf`) yield their data graph;
/// seed sets are a query-time concern.
pub fn from_spec(spec: &str) -> Result<Graph, SpecError> {
    let spec = spec.trim();
    let (family, args) = match spec.split_once(':') {
        Some((f, a)) => (f.trim(), a),
        None => (spec, ""),
    };
    let family = family.to_ascii_lowercase();
    match family.as_str() {
        "figure1" => {
            parse_args(args).and_then(|a| bind("figure1", a, &mut []))?;
            Ok(crate::figure1::figure1())
        }
        "chain" => {
            let mut n = 4u64;
            bind("chain", parse_args(args)?, &mut [("n", &mut n)])?;
            Ok(chain(n as usize).graph)
        }
        "line" => {
            let (mut m, mut nl) = (3u64, 4u64);
            bind(
                "line",
                parse_args(args)?,
                &mut [("m", &mut m), ("nl", &mut nl)],
            )?;
            Ok(line(m as usize, nl as usize).graph)
        }
        "comb" => {
            let (mut na, mut ns, mut sl, mut dba) = (2u64, 2u64, 4u64, 1u64);
            bind(
                "comb",
                parse_args(args)?,
                &mut [
                    ("na", &mut na),
                    ("ns", &mut ns),
                    ("sl", &mut sl),
                    ("dba", &mut dba),
                ],
            )?;
            Ok(comb(na as usize, ns as usize, sl as usize, dba as usize).graph)
        }
        "star" => {
            let (mut m, mut sl) = (3u64, 4u64);
            bind(
                "star",
                parse_args(args)?,
                &mut [("m", &mut m), ("sl", &mut sl)],
            )?;
            Ok(star(m as usize, sl as usize).graph)
        }
        "gnp" => {
            let (mut n, mut p_permille, mut seed) = (100u64, 50u64, 1u64);
            bind(
                "gnp",
                parse_args(args)?,
                &mut [
                    ("n", &mut n),
                    ("p_permille", &mut p_permille),
                    ("seed", &mut seed),
                ],
            )?;
            Ok(gnp(n as usize, p_permille as f64 / 1000.0, seed))
        }
        "random_connected" => {
            let (mut n, mut extra, mut seed) = (100u64, 50u64, 1u64);
            bind(
                "random_connected",
                parse_args(args)?,
                &mut [("n", &mut n), ("extra", &mut extra), ("seed", &mut seed)],
            )?;
            Ok(random_connected(n as usize, extra as usize, seed))
        }
        "scale_free" => {
            let (mut nodes, mut epn, mut labels, mut types, mut seed) =
                (2000u64, 3u64, 20u64, 10u64, 7u64);
            bind(
                "scale_free",
                parse_args(args)?,
                &mut [
                    ("nodes", &mut nodes),
                    ("edges_per_node", &mut epn),
                    ("labels", &mut labels),
                    ("types", &mut types),
                    ("seed", &mut seed),
                ],
            )?;
            Ok(scale_free(&ScaleFreeParams {
                nodes: nodes as usize,
                edges_per_node: epn as usize,
                labels: labels as usize,
                types: types as usize,
                seed,
            }))
        }
        "yago_like" => {
            let (mut persons, mut orgs, mut places, mut works, mut seed) =
                (2000u64, 100u64, 30u64, 300u64, 0x9A90u64);
            bind(
                "yago_like",
                parse_args(args)?,
                &mut [
                    ("persons", &mut persons),
                    ("organisations", &mut orgs),
                    ("places", &mut places),
                    ("works", &mut works),
                    ("seed", &mut seed),
                ],
            )?;
            Ok(yago_like(&YagoLikeParams {
                persons: persons as usize,
                organisations: orgs as usize,
                places: places as usize,
                works: works as usize,
                seed,
            }))
        }
        "cdf" => {
            let (mut m, mut nt, mut nl, mut sl, mut seed) = (2u64, 32u64, 64u64, 3u64, 0xCDFu64);
            bind(
                "cdf",
                parse_args(args)?,
                &mut [
                    ("m", &mut m),
                    ("nt", &mut nt),
                    ("nl", &mut nl),
                    ("sl", &mut sl),
                    ("seed", &mut seed),
                ],
            )?;
            Ok(cdf(&CdfParams {
                m: m as usize,
                n_t: nt as usize,
                n_l: nl as usize,
                s_l: sl as usize,
                seed,
            })
            .graph)
        }
        _ => Err(SpecError::UnknownFamily(family)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_spec() {
        let g = from_spec("figure1").unwrap();
        assert_eq!(g.node_count(), 12);
    }

    #[test]
    fn parameterised_specs() {
        let g = from_spec("scale_free:nodes=150,edges_per_node=2,seed=5").unwrap();
        assert_eq!(g.node_count(), 150);
        let g = from_spec("chain:n=5").unwrap();
        assert!(g.node_count() > 0);
        let g = from_spec("line: m=3 , nl=2").unwrap();
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn specs_are_deterministic() {
        let a = from_spec("yago_like:persons=120,works=40").unwrap();
        let b = from_spec("yago_like:persons=120,works=40").unwrap();
        assert_eq!(
            crate::binfmt::encode_graph(&a),
            crate::binfmt::encode_graph(&b)
        );
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            from_spec("nope").unwrap_err(),
            SpecError::UnknownFamily(_)
        ));
        assert!(matches!(
            from_spec("chain:banana=1").unwrap_err(),
            SpecError::UnknownKey { .. }
        ));
        assert!(matches!(
            from_spec("chain:n=banana").unwrap_err(),
            SpecError::BadArg(_)
        ));
        assert!(matches!(
            from_spec("figure1:n=1").unwrap_err(),
            SpecError::UnknownKey { .. }
        ));
    }
}
