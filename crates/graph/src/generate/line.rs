//! Line graphs (paper Figure 8, bottom): `Line(m, nL)` has m seeds, each
//! connected to the next by `nL` intermediary nodes, i.e. `sL = nL + 1`
//! edges per seed-to-seed segment.
//!
//! The topology minimises the number of subtrees for a given number of
//! edges and seeds: O((m·nL)^2) subtrees (§5.3).

use super::{seed_label, Workload};
use crate::builder::GraphBuilder;

/// Generates `Line(m, n_l)`. Seeds are labelled `A`, `B`, …; intermediate
/// nodes `1`, `2`, …; every edge is labelled `r` and oriented from the
/// `A` end towards the far end.
///
/// # Panics
/// Panics if `m < 2`.
pub fn line(m: usize, n_l: usize) -> Workload {
    assert!(m >= 2, "a Line graph needs at least 2 seeds");
    let mut b = GraphBuilder::new();
    let mut seeds = Vec::with_capacity(m);
    let mut inter = 0usize;

    let mut prev = b.add_node(&seed_label(0));
    seeds.push(vec![prev]);
    for s in 1..m {
        for _ in 0..n_l {
            inter += 1;
            let x = b.add_node(&inter.to_string());
            b.add_edge(prev, "r", x);
            prev = x;
        }
        let seed = b.add_node(&seed_label(s));
        b.add_edge(prev, "r", seed);
        seeds.push(vec![seed]);
        prev = seed;
    }

    Workload {
        graph: b.freeze(),
        seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        // Line(3, 1): A-1-B-2-C → 5 nodes, 4 edges, sL = 2.
        let w = line(3, 1);
        assert_eq!(w.graph.node_count(), 5);
        assert_eq!(w.graph.edge_count(), 4);
        assert_eq!(w.m(), 3);
    }

    #[test]
    fn zero_intermediaries() {
        // Line(4, 0): A-B-C-D.
        let w = line(4, 0);
        assert_eq!(w.graph.node_count(), 4);
        assert_eq!(w.graph.edge_count(), 3);
    }

    #[test]
    fn path_structure() {
        let w = line(5, 3);
        let g = &w.graph;
        // Exactly two degree-1 nodes (the extremities), everything else
        // degree 2.
        let deg1 = g.node_ids().filter(|&n| g.degree(n) == 1).count();
        let deg2 = g.node_ids().filter(|&n| g.degree(n) == 2).count();
        assert_eq!(deg1, 2);
        assert_eq!(deg2, g.node_count() - 2);
    }

    #[test]
    fn seed_nodes_carry_seed_labels() {
        let w = line(3, 2);
        let g = &w.graph;
        assert_eq!(g.node_label(w.seeds[0][0]), "A");
        assert_eq!(g.node_label(w.seeds[2][0]), "C");
    }
}
