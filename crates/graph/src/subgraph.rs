//! Evidence-subgraph extraction: materialise the union of some edges
//! (e.g. the connecting trees a query returned) as a standalone graph.
//!
//! This is the artefact the paper's investigative-journalism users
//! export: the subgraph of all connections between the entities under
//! investigation, ready to serialise (`ntriples`, `binfmt`) or hand to
//! a visualisation tool.

use crate::builder::GraphBuilder;
use crate::fxhash::FxHashMap;
use crate::ids::{EdgeId, NodeId};
use crate::model::Graph;

/// Extracts the subgraph induced by `edges` (plus any `extra_nodes` to
/// include as isolated nodes). Labels, types, and properties are
/// copied; node/edge ids are renumbered. Returns the new graph and the
/// old→new node-id mapping.
pub fn extract_subgraph(
    g: &Graph,
    edges: &[EdgeId],
    extra_nodes: &[NodeId],
) -> (Graph, FxHashMap<NodeId, NodeId>) {
    let mut b = GraphBuilder::new();
    let mut map: FxHashMap<NodeId, NodeId> = FxHashMap::default();

    let import_node = |b: &mut GraphBuilder, map: &mut FxHashMap<NodeId, NodeId>, n: NodeId| {
        if let Some(&nn) = map.get(&n) {
            return nn;
        }
        let types: Vec<&str> = g.node_types(n).collect();
        let nn = b.add_typed_node(g.node_label(n), &types);
        for (k, v) in g.node_props(n).iter() {
            // Resolve the key through the source interner.
            b.set_node_prop(nn, g.resolve(*k), v.clone());
        }
        map.insert(n, nn);
        nn
    };

    // Deduplicate edges, keep first-occurrence order.
    let mut seen = crate::fxhash::FxHashSet::default();
    for &e in edges {
        if !seen.insert(e) {
            continue;
        }
        let ed = g.edge(e);
        let src = import_node(&mut b, &mut map, ed.src);
        let dst = import_node(&mut b, &mut map, ed.dst);
        let ne = b.add_edge(src, g.resolve(ed.label), dst);
        for (k, v) in g.edge_props(e).iter() {
            b.set_edge_prop(ne, g.resolve(*k), v.clone());
        }
    }
    for &n in extra_nodes {
        import_node(&mut b, &mut map, n);
    }
    (b.freeze(), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;

    #[test]
    fn extracts_tree_with_metadata() {
        let g = figure1();
        // t_alpha = {e9, e10, e11} in 0-based ids {8, 9, 10}.
        let edges = [EdgeId(8), EdgeId(9), EdgeId(10)];
        let (sub, map) = extract_subgraph(&g, &edges, &[]);
        assert_eq!(sub.edge_count(), 3);
        assert_eq!(sub.node_count(), 4); // Doug, OrgC, Carole, Elon
        let carole_old = g.node_by_label("Carole").unwrap();
        let carole_new = map[&carole_old];
        assert_eq!(sub.node_label(carole_new), "Carole");
        assert_eq!(
            sub.node_types(carole_new).collect::<Vec<_>>(),
            ["entrepreneur"]
        );
    }

    #[test]
    fn duplicate_edges_imported_once() {
        let g = figure1();
        let (sub, _) = extract_subgraph(&g, &[EdgeId(0), EdgeId(0), EdgeId(1)], &[]);
        assert_eq!(sub.edge_count(), 2);
    }

    #[test]
    fn extra_isolated_nodes() {
        let g = figure1();
        let falcon = g.node_by_label("Falcon").unwrap();
        let (sub, map) = extract_subgraph(&g, &[EdgeId(0)], &[falcon]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.degree(map[&falcon]), 0);
    }

    #[test]
    fn roundtrips_through_triples() {
        let g = figure1();
        let (sub, _) = extract_subgraph(&g, &[EdgeId(8), EdgeId(9)], &[]);
        let text = crate::ntriples::write_triples(&sub);
        let back = crate::ntriples::parse_triples(&text).unwrap();
        assert_eq!(back.edge_count(), 2);
    }

    #[test]
    fn empty_extraction() {
        let g = figure1();
        let (sub, map) = extract_subgraph(&g, &[], &[]);
        assert_eq!(sub.node_count(), 0);
        assert!(map.is_empty());
    }
}
