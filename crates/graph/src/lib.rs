//! # cs-graph — graph substrate for connection search
//!
//! The data-model layer of the *Integrating Connection Search in Graph
//! Queries* reproduction: an immutable labelled multigraph (paper
//! Def. 2.1) with bidirectional adjacency, the node/edge predicate
//! language (Def. 2.2), a triple-format loader, workload generators for
//! every synthetic benchmark in the paper's evaluation, and the Figure 1
//! running example.
//!
//! ```
//! use cs_graph::{figure1, Predicate, matching_nodes};
//! let g = figure1();
//! let pols = matching_nodes(&g, &Predicate::typed("politician"));
//! assert_eq!(pols.len(), 2); // Elon, Falcon
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod binfmt;
mod builder;
pub mod figure1;
pub mod fxhash;
pub mod generate;
mod ids;
mod interner;
mod model;
pub mod mutate;
pub mod ntriples;
mod predicate;
pub mod snapshot;
pub mod stats;
mod storage;
pub mod subgraph;
mod value;

pub use builder::GraphBuilder;
pub use figure1::figure1;
pub use ids::{EdgeId, LabelId, NodeId};
pub use interner::Interner;
pub use model::{Adj, EdgeData, Graph, NodeRef};
pub use mutate::{Applied, Mutation, MutationRecord, DEFAULT_COMPACT_THRESHOLD};
pub use predicate::{glob_match, matching_nodes, CmpOp, Condition, Predicate, PropRef};
pub use stats::{Cardinalities, LabelCard};
pub use subgraph::extract_subgraph;
pub use value::Value;
