//! The predicate language over nodes and edges (paper Def. 2.2).
//!
//! A *condition* is `p(v) op c` where `p` is a property (label, type, or a
//! named property), `op ∈ {=, <, <=, ~}` and `c` a constant; a *predicate*
//! is a conjunction of conditions over one variable. The empty predicate
//! is satisfied by every node or edge.

use crate::ids::{EdgeId, NodeId};
use crate::model::Graph;
use crate::value::Value;
use std::fmt;

/// Which property of the bound node/edge a condition inspects.
#[derive(Debug, Clone, PartialEq)]
pub enum PropRef {
    /// The label `l(v)`.
    Label,
    /// The type `τ(v)` (nodes only; an edge never satisfies a type
    /// condition).
    Type,
    /// A named property `p(v)`.
    Named(String),
}

/// Comparison operators Ω = {=, <, ≤, ~} (Def. 2.2). `~` is glob-style
/// pattern matching where `*` matches any substring and `?` any single
/// character (a superset of the paper's SQL-`like` semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Pattern match (`~`).
    Like,
}

/// One condition `p(v) op c`.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// The inspected property.
    pub prop: PropRef,
    /// The comparison operator.
    pub op: CmpOp,
    /// The constant on the right-hand side.
    pub constant: Value,
}

/// A conjunction of [`Condition`]s over a single variable. Empty means
/// "always true".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Predicate {
    /// The conjuncts.
    pub conditions: Vec<Condition>,
}

impl Predicate {
    /// The empty predicate (satisfied by everything).
    pub fn any() -> Self {
        Predicate::default()
    }

    /// `l(v) = label` — the paper's short syntax where a bare constant
    /// denotes a label-equality predicate.
    pub fn label(label: &str) -> Self {
        Predicate {
            conditions: vec![Condition {
                prop: PropRef::Label,
                op: CmpOp::Eq,
                constant: Value::str(label),
            }],
        }
    }

    /// `τ(v) = ty`.
    pub fn typed(ty: &str) -> Self {
        Predicate {
            conditions: vec![Condition {
                prop: PropRef::Type,
                op: CmpOp::Eq,
                constant: Value::str(ty),
            }],
        }
    }

    /// `l(v) ~ pattern` with `*`/`?` wildcards.
    pub fn label_like(pattern: &str) -> Self {
        Predicate {
            conditions: vec![Condition {
                prop: PropRef::Label,
                op: CmpOp::Like,
                constant: Value::str(pattern),
            }],
        }
    }

    /// A condition on a named property.
    pub fn prop(name: &str, op: CmpOp, constant: impl Into<Value>) -> Self {
        Predicate {
            conditions: vec![Condition {
                prop: PropRef::Named(name.to_string()),
                op,
                constant: constant.into(),
            }],
        }
    }

    /// Conjunction of two predicates.
    pub fn and(mut self, other: Predicate) -> Self {
        self.conditions.extend(other.conditions);
        self
    }

    /// True iff this is the empty predicate.
    pub fn is_any(&self) -> bool {
        self.conditions.is_empty()
    }

    /// Evaluates the predicate on a node.
    pub fn matches_node(&self, g: &Graph, n: NodeId) -> bool {
        self.conditions.iter().all(|c| c.matches_node(g, n))
    }

    /// Evaluates the predicate on an edge.
    pub fn matches_edge(&self, g: &Graph, e: EdgeId) -> bool {
        self.conditions.iter().all(|c| c.matches_edge(g, e))
    }

    /// If the predicate contains a label-equality condition, returns the
    /// label constant (used for index-backed evaluation).
    pub fn eq_label(&self) -> Option<&str> {
        self.conditions.iter().find_map(|c| match (&c.prop, c.op) {
            (PropRef::Label, CmpOp::Eq) => c.constant.as_str(),
            _ => None,
        })
    }

    /// If the predicate contains a type-equality condition, returns the
    /// type constant.
    pub fn eq_type(&self) -> Option<&str> {
        self.conditions.iter().find_map(|c| match (&c.prop, c.op) {
            (PropRef::Type, CmpOp::Eq) => c.constant.as_str(),
            _ => None,
        })
    }
}

impl Condition {
    /// Evaluates this condition on a node.
    pub fn matches_node(&self, g: &Graph, n: NodeId) -> bool {
        match &self.prop {
            PropRef::Label => self.cmp_str(g.node_label(n)),
            PropRef::Type => match (self.op, self.constant.as_str()) {
                // τ(v) = c holds if c is among the node's types.
                (CmpOp::Eq, Some(want)) => g.node_types(n).any(|t| t == want),
                (CmpOp::Like, Some(pat)) => g.node_types(n).any(|t| glob_match(pat, t)),
                _ => false,
            },
            PropRef::Named(name) => match g.node_prop(n, name) {
                Some(v) => self.cmp_value(v),
                None => false,
            },
        }
    }

    /// Evaluates this condition on an edge.
    pub fn matches_edge(&self, g: &Graph, e: EdgeId) -> bool {
        match &self.prop {
            PropRef::Label => self.cmp_str(g.edge_label(e)),
            // Edges carry no types in our RDF-style model.
            PropRef::Type => false,
            PropRef::Named(name) => match g.edge_prop(e, name) {
                Some(v) => self.cmp_value(v),
                None => false,
            },
        }
    }

    fn cmp_str(&self, actual: &str) -> bool {
        match (self.op, self.constant.as_str()) {
            (CmpOp::Eq, Some(c)) => actual == c,
            (CmpOp::Lt, Some(c)) => actual < c,
            (CmpOp::Le, Some(c)) => actual <= c,
            (CmpOp::Like, Some(pat)) => glob_match(pat, actual),
            _ => false,
        }
    }

    fn cmp_value(&self, actual: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self.op {
            CmpOp::Eq => actual == &self.constant,
            CmpOp::Lt => matches!(actual.partial_cmp_value(&self.constant), Some(Less)),
            CmpOp::Le => matches!(
                actual.partial_cmp_value(&self.constant),
                Some(Less) | Some(Equal)
            ),
            CmpOp::Like => match (actual.as_str(), self.constant.as_str()) {
                (Some(a), Some(p)) => glob_match(p, a),
                _ => false,
            },
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conditions.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            let p = match &c.prop {
                PropRef::Label => "l".to_string(),
                PropRef::Type => "τ".to_string(),
                PropRef::Named(n) => n.clone(),
            };
            let op = match c.op {
                CmpOp::Eq => "=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Like => "~",
            };
            write!(f, "{p}(v) {op} \"{}\"", c.constant)?;
        }
        Ok(())
    }
}

/// Glob matching with `*` (any substring) and `?` (any one char).
///
/// Iterative backtracking over the last `*`; linear in practice.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_ti) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            star_ti = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Enumerates all nodes of `g` satisfying `pred`, using the label or type
/// index when the predicate pins one down, falling back to a full scan.
///
/// This implements the seed-set computation "restrict N to those that
/// match g_i" from the paper's evaluation strategy (§3 step B.1).
pub fn matching_nodes(g: &Graph, pred: &Predicate) -> Vec<NodeId> {
    if let Some(label) = pred.eq_label() {
        if let Some(l) = g.label_id(label) {
            return g
                .nodes_with_label(l)
                .iter()
                .copied()
                .filter(|&n| pred.matches_node(g, n))
                .collect();
        }
        return Vec::new();
    }
    if let Some(ty) = pred.eq_type() {
        if let Some(t) = g.label_id(ty) {
            return g
                .nodes_with_type(t)
                .iter()
                .copied()
                .filter(|&n| pred.matches_node(g, n))
                .collect();
        }
        return Vec::new();
    }
    g.node_ids().filter(|&n| pred.matches_node(g, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let alice = b.add_typed_node("Alice", &["entrepreneur"]);
        let bob = b.add_typed_node("Bob", &["entrepreneur", "politician"]);
        let usa = b.add_typed_node("USA", &["country"]);
        b.set_node_prop(alice, "age", 41i64);
        b.set_node_prop(bob, "age", 55i64);
        let e = b.add_edge(alice, "citizenOf", usa);
        b.set_edge_prop(e, "since", 1999i64);
        b.add_edge(bob, "citizenOf", usa);
        b.freeze()
    }

    #[test]
    fn paper_example_predicate() {
        // l(v) ~ "*lice" ∧ τ(v) = entrepreneur — true only on Alice.
        let g = sample();
        let p = Predicate::label_like("*lice").and(Predicate::typed("entrepreneur"));
        let matches = matching_nodes(&g, &p);
        assert_eq!(matches.len(), 1);
        assert_eq!(g.node_label(matches[0]), "Alice");
    }

    #[test]
    fn empty_predicate_matches_everything() {
        let g = sample();
        assert_eq!(matching_nodes(&g, &Predicate::any()).len(), 3);
        assert!(Predicate::any().matches_edge(&g, crate::ids::EdgeId(0)));
    }

    #[test]
    fn label_index_used() {
        let g = sample();
        assert_eq!(matching_nodes(&g, &Predicate::label("USA")).len(), 1);
        assert_eq!(matching_nodes(&g, &Predicate::label("nobody")).len(), 0);
    }

    #[test]
    fn type_with_multiple_types() {
        let g = sample();
        let pols = matching_nodes(&g, &Predicate::typed("politician"));
        assert_eq!(pols.len(), 1);
        assert_eq!(g.node_label(pols[0]), "Bob");
    }

    #[test]
    fn numeric_property_comparison() {
        let g = sample();
        let under50 = matching_nodes(&g, &Predicate::prop("age", CmpOp::Lt, 50i64));
        assert_eq!(under50.len(), 1);
        let le55 = matching_nodes(&g, &Predicate::prop("age", CmpOp::Le, 55i64));
        assert_eq!(le55.len(), 2);
        // Missing property ⇒ condition false.
        let none = matching_nodes(&g, &Predicate::prop("height", CmpOp::Eq, 1i64));
        assert!(none.is_empty());
    }

    #[test]
    fn edge_predicates() {
        let g = sample();
        let p = Predicate::label("citizenOf");
        assert!(p.matches_edge(&g, crate::ids::EdgeId(0)));
        // Type conditions never hold on edges.
        assert!(!Predicate::typed("country").matches_edge(&g, crate::ids::EdgeId(0)));
        // Edge property condition.
        let since = Predicate::prop("since", CmpOp::Eq, 1999i64);
        assert!(since.matches_edge(&g, crate::ids::EdgeId(0)));
        assert!(!since.matches_edge(&g, crate::ids::EdgeId(1)));
    }

    #[test]
    fn glob_cases() {
        assert!(glob_match("*lice", "Alice"));
        assert!(glob_match("A*", "Alice"));
        assert!(glob_match("*", ""));
        assert!(glob_match("A?ice", "Alice"));
        assert!(!glob_match("A?ice", "Ace"));
        assert!(glob_match("a*b*c", "a__b__c"));
        assert!(!glob_match("a*b*c", "a__c__b"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
        assert!(glob_match("**", "anything"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Predicate::any().to_string(), "⊤");
        let p = Predicate::label("Alice").and(Predicate::typed("x"));
        assert!(p.to_string().contains("l(v) = \"Alice\""));
        assert!(p.to_string().contains("∧"));
    }
}
