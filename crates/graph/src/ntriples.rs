//! A minimal triple text format, mirroring the paper's storage layout
//! (`graph(id, source, edgeLabel, target)` in PostgreSQL).
//!
//! Format, one triple per line:
//! ```text
//! source <TAB> edgeLabel <TAB> target
//! ```
//! Node type assertions use the pseudo-label `a` (as in Turtle):
//! `Alice<TAB>a<TAB>entrepreneur` attaches type `entrepreneur` to node
//! `Alice` without creating an edge. Lines starting with `#` are comments.

use crate::builder::GraphBuilder;
use crate::fxhash::FxHashMap;
use crate::ids::NodeId;
use crate::model::Graph;
use std::fmt::Write as _;

/// Errors from [`parse_triples`].
#[derive(Debug, PartialEq, Eq)]
pub enum TripleError {
    /// A line did not split into three tab-separated fields.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for TripleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripleError::Malformed { line, content } => {
                write!(f, "line {line}: expected `s\\tp\\to`, got {content:?}")
            }
        }
    }
}

impl std::error::Error for TripleError {}

/// Parses the triple format into a [`Graph`]. Node identity is by label:
/// two triples mentioning `Alice` refer to the same node.
pub fn parse_triples(text: &str) -> Result<Graph, TripleError> {
    let mut b = GraphBuilder::new();
    let mut by_label: FxHashMap<String, NodeId> = FxHashMap::default();
    let mut node = |b: &mut GraphBuilder, label: &str| -> NodeId {
        if let Some(&n) = by_label.get(label) {
            return n;
        }
        let n = b.add_node(label);
        by_label.insert(label.to_string(), n);
        n
    };

    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (s, p, o) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(s), Some(p), Some(o), None) => (s.trim(), p.trim(), o.trim()),
            _ => {
                return Err(TripleError::Malformed {
                    line: i + 1,
                    content: raw.to_string(),
                })
            }
        };
        if p == "a" {
            let sn = node(&mut b, s);
            b.add_type(sn, o);
        } else {
            let sn = node(&mut b, s);
            let on = node(&mut b, o);
            b.add_edge(sn, p, on);
        }
    }
    Ok(b.freeze())
}

/// Serialises a [`Graph`] back into the triple format (edges first, then
/// type assertions). Round-trips through [`parse_triples`] up to node id
/// renumbering.
pub fn write_triples(g: &Graph) -> String {
    let mut out = String::new();
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let _ = writeln!(
            out,
            "{}\t{}\t{}",
            g.node_label(ed.src),
            g.resolve(ed.label),
            g.node_label(ed.dst)
        );
    }
    for n in g.node_ids() {
        for t in g.node_types(n) {
            let _ = writeln!(out, "{}\ta\t{}", g.node_label(n), t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny graph
Alice\tcitizenOf\tUSA
Bob\tcitizenOf\tUSA
Alice\ta\tentrepreneur
";

    #[test]
    fn parse_basic() {
        let g = parse_triples(SAMPLE).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let alice = g.node_by_label("Alice").unwrap();
        assert_eq!(g.node_types(alice).collect::<Vec<_>>(), ["entrepreneur"]);
    }

    #[test]
    fn node_identity_by_label() {
        let g = parse_triples("A\tx\tB\nA\ty\tB\n").unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_line() {
        let err = parse_triples("just one field").unwrap_err();
        assert!(matches!(err, TripleError::Malformed { line: 1, .. }));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn roundtrip() {
        let g = parse_triples(SAMPLE).unwrap();
        let text = write_triples(&g);
        let g2 = parse_triples(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let alice = g2.node_by_label("Alice").unwrap();
        assert_eq!(g2.node_types(alice).collect::<Vec<_>>(), ["entrepreneur"]);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = parse_triples("\n# comment\n\nA\tr\tB\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
