//! String interning for node/edge labels, type names, and property keys.
//!
//! Graph workloads repeat a small vocabulary of labels across millions of
//! edges; interning turns label comparisons into `u32` compares and keeps
//! the [`crate::Graph`] representation compact.

use crate::fxhash::FxHashMap;
use crate::ids::LabelId;
use std::sync::Arc;

/// Interns strings, handing out stable [`LabelId`]s.
///
/// The empty label `""` is always interned as [`Interner::EMPTY`]
/// (the paper's ε label, Def. 2.1).
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: FxHashMap<Arc<str>, LabelId>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// The id of the empty label ε.
    pub const EMPTY: LabelId = LabelId(0);

    /// Creates an interner with ε pre-interned at id 0.
    pub fn new() -> Self {
        let mut this = Interner {
            map: FxHashMap::default(),
            strings: Vec::new(),
        };
        let eps = this.intern("");
        debug_assert_eq!(eps, Self::EMPTY);
        this
    }

    /// Interns `s`, returning its id (existing or fresh).
    pub fn intern(&mut self, s: &str) -> LabelId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = LabelId::new(self.strings.len());
        let arc: Arc<str> = Arc::from(s);
        self.strings.push(arc.clone());
        self.map.insert(arc, id);
        id
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<LabelId> {
        self.map.get(s).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.strings[id.index()]
    }

    /// Number of distinct interned strings (including ε).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if only ε is interned.
    pub fn is_empty(&self) -> bool {
        self.strings.len() <= 1
    }

    /// Iterates over `(id, string)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (LabelId::new(i), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_label_is_zero() {
        let i = Interner::new();
        assert_eq!(i.get(""), Some(Interner::EMPTY));
        assert_eq!(i.resolve(Interner::EMPTY), "");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("citizenOf");
        let b = i.intern("citizenOf");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "citizenOf");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn distinct_strings_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern("founded");
        let b = i.intern("investsIn");
        assert_ne!(a, b);
    }

    #[test]
    fn get_does_not_insert() {
        let i = Interner::new();
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_all() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let all: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(all, vec!["", "a", "b"]);
    }
}
