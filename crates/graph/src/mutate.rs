//! Live-graph mutations on top of the frozen CSR columns.
//!
//! A frozen [`Graph`] keeps its base columns immutable — they may be
//! memory-mapped straight out of a CSG2 snapshot. Mutations land in a
//! copy-on-write *delta overlay*: the first write that touches a CSR
//! run (one node's adjacency, one label's edge partition, one label's
//! forward/reverse group) clones that run into an owned patched
//! vector; readers consult patched runs first and fall back to the
//! base column. A graph that was never mutated pays one `Option`
//! branch per accessor, and reads of untouched runs stay zero-copy
//! even after mutations elsewhere.
//!
//! Every effective mutation batch bumps the monotonic
//! [`Graph::generation`] counter — the single invalidation hook all
//! derived state keys on (planner cardinalities, plan cache, result
//! cache, watch cursors). A bounded log records which nodes and labels
//! each generation touched so incremental consumers
//! ([`Graph::mutations_since`]) can re-derive only what the delta
//! reaches; past the log horizon they fall back to a full refresh.
//!
//! Cached [`Cardinalities`] are maintained *in place* by the delta
//! (counts adjusted per op; distinct-endpoint counts via lazily seeded
//! per-label endpoint multisets) rather than recomputed with a full
//! `O(|N| + |E|)` pass per batch.
//!
//! Once the overlay accumulates [`Graph::set_compaction_threshold`]
//! ops the graph *compacts*: columns are rebuilt through the same
//! counting-sort core the builder uses and the overlay resets. Node
//! ids are stable for the life of a graph (nodes are never removed);
//! edge ids are stable *between compactions*, and compaction
//! renumbers them densely in ascending-old-id order — a monotone map,
//! so lexicographic comparisons of edge-id sequences (the engine's
//! canonical result order) are preserved.
//!
//! ```
//! use cs_graph::figure1;
//! let mut g = figure1();
//! let gen0 = g.generation();
//! let paris = g.insert_node("Paris", &["city"]);
//! let alice = g.node_by_label("Alice").unwrap();
//! let e = g.insert_edge(alice, "visited", paris);
//! assert_eq!(g.generation(), gen0 + 2); // one bump per batch
//! assert_eq!(g.describe_edge(e), "Alice -visited-> Paris");
//! g.remove_edge(e);
//! let visited = g.label_id("visited").unwrap();
//! assert!(g.out_edges_labelled(alice, visited).is_empty());
//! ```

use crate::builder::{build_parts, EdgeBuild, NodeBuild};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::{EdgeId, LabelId, NodeId};
use crate::model::{Adj, EdgeData, Graph};
use crate::stats::Cardinalities;

/// Default number of overlay ops after which [`Graph::apply`] compacts
/// the delta back into dense CSR columns.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 8192;

/// Mutation-log capacity: batches older than this fall off the horizon
/// and [`Graph::mutations_since`] reports the log as truncated.
const LOG_CAP: usize = 256;

/// One mutation of a live graph, applied in batches via
/// [`Graph::apply`] (labels are given as strings and interned on
/// apply, so a mutation can introduce new vocabulary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Add a node with a label and zero or more types.
    InsertNode {
        /// Node label (the paper's ε label if empty).
        label: String,
        /// RDF types / PG labels of the node.
        types: Vec<String>,
    },
    /// Add a labelled directed edge between existing nodes.
    InsertEdge {
        /// Source node (must already exist).
        src: NodeId,
        /// Edge label.
        label: String,
        /// Target node (must already exist).
        dst: NodeId,
    },
    /// Remove an edge by id. Removing an already-removed or unknown
    /// edge is a no-op (reported via [`Applied::removed`]).
    RemoveEdge {
        /// The edge to remove.
        edge: EdgeId,
    },
}

/// Outcome of one [`Graph::apply`] batch.
#[derive(Debug, Clone, Default)]
pub struct Applied {
    /// The graph generation after the batch (unchanged if the batch
    /// had no effect).
    pub generation: u64,
    /// Ids of the nodes inserted by the batch, in op order.
    pub nodes: Vec<NodeId>,
    /// Ids of the edges inserted by the batch, in op order.
    pub edges: Vec<EdgeId>,
    /// Number of edges actually removed (no-op removes not counted).
    pub removed: usize,
    /// True if the batch tripped the compaction threshold and the
    /// overlay was folded back into dense columns (edge ids
    /// renumbered).
    pub compacted: bool,
}

/// What one mutation batch touched — consumed by incremental
/// maintenance (watch re-evaluation seeds searches from
/// `touched_nodes`; caches invalidate entries whose footprint meets
/// `labels`).
#[derive(Debug, Clone)]
pub struct MutationRecord {
    /// The generation this batch produced.
    pub generation: u64,
    /// Every node incident to an inserted/removed edge, plus inserted
    /// nodes themselves (sorted, deduplicated).
    pub touched_nodes: Vec<NodeId>,
    /// Every label involved: edge labels of inserted/removed edges,
    /// labels and types of inserted nodes (sorted, deduplicated).
    pub labels: Vec<LabelId>,
}

/// A node added after the freeze — lives outside the base columns.
#[derive(Debug, Clone)]
pub(crate) struct ExtraNode {
    pub(crate) label: LabelId,
    pub(crate) types: Vec<LabelId>,
}

/// Per-label endpoint multisets backing exact incremental maintenance
/// of `distinct_src`/`distinct_dst`: seeded by one scan of the label's
/// run on first touch, then adjusted per op.
#[derive(Debug, Clone, Default)]
struct LabelEndpoints {
    src: FxHashMap<u32, u32>,
    dst: FxHashMap<u32, u32>,
}

/// The copy-on-write overlay holding everything that differs from the
/// frozen base columns. Patched runs are keyed by node id (adjacency)
/// or label id (partition runs) and *replace* the corresponding base
/// run entirely.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaState {
    /// Node-id space covered by the base columns.
    pub(crate) base_n: usize,
    /// Edge-id space covered by the base columns (including ids later
    /// removed — removal never reuses ids before compaction).
    pub(crate) base_m: usize,
    pub(crate) extra_nodes: Vec<ExtraNode>,
    pub(crate) extra_edges: Vec<EdgeData>,
    /// Removed edge ids (base or extra). Entries stay in
    /// `extra_edges` as tombstones so extra-edge indexing is stable.
    pub(crate) removed: FxHashSet<u32>,
    pub(crate) adj: FxHashMap<u32, Vec<Adj>>,
    pub(crate) elab: FxHashMap<u32, Vec<EdgeId>>,
    pub(crate) fwd: FxHashMap<u32, Vec<EdgeId>>,
    pub(crate) rev: FxHashMap<u32, Vec<EdgeId>>,
    pub(crate) nlab: FxHashMap<u32, Vec<NodeId>>,
    pub(crate) ntype: FxHashMap<u32, Vec<NodeId>>,
    endpoints: FxHashMap<u32, LabelEndpoints>,
    /// Effective ops applied since the last compaction.
    ops: usize,
}

impl DeltaState {
    fn fresh(base_n: usize, base_m: usize) -> DeltaState {
        DeltaState {
            base_n,
            base_m,
            ..DeltaState::default()
        }
    }
}

impl Graph {
    /// The monotonic mutation counter: 0 for a freshly built or loaded
    /// graph, bumped once per effective [`Graph::apply`] batch.
    /// Derived state (plan cache, result cache, watch cursors) keys on
    /// this to detect staleness.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True if mutations are pending in the delta overlay (i.e. the
    /// graph differs from its base CSR columns).
    #[inline]
    pub fn has_delta(&self) -> bool {
        self.delta.is_some()
    }

    /// Number of effective mutation ops accumulated in the overlay
    /// since the last compaction.
    pub fn pending_delta_ops(&self) -> usize {
        self.delta.as_ref().map_or(0, |d| d.ops)
    }

    /// Sets the number of overlay ops after which [`Graph::apply`]
    /// compacts (default [`DEFAULT_COMPACT_THRESHOLD`]). Clamped to at
    /// least 1; tests use small values to force frequent compaction.
    pub fn set_compaction_threshold(&mut self, ops: usize) {
        self.compact_threshold = ops.max(1);
    }

    /// Inserts a node as a single-op batch. See [`Graph::apply`].
    pub fn insert_node(&mut self, label: &str, types: &[&str]) -> NodeId {
        let a = self.apply(vec![Mutation::InsertNode {
            label: label.to_string(),
            types: types.iter().map(|s| s.to_string()).collect(),
        }]);
        a.nodes[0]
    }

    /// Inserts an edge as a single-op batch. See [`Graph::apply`].
    ///
    /// # Panics
    /// Panics if either endpoint does not exist.
    pub fn insert_edge(&mut self, src: NodeId, label: &str, dst: NodeId) -> EdgeId {
        let a = self.apply(vec![Mutation::InsertEdge {
            src,
            label: label.to_string(),
            dst,
        }]);
        a.edges[0]
    }

    /// Removes an edge as a single-op batch; returns false (and leaves
    /// the generation untouched) if the edge was already gone. See
    /// [`Graph::apply`].
    pub fn remove_edge(&mut self, e: EdgeId) -> bool {
        self.apply(vec![Mutation::RemoveEdge { edge: e }]).removed == 1
    }

    /// Applies a batch of mutations atomically under one generation
    /// bump, maintains cached [`Cardinalities`] incrementally, records
    /// the batch in the mutation log, and compacts the overlay if it
    /// crossed the threshold. A batch with no effect (e.g. removing
    /// already-removed edges) leaves the generation untouched.
    ///
    /// ```
    /// use cs_graph::{figure1, Mutation};
    /// let mut g = figure1();
    /// let alice = g.node_by_label("Alice").unwrap();
    /// let bob = g.node_by_label("Bob").unwrap();
    /// let out = g.apply(vec![
    ///     Mutation::InsertEdge { src: alice, label: "knows".into(), dst: bob },
    ///     Mutation::InsertNode { label: "Zoe".into(), types: vec!["person".into()] },
    /// ]);
    /// assert_eq!(out.edges.len(), 1);
    /// assert_eq!(out.nodes.len(), 1);
    /// assert_eq!(g.generation(), out.generation);
    /// ```
    pub fn apply(&mut self, ops: Vec<Mutation>) -> Applied {
        let mut d = match self.delta.take() {
            Some(d) => d,
            None => Box::new(DeltaState::fresh(self.n, self.m)),
        };
        let mut cards = self.cardinalities.take();
        let mut rec = MutationRecord {
            generation: self.generation + 1,
            touched_nodes: Vec::new(),
            labels: Vec::new(),
        };
        let mut out = Applied::default();
        let ops_before = d.ops;
        for op in ops {
            match op {
                Mutation::InsertNode { label, types } => {
                    let id = self.do_insert_node(&mut d, cards.as_mut(), &label, &types, &mut rec);
                    out.nodes.push(id);
                }
                Mutation::InsertEdge { src, label, dst } => {
                    let id =
                        self.do_insert_edge(&mut d, cards.as_mut(), src, &label, dst, &mut rec);
                    out.edges.push(id);
                }
                Mutation::RemoveEdge { edge } => {
                    if self.do_remove_edge(&mut d, cards.as_mut(), edge, &mut rec) {
                        out.removed += 1;
                    }
                }
            }
        }
        if let Some(c) = cards {
            let _ = self.cardinalities.set(c);
        }
        let changed = d.ops > ops_before;
        if changed {
            self.generation += 1;
            rec.touched_nodes.sort_unstable();
            rec.touched_nodes.dedup();
            rec.labels.sort_unstable();
            rec.labels.dedup();
            self.log.push_back(rec);
            while self.log.len() > LOG_CAP {
                self.log.pop_front();
            }
        }
        let compact_now = d.ops >= self.compact_threshold;
        self.delta = if d.ops == 0 { None } else { Some(d) };
        if compact_now {
            self.compact();
            out.compacted = true;
        }
        out.generation = self.generation;
        out
    }

    /// The per-batch [`MutationRecord`]s strictly after generation
    /// `since`, oldest first — or `None` if `since` lies beyond the
    /// bounded log's horizon (or in the future), in which case the
    /// caller must fall back to a full refresh.
    pub fn mutations_since(&self, since: u64) -> Option<Vec<&MutationRecord>> {
        if since > self.generation {
            return None;
        }
        let expect = self.generation - since;
        let recs: Vec<&MutationRecord> = self.log.iter().filter(|r| r.generation > since).collect();
        (recs.len() as u64 == expect).then_some(recs)
    }

    /// Folds the delta overlay back into dense CSR columns by
    /// re-running the builder's counting-sort core over the live
    /// rows. Node ids are unchanged; edge ids are renumbered densely
    /// in ascending-old-id order (a monotone map, preserving the
    /// canonical result order). Cached cardinalities survive —
    /// renumbering changes no counts. A no-op without a delta.
    pub fn compact(&mut self) {
        if self.delta.is_none() {
            return;
        }
        let mut nodes = Vec::with_capacity(self.n);
        for nid in self.node_ids() {
            let nr = self.node(nid);
            nodes.push(NodeBuild {
                label: nr.label,
                types: nr.types.to_vec(),
                props: nr.props.to_vec(),
            });
        }
        let mut edges = Vec::with_capacity(self.m);
        for eid in self.edge_ids() {
            let ed = *self.edge(eid);
            edges.push(EdgeBuild {
                src: ed.src,
                dst: ed.dst,
                label: ed.label,
                props: self.edge_props(eid).to_vec(),
            });
        }
        let parts = build_parts(self.interner.clone(), nodes, edges);
        let cards = self.cardinalities.take();
        self.replace_columns(parts);
        if let Some(c) = cards {
            let _ = self.cardinalities.set(c);
        }
    }

    fn do_insert_node(
        &mut self,
        d: &mut DeltaState,
        cards: Option<&mut Cardinalities>,
        label: &str,
        types: &[String],
        rec: &mut MutationRecord,
    ) -> NodeId {
        let lid = self.interner.intern(label);
        let tids: Vec<LabelId> = types.iter().map(|t| self.interner.intern(t)).collect();
        let id = NodeId::new(self.n);
        d.extra_nodes.push(ExtraNode {
            label: lid,
            types: tids.clone(),
        });
        self.n += 1;
        // New node ids are maximal, so pushing keeps the per-label and
        // per-type node runs in ascending node-id order.
        self.patched_nlab(d, lid).push(id);
        for &t in &tids {
            self.patched_ntype(d, t).push(id);
        }
        if let Some(c) = cards {
            c.nodes += 1;
            *c.node_labels.entry(lid).or_default() += 1;
            for &t in &tids {
                *c.node_types.entry(t).or_default() += 1;
            }
        }
        d.ops += 1;
        rec.touched_nodes.push(id);
        rec.labels.push(lid);
        rec.labels.extend(tids);
        id
    }

    fn do_insert_edge(
        &mut self,
        d: &mut DeltaState,
        cards: Option<&mut Cardinalities>,
        src: NodeId,
        label: &str,
        dst: NodeId,
        rec: &mut MutationRecord,
    ) -> EdgeId {
        assert!(
            src.index() < self.n && dst.index() < self.n,
            "insert_edge: unknown endpoint"
        );
        let lid = self.interner.intern(label);
        let idx = d.base_m + d.extra_edges.len();
        assert!(idx < (1 << 31), "graphs are capped at 2^31 - 1 edges");
        let id = EdgeId::new(idx);
        // Seed the distinct-endpoint multiset from the pre-insert run.
        if cards.is_some() {
            self.ensure_endpoints(d, lid);
        }
        d.extra_edges.push(EdgeData {
            src,
            dst,
            label: lid,
        });
        // New edge ids are maximal: pushing keeps adjacency and label
        // runs in ascending edge-id order, with the outgoing entry
        // before the incoming one for self-loops — exactly the
        // builder's order.
        self.patched_adj(d, src).push(Adj::new(id, dst, true));
        self.patched_adj(d, dst).push(Adj::new(id, src, false));
        self.patched_elab(d, lid).push(id);
        // Forward/reverse runs stay sorted by (endpoint, id); the new
        // id lands at the end of its endpoint group.
        self.touch_fwd(d, lid);
        let pos = {
            let run = &d.fwd[&lid.0];
            run.partition_point(|e| self.edge_in(d, *e).src.0 <= src.0)
        };
        // cs-lint: allow(L002): `touch_fwd` seeded this run just above
        d.fwd.get_mut(&lid.0).expect("touched").insert(pos, id);
        self.touch_rev(d, lid);
        let pos = {
            let run = &d.rev[&lid.0];
            run.partition_point(|e| self.edge_in(d, *e).dst.0 <= dst.0)
        };
        // cs-lint: allow(L002): `touch_rev` seeded this run just above
        d.rev.get_mut(&lid.0).expect("touched").insert(pos, id);
        self.m += 1;
        if let Some(c) = cards {
            c.edges += 1;
            let lc = c.edge_labels.entry(lid).or_default();
            lc.edges += 1;
            // cs-lint: allow(L002): `ensure_endpoints` ran before the push
            let ep = d.endpoints.get_mut(&lid.0).expect("seeded above");
            let s = ep.src.entry(src.0).or_insert(0);
            if *s == 0 {
                lc.distinct_src += 1;
            }
            *s += 1;
            let t = ep.dst.entry(dst.0).or_insert(0);
            if *t == 0 {
                lc.distinct_dst += 1;
            }
            *t += 1;
        }
        d.ops += 1;
        rec.touched_nodes.extend([src, dst]);
        rec.labels.push(lid);
        id
    }

    fn do_remove_edge(
        &mut self,
        d: &mut DeltaState,
        cards: Option<&mut Cardinalities>,
        e: EdgeId,
        rec: &mut MutationRecord,
    ) -> bool {
        if e.index() >= d.base_m + d.extra_edges.len() || d.removed.contains(&e.0) {
            return false;
        }
        let ed = *self.edge_in(d, e);
        if cards.is_some() {
            self.ensure_endpoints(d, ed.label);
        }
        self.patched_adj(d, ed.src).retain(|a| a.edge() != e);
        if ed.dst != ed.src {
            self.patched_adj(d, ed.dst).retain(|a| a.edge() != e);
        }
        self.patched_elab(d, ed.label).retain(|x| *x != e);
        self.touch_fwd(d, ed.label);
        d.fwd
            .get_mut(&ed.label.0)
            // cs-lint: allow(L002): `touch_fwd` seeded this run just above
            .expect("touched")
            .retain(|x| *x != e);
        self.touch_rev(d, ed.label);
        d.rev
            .get_mut(&ed.label.0)
            // cs-lint: allow(L002): `touch_rev` seeded this run just above
            .expect("touched")
            .retain(|x| *x != e);
        d.removed.insert(e.0);
        self.m -= 1;
        if let Some(c) = cards {
            c.edges -= 1;
            // cs-lint: allow(L002): the removed edge was live, so its
            // label has a per-label count
            let lc = c.edge_labels.get_mut(&ed.label).expect("label had edges");
            lc.edges -= 1;
            // cs-lint: allow(L002): `ensure_endpoints` ran before the removal
            let ep = d.endpoints.get_mut(&ed.label.0).expect("seeded above");
            // cs-lint: allow(L002): the live edge's endpoints are in the
            // seeded multiset by construction
            let s = ep.src.get_mut(&ed.src.0).expect("endpoint counted");
            *s -= 1;
            if *s == 0 {
                ep.src.remove(&ed.src.0);
                lc.distinct_src -= 1;
            }
            // cs-lint: allow(L002): the live edge's endpoints are in the
            // seeded multiset by construction
            let t = ep.dst.get_mut(&ed.dst.0).expect("endpoint counted");
            *t -= 1;
            if *t == 0 {
                ep.dst.remove(&ed.dst.0);
                lc.distinct_dst -= 1;
            }
            if lc.edges == 0 {
                c.edge_labels.remove(&ed.label);
            }
        }
        d.ops += 1;
        rec.touched_nodes.extend([ed.src, ed.dst]);
        rec.labels.push(ed.label);
        true
    }

    /// Edge payload lookup that works while the delta is detached from
    /// the graph (`self.delta` is `None` for the duration of a batch).
    fn edge_in<'a>(&'a self, d: &'a DeltaState, e: EdgeId) -> &'a EdgeData {
        debug_assert!(
            self.delta.is_none(),
            "delta must be detached during mutation"
        );
        if e.index() >= d.base_m {
            &d.extra_edges[e.index() - d.base_m]
        } else {
            self.edge(e)
        }
    }

    fn patched_adj<'a>(&self, d: &'a mut DeltaState, n: NodeId) -> &'a mut Vec<Adj> {
        debug_assert!(
            self.delta.is_none(),
            "delta must be detached during mutation"
        );
        let base_n = d.base_n;
        d.adj.entry(n.0).or_insert_with(|| {
            if n.index() < base_n {
                self.adjacent(n).to_vec()
            } else {
                Vec::new()
            }
        })
    }

    fn patched_elab<'a>(&self, d: &'a mut DeltaState, l: LabelId) -> &'a mut Vec<EdgeId> {
        debug_assert!(
            self.delta.is_none(),
            "delta must be detached during mutation"
        );
        d.elab
            .entry(l.0)
            .or_insert_with(|| self.edges_with_label(l).to_vec())
    }

    fn patched_nlab<'a>(&self, d: &'a mut DeltaState, l: LabelId) -> &'a mut Vec<NodeId> {
        debug_assert!(
            self.delta.is_none(),
            "delta must be detached during mutation"
        );
        d.nlab
            .entry(l.0)
            .or_insert_with(|| self.nodes_with_label(l).to_vec())
    }

    fn patched_ntype<'a>(&self, d: &'a mut DeltaState, t: LabelId) -> &'a mut Vec<NodeId> {
        debug_assert!(
            self.delta.is_none(),
            "delta must be detached during mutation"
        );
        d.ntype
            .entry(t.0)
            .or_insert_with(|| self.nodes_with_type(t).to_vec())
    }

    fn touch_fwd(&self, d: &mut DeltaState, l: LabelId) {
        d.fwd
            .entry(l.0)
            .or_insert_with(|| self.base_fwd_run(l).to_vec());
    }

    fn touch_rev(&self, d: &mut DeltaState, l: LabelId) {
        d.rev
            .entry(l.0)
            .or_insert_with(|| self.base_rev_run(l).to_vec());
    }

    /// Seeds the per-label endpoint multiset from the label's current
    /// run — one scan, amortised over all subsequent ops on the label.
    fn ensure_endpoints(&self, d: &mut DeltaState, l: LabelId) {
        if d.endpoints.contains_key(&l.0) {
            return;
        }
        let run: Vec<EdgeId> = match d.elab.get(&l.0) {
            Some(v) => v.clone(),
            None => self.edges_with_label(l).to_vec(),
        };
        let mut ep = LabelEndpoints::default();
        for e in run {
            let ed = self.edge_in(d, e);
            *ep.src.entry(ed.src.0).or_insert(0) += 1;
            *ep.dst.entry(ed.dst.0).or_insert(0) += 1;
        }
        d.endpoints.insert(l.0, ep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::figure1::figure1;

    fn assert_same_answers(mutated: &Graph, rebuilt: &Graph) {
        assert_eq!(mutated.node_count(), rebuilt.node_count());
        assert_eq!(mutated.edge_count(), rebuilt.edge_count());
        // Edge multiset by (src-label, edge-label, dst-label).
        let key = |g: &Graph, e: EdgeId| g.describe_edge(e);
        let mut a: Vec<String> = mutated.edge_ids().map(|e| key(mutated, e)).collect();
        let mut b: Vec<String> = rebuilt.edge_ids().map(|e| key(rebuilt, e)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Relative edge-id order is identical: live edges enumerate in
        // the same (src, label, dst) sequence.
        let a: Vec<String> = mutated.edge_ids().map(|e| key(mutated, e)).collect();
        let b: Vec<String> = rebuilt.edge_ids().map(|e| key(rebuilt, e)).collect();
        assert_eq!(a, b);
        // Per-node adjacency agrees (node ids are stable).
        for n in mutated.node_ids() {
            let an: Vec<_> = mutated
                .adjacent(n)
                .iter()
                .map(|x| (x.other(), x.outgoing(), key(mutated, x.edge())))
                .collect();
            let bn: Vec<_> = rebuilt
                .adjacent(n)
                .iter()
                .map(|x| (x.other(), x.outgoing(), key(rebuilt, x.edge())))
                .collect();
            assert_eq!(an, bn, "adjacency of {n:?} diverged");
        }
        // Cardinalities agree exactly (keyed by label string — the
        // two graphs intern in different orders).
        let by_name = |g: &Graph| {
            let c = Cardinalities::of(g);
            let mut edge: Vec<_> = c
                .edge_labels
                .iter()
                .map(|(l, card)| (g.resolve(*l).to_string(), *card))
                .collect();
            edge.sort_by(|a, b| a.0.cmp(&b.0));
            let mut types: Vec<_> = c
                .node_types
                .iter()
                .map(|(l, k)| (g.resolve(*l).to_string(), *k))
                .collect();
            types.sort();
            (edge, types)
        };
        assert_eq!(
            by_name(mutated),
            by_name(rebuilt),
            "recomputed cardinalities diverged"
        );
    }

    #[test]
    fn insert_edge_visible_everywhere() {
        let mut g = figure1();
        let alice = g.node_by_label("Alice").unwrap();
        let bob = g.node_by_label("Bob").unwrap();
        let before = g.edge_count();
        let e = g.insert_edge(alice, "mentors", bob);
        assert_eq!(g.edge_count(), before + 1);
        assert_eq!(g.describe_edge(e), "Alice -mentors-> Bob");
        let l = g.label_id("mentors").unwrap();
        assert_eq!(g.edges_with_label(l), &[e]);
        assert_eq!(g.out_edges_labelled(alice, l), &[e]);
        assert_eq!(g.in_edges_labelled(bob, l), &[e]);
        assert!(g
            .adjacent(alice)
            .iter()
            .any(|a| a.edge() == e && a.outgoing()));
        assert!(g
            .adjacent(bob)
            .iter()
            .any(|a| a.edge() == e && !a.outgoing()));
        assert!(g.edge_ids().any(|x| x == e));
    }

    #[test]
    fn remove_edge_disappears_everywhere() {
        let mut g = figure1();
        let l = g.label_id("citizenOf").unwrap();
        let e = g.edges_with_label(l)[0];
        let ed = *g.edge(e);
        assert!(g.remove_edge(e));
        assert!(!g.remove_edge(e), "double-remove is a no-op");
        assert!(!g.edges_with_label(l).contains(&e));
        assert!(!g.out_edges_labelled(ed.src, l).contains(&e));
        assert!(!g.in_edges_labelled(ed.dst, l).contains(&e));
        assert!(g.adjacent(ed.src).iter().all(|a| a.edge() != e));
        assert!(g.edge_ids().all(|x| x != e));
    }

    #[test]
    fn insert_node_indexed_by_label_and_type() {
        let mut g = figure1();
        let n = g.insert_node("Zoe", &["person", "entrepreneur"]);
        assert_eq!(g.node_label(n), "Zoe");
        assert_eq!(
            g.node_types(n).collect::<Vec<_>>(),
            ["person", "entrepreneur"]
        );
        let ent = g.label_id("entrepreneur").unwrap();
        assert!(g.nodes_with_type(ent).contains(&n));
        assert_eq!(g.node_by_label("Zoe"), Some(n));
        // Edges can attach to the new node.
        let alice = g.node_by_label("Alice").unwrap();
        let e = g.insert_edge(n, "knows", alice);
        assert_eq!(g.other_endpoint(e, n), alice);
        assert_eq!(g.degree(n), 1);
    }

    #[test]
    fn generation_bumps_per_effective_batch() {
        let mut g = figure1();
        assert_eq!(g.generation(), 0);
        let alice = g.node_by_label("Alice").unwrap();
        let bob = g.node_by_label("Bob").unwrap();
        let out = g.apply(vec![
            Mutation::InsertEdge {
                src: alice,
                label: "a".into(),
                dst: bob,
            },
            Mutation::InsertEdge {
                src: bob,
                label: "b".into(),
                dst: alice,
            },
        ]);
        assert_eq!(out.generation, 1);
        assert_eq!(g.generation(), 1);
        // A no-op batch does not bump.
        let e = out.edges[0];
        g.remove_edge(e);
        assert_eq!(g.generation(), 2);
        let out = g.apply(vec![Mutation::RemoveEdge { edge: e }]);
        assert_eq!(out.removed, 0);
        assert_eq!(g.generation(), 2);
    }

    #[test]
    fn mutation_log_tracks_touched_state() {
        let mut g = figure1();
        let alice = g.node_by_label("Alice").unwrap();
        let bob = g.node_by_label("Bob").unwrap();
        g.insert_edge(alice, "mentors", bob);
        let recs = g.mutations_since(0).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].generation, 1);
        assert!(recs[0].touched_nodes.contains(&alice));
        assert!(recs[0].touched_nodes.contains(&bob));
        assert!(recs[0].labels.contains(&g.label_id("mentors").unwrap()));
        assert_eq!(g.mutations_since(1).unwrap().len(), 0);
        assert!(g.mutations_since(7).is_none(), "future generation");
    }

    #[test]
    fn log_horizon_is_bounded() {
        let mut g = GraphBuilder::new().freeze();
        let a = g.insert_node("a", &[]);
        let b = g.insert_node("b", &[]);
        for _ in 0..(LOG_CAP + 10) {
            let e = g.insert_edge(a, "x", b);
            g.remove_edge(e);
        }
        assert!(g.mutations_since(0).is_none(), "horizon exceeded");
        assert!(g.mutations_since(g.generation() - 5).is_some());
    }

    #[test]
    fn incremental_cardinalities_match_recompute() {
        let mut g = figure1();
        let _ = g.cardinalities(); // warm, so mutations maintain in place
        let alice = g.node_by_label("Alice").unwrap();
        let usa = g.node_by_label("USA").unwrap();
        let france = g.node_by_label("France").unwrap();
        // Alice already a citizenOf-source: distinct_src must not grow.
        g.insert_edge(alice, "citizenOf", usa);
        g.insert_node("Zoe", &["politician"]);
        let l = g.label_id("citizenOf").unwrap();
        let e = g.out_edges_labelled(alice, l).to_vec();
        for x in e {
            g.remove_edge(x);
        }
        g.insert_edge(usa, "alliedWith", france);
        let maintained = g.cardinalities().clone();
        assert_eq!(maintained, Cardinalities::of(&g));
    }

    #[test]
    fn mutated_equals_rebuilt_after_edit_script() {
        let mut g = figure1();
        let _ = g.cardinalities(); // warm, so mutations maintain in place
        let alice = g.node_by_label("Alice").unwrap();
        let bob = g.node_by_label("Bob").unwrap();
        let zoe = g.insert_node("Zoe", &["person"]);
        g.insert_edge(zoe, "knows", alice);
        g.insert_edge(bob, "knows", zoe);
        let l = g.label_id("citizenOf").unwrap();
        let victims = g.edges_with_label(l)[..2].to_vec();
        for e in victims {
            g.remove_edge(e);
        }
        // Rebuild the same final state from scratch, inserting live
        // edges in the mutated graph's enumeration order.
        let rebuilt = rebuild(&g);
        assert_same_answers(&g, &rebuilt);
        // And the compacted graph is equivalent too.
        let mut compacted = g.clone();
        compacted.compact();
        assert!(!compacted.has_delta());
        assert_same_answers(&compacted, &rebuilt);
        assert_eq!(compacted.generation(), g.generation());
    }

    #[test]
    fn threshold_triggers_auto_compaction() {
        let mut g = figure1();
        g.set_compaction_threshold(4);
        let alice = g.node_by_label("Alice").unwrap();
        let bob = g.node_by_label("Bob").unwrap();
        let mut compactions = 0;
        for _ in 0..6 {
            if g.apply(vec![Mutation::InsertEdge {
                src: alice,
                label: "ping".into(),
                dst: bob,
            }])
            .compacted
            {
                compactions += 1;
            }
        }
        assert!(compactions >= 1);
        assert!(g.pending_delta_ops() < 4);
        let l = g.label_id("ping").unwrap();
        assert_eq!(g.edges_with_label(l).len(), 6);
    }

    #[test]
    fn self_loop_ordering_preserved() {
        let mut g = figure1();
        let alice = g.node_by_label("Alice").unwrap();
        let e = g.insert_edge(alice, "self", alice);
        let entries: Vec<_> = g
            .adjacent(alice)
            .iter()
            .filter(|a| a.edge() == e)
            .map(|a| a.outgoing())
            .collect();
        assert_eq!(entries, [true, false], "out entry precedes in entry");
        let rebuilt = rebuild(&g);
        assert_same_answers(&g, &rebuilt);
    }

    /// Reconstructs the live state of `g` through the builder.
    fn rebuild(g: &Graph) -> Graph {
        let mut b = GraphBuilder::new();
        let mut ids = Vec::new();
        for n in g.node_ids() {
            let types: Vec<&str> = g.node_types(n).collect();
            ids.push(b.add_typed_node(g.node_label(n), &types));
        }
        for e in g.edge_ids() {
            let ed = g.edge(e);
            b.add_edge(
                ids[ed.src.index()],
                g.resolve(ed.label),
                ids[ed.dst.index()],
            );
        }
        b.freeze()
    }
}
