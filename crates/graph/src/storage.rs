//! Backing storage for the graph's columnar `u32` arrays: either an
//! owned heap buffer or a borrowed window of a memory-mapped snapshot
//! file.
//!
//! The CSR arrays of [`crate::Graph`] never care where their words
//! live; [`Storage`] hides the difference behind a cached
//! pointer/length pair so the hot accessors compile to a plain slice
//! construction with no per-call branching on the backing variant.
//!
//! The mmap wrapper uses raw `mmap(2)`/`munmap(2)` FFI (no crates.io
//! dependency) and is compiled on Unix only; other platforms fall back
//! to owned buffers at load time.

use std::fmt;
use std::sync::Arc;

/// A read-only memory mapping of an entire file.
///
/// The mapping is private (`MAP_PRIVATE`) and read-only (`PROT_READ`);
/// it is unmapped on drop. Graphs loaded zero-copy hold an
/// `Arc<MmapFile>` so the mapping outlives every slice carved from it.
///
/// The snapshot file must not be truncated while mapped (the OS would
/// deliver `SIGBUS` on access past the new end); replacing a snapshot
/// atomically via rename is safe — the mapping pins the old inode.
pub(crate) struct MmapFile {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime,
// so moving ownership to another thread is sound.
unsafe impl Send for MmapFile {}
// SAFETY: same invariant — a PROT_READ mapping never changes, so
// concurrent shared reads from any thread are sound.
unsafe impl Sync for MmapFile {}

impl fmt::Debug for MmapFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MmapFile").field("len", &self.len).finish()
    }
}

#[cfg(unix)]
mod ffi {
    //! Minimal hand-declared bindings for the two syscalls we need.
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl MmapFile {
    /// Maps `file` read-only in its entirety. Returns `None` for an
    /// empty file (zero-length mappings are invalid) and on non-Unix
    /// platforms, letting callers fall back to an owned read.
    #[cfg(unix)]
    pub(crate) fn map(file: &std::fs::File) -> std::io::Result<Option<Arc<MmapFile>>> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        let Ok(len) = usize::try_from(len) else {
            return Ok(None);
        };
        if len == 0 {
            return Ok(None);
        }
        // SAFETY: fd is a valid open file descriptor; we request a
        // fresh read-only private mapping of `len` bytes at a
        // kernel-chosen address.
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Some(Arc::new(MmapFile {
            ptr: ptr as *const u8,
            len,
        })))
    }

    #[cfg(not(unix))]
    pub(crate) fn map(_file: &std::fs::File) -> std::io::Result<Option<Arc<MmapFile>>> {
        Ok(None)
    }

    /// The mapped file contents.
    pub(crate) fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe the live mapping created in `map`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: ptr/len came from a successful mmap and are unmapped
        // exactly once.
        unsafe {
            ffi::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

/// One columnar `u32` array of a [`crate::Graph`]: an owned buffer, or
/// a 4-byte-aligned window of a shared [`MmapFile`].
///
/// The pointer/length pair is cached at construction so [`as_slice`]
/// (every graph accessor's first step) is branch-free regardless of
/// the backing.
///
/// [`as_slice`]: Storage::as_slice
pub(crate) struct Storage {
    ptr: *const u32,
    len: usize,
    backing: Backing,
}

enum Backing {
    Owned(Vec<u32>),
    Mapped(Arc<MmapFile>),
}

// SAFETY: the referenced words are immutable for the lifetime of the
// backing (owned Vec never mutated after construction; mapping is
// PROT_READ), and the backing moves together with the pointer, so
// sending Storage to another thread is sound.
unsafe impl Send for Storage {}
// SAFETY: same invariant — the words never change after construction,
// so Storage shared across threads is as safe as a `&[u32]`.
unsafe impl Sync for Storage {}

impl Storage {
    /// Wraps an owned buffer.
    pub(crate) fn from_vec(v: Vec<u32>) -> Storage {
        Storage {
            ptr: v.as_ptr(),
            len: v.len(),
            backing: Backing::Owned(v),
        }
    }

    /// Borrows `len_u32` words starting `byte_offset` bytes into the
    /// mapping. Returns `None` (callers fall back to an owned copy)
    /// if the window is out of bounds or not 4-byte aligned — a
    /// well-formed CSR snapshot is always aligned, but the layout
    /// must never be trusted blindly.
    pub(crate) fn from_mapping(
        map: &Arc<MmapFile>,
        byte_offset: usize,
        len_u32: usize,
    ) -> Option<Storage> {
        let bytes = map.bytes();
        let end = byte_offset.checked_add(len_u32.checked_mul(4)?)?;
        if end > bytes.len() {
            return None;
        }
        let ptr = bytes[byte_offset..].as_ptr();
        if ptr.align_offset(std::mem::align_of::<u32>()) != 0 {
            return None;
        }
        Some(Storage {
            ptr: ptr as *const u32,
            len: len_u32,
            backing: Backing::Mapped(Arc::clone(map)),
        })
    }

    /// The words as a slice.
    #[inline(always)]
    pub(crate) fn as_slice(&self) -> &[u32] {
        // SAFETY: ptr/len were validated at construction and the
        // backing (owned Vec or Arc'd mapping) is alive as long as
        // `self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// True if the words live in a mapped snapshot file rather than
    /// owned memory.
    pub(crate) fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }
}

impl Clone for Storage {
    fn clone(&self) -> Storage {
        match &self.backing {
            Backing::Owned(v) => Storage::from_vec(v.clone()),
            Backing::Mapped(m) => Storage {
                ptr: self.ptr,
                len: self.len,
                backing: Backing::Mapped(Arc::clone(m)),
            },
        }
    }
}

impl fmt::Debug for Storage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.backing {
            Backing::Owned(_) => "owned",
            Backing::Mapped(_) => "mapped",
        };
        write!(f, "Storage({kind}, {} words)", self.len)
    }
}

impl PartialEq for Storage {
    fn eq(&self, other: &Storage) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip_and_clone() {
        let s = Storage::from_vec(vec![1, 2, 3]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        let c = s.clone();
        assert_eq!(c.as_slice(), &[1, 2, 3]);
        assert!(!s.is_mapped());
    }

    #[cfg(unix)]
    // Miri cannot call the mmap FFI.
    #[cfg(not(miri))]
    #[test]
    fn mapping_windows_and_bounds() {
        let mut path = std::env::temp_dir();
        path.push(format!("cs-storage-test-{}", std::process::id()));
        let words: Vec<u8> = [1u32, 2, 3, 4]
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        std::fs::write(&path, &words).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = MmapFile::map(&file).unwrap().expect("non-empty mapping");
        std::fs::remove_file(&path).ok();

        let s = Storage::from_mapping(&map, 4, 2).unwrap();
        assert_eq!(s.as_slice(), &[2, 3]);
        assert!(s.is_mapped());
        assert_eq!(s.clone().as_slice(), &[2, 3]);
        // Out of bounds and misaligned windows are refused.
        assert!(Storage::from_mapping(&map, 0, 5).is_none());
        assert!(Storage::from_mapping(&map, 1, 1).is_none());
    }
}
