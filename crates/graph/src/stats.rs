//! Descriptive statistics over graphs — used by benchmark reports to
//! describe generated workloads (node/edge counts, degree distribution,
//! label frequencies) and by the query planner to estimate access-path
//! cardinalities ([`Cardinalities`]).

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::LabelId;
use crate::model::Graph;
use std::fmt;

/// Summary statistics of a [`Graph`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of distinct edge labels in use.
    pub edge_labels: usize,
    /// Number of distinct node types in use.
    pub node_types: usize,
    /// Maximum (undirected) degree.
    pub max_degree: usize,
    /// Mean (undirected) degree.
    pub mean_degree: f64,
    /// Number of connected components (edges taken as undirected).
    pub components: usize,
}

/// Computes [`GraphStats`] in O(|N| + |E|).
pub fn stats(g: &Graph) -> GraphStats {
    let mut max_degree = 0;
    for n in g.node_ids() {
        max_degree = max_degree.max(g.degree(n));
    }
    let mean_degree = if g.node_count() == 0 {
        0.0
    } else {
        2.0 * g.edge_count() as f64 / g.node_count() as f64
    };

    // Union-find over undirected edges.
    let mut parent: Vec<u32> = (0..g.node_count() as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let (a, b) = (find(&mut parent, ed.src.0), find(&mut parent, ed.dst.0));
        if a != b {
            parent[a as usize] = b;
        }
    }
    let mut components = 0;
    for i in 0..g.node_count() as u32 {
        if find(&mut parent, i) == i {
            components += 1;
        }
    }

    let labels = 0..g.interner().len();
    let edge_labels = labels
        .clone()
        .filter(|&l| !g.edges_with_label(LabelId::new(l)).is_empty())
        .count();
    let node_types = labels
        .filter(|&l| !g.nodes_with_type(LabelId::new(l)).is_empty())
        .count();

    GraphStats {
        nodes: g.node_count(),
        edges: g.edge_count(),
        edge_labels,
        node_types,
        max_degree,
        mean_degree,
        components,
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, {} edge labels, {} node types, degree max {} / mean {:.2}, {} component(s)",
            self.nodes,
            self.edges,
            self.edge_labels,
            self.node_types,
            self.max_degree,
            self.mean_degree,
            self.components
        )
    }
}

/// Per-label frequencies of one edge label, with distinct-endpoint
/// estimates used for join selectivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LabelCard {
    /// Number of edges carrying the label.
    pub edges: usize,
    /// Number of distinct source nodes among those edges.
    pub distinct_src: usize,
    /// Number of distinct target nodes among those edges.
    pub distinct_dst: usize,
}

/// A cardinality snapshot of a [`Graph`] — the statistics the planner
/// consumes: per-edge-label counts with distinct-endpoint estimates,
/// per-node-label and per-node-type counts. Computed once per graph in
/// O(|N| + |E|) and cached on the graph itself
/// ([`Graph::cardinalities`]); the graph is immutable, so the snapshot
/// never goes stale. Snapshot files (`cs_graph::binfmt` CSG2) can
/// persist the snapshot in a statistics section so a loaded graph
/// starts with a warm planner; `PartialEq` lets round-trip tests assert
/// the persisted statistics equal the recomputed ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cardinalities {
    /// |N|.
    pub nodes: usize,
    /// |E|.
    pub edges: usize,
    /// Per-edge-label cardinalities.
    pub edge_labels: FxHashMap<LabelId, LabelCard>,
    /// Number of nodes per node label.
    pub node_labels: FxHashMap<LabelId, usize>,
    /// Number of nodes per node type.
    pub node_types: FxHashMap<LabelId, usize>,
}

impl Cardinalities {
    /// Computes the snapshot. Prefer [`Graph::cardinalities`], which
    /// computes it at most once per graph.
    pub fn of(g: &Graph) -> Cardinalities {
        let mut edge_labels: FxHashMap<LabelId, LabelCard> = FxHashMap::default();
        let mut srcs: FxHashMap<LabelId, FxHashSet<u32>> = FxHashMap::default();
        let mut dsts: FxHashMap<LabelId, FxHashSet<u32>> = FxHashMap::default();
        for e in g.edge_ids() {
            let ed = g.edge(e);
            edge_labels.entry(ed.label).or_default().edges += 1;
            srcs.entry(ed.label).or_default().insert(ed.src.0);
            dsts.entry(ed.label).or_default().insert(ed.dst.0);
        }
        for (l, card) in edge_labels.iter_mut() {
            card.distinct_src = srcs.get(l).map_or(0, FxHashSet::len);
            card.distinct_dst = dsts.get(l).map_or(0, FxHashSet::len);
        }
        let mut node_labels: FxHashMap<LabelId, usize> = FxHashMap::default();
        let mut node_types: FxHashMap<LabelId, usize> = FxHashMap::default();
        for n in g.node_ids() {
            let nd = g.node(n);
            *node_labels.entry(nd.label).or_default() += 1;
            for &t in nd.types.iter() {
                *node_types.entry(t).or_default() += 1;
            }
        }
        Cardinalities {
            nodes: g.node_count(),
            edges: g.edge_count(),
            edge_labels,
            node_labels,
            node_types,
        }
    }

    /// Number of edges carrying label `l` (0 if absent).
    pub fn edge_label_count(&self, l: LabelId) -> usize {
        self.edge_labels.get(&l).map_or(0, |c| c.edges)
    }

    /// Number of nodes labelled `l` (0 if absent).
    pub fn node_label_count(&self, l: LabelId) -> usize {
        self.node_labels.get(&l).copied().unwrap_or(0)
    }

    /// Number of nodes with type `t` (0 if absent).
    pub fn node_type_count(&self, t: LabelId) -> usize {
        self.node_types.get(&t).copied().unwrap_or(0)
    }

    /// Mean (undirected) degree — the expansion factor of an
    /// unconstrained adjacency step.
    pub fn mean_degree(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            2.0 * self.edges as f64 / self.nodes as f64
        }
    }
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`
/// (truncated at `max_bucket`, with an overflow bucket at the end).
pub fn degree_histogram(g: &Graph, max_bucket: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bucket + 2];
    for n in g.node_ids() {
        let d = g.degree(n).min(max_bucket + 1);
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;
    use crate::generate::line;

    #[test]
    fn figure1_stats() {
        let s = stats(&figure1());
        assert_eq!(s.nodes, 12);
        assert_eq!(s.edges, 19);
        assert_eq!(s.components, 1);
        assert_eq!(s.max_degree, 4); // OrgA / OrgC / France / Doug
        assert!(s.to_string().contains("12 nodes"));
    }

    #[test]
    fn line_components() {
        let w = line(3, 2);
        assert_eq!(stats(&w.graph).components, 1);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = figure1();
        let h = degree_histogram(&g, 8);
        assert_eq!(h.iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn empty_graph() {
        let g = crate::builder::GraphBuilder::new().freeze();
        let s = stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.mean_degree, 0.0);
    }

    #[test]
    fn cardinalities_figure1() {
        let g = figure1();
        let c = g.cardinalities();
        assert_eq!(c.nodes, 12);
        assert_eq!(c.edges, 19);
        let citizen = g.label_id("citizenOf").unwrap();
        let card = c.edge_labels[&citizen];
        assert_eq!(card.edges, 5); // Alice, Bob, Carole, Doug, Elon
        assert_eq!(card.distinct_src, 5);
        assert_eq!(card.distinct_dst, 2); // USA, France
        assert_eq!(c.edge_label_count(citizen), 5);
        let ent = g.label_id("entrepreneur").unwrap();
        assert_eq!(c.node_type_count(ent), 4);
        let usa = g.label_id("USA").unwrap();
        assert_eq!(c.node_label_count(usa), 1);
        assert!((c.mean_degree() - 2.0 * 19.0 / 12.0).abs() < 1e-12);
        // Absent label ⇒ zero everywhere.
        assert_eq!(c.edge_label_count(crate::ids::LabelId(9999)), 0);
        assert_eq!(c.node_type_count(crate::ids::LabelId(9999)), 0);
    }

    #[test]
    fn cardinalities_cached_once() {
        let g = figure1();
        let a = g.cardinalities() as *const Cardinalities;
        let b = g.cardinalities() as *const Cardinalities;
        assert_eq!(a, b, "snapshot computed at most once per graph");
    }

    #[test]
    fn cardinalities_sums_consistent() {
        let g = figure1();
        let c = g.cardinalities();
        assert_eq!(
            c.edge_labels.values().map(|l| l.edges).sum::<usize>(),
            c.edges
        );
        assert_eq!(c.node_labels.values().sum::<usize>(), c.nodes);
        for card in c.edge_labels.values() {
            assert!(card.distinct_src <= card.edges);
            assert!(card.distinct_dst <= card.edges);
        }
    }
}
