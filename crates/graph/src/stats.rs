//! Descriptive statistics over graphs — used by benchmark reports to
//! describe generated workloads (node/edge counts, degree distribution,
//! label frequencies).

use crate::model::Graph;
use std::fmt;

/// Summary statistics of a [`Graph`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Number of distinct edge labels in use.
    pub edge_labels: usize,
    /// Number of distinct node types in use.
    pub node_types: usize,
    /// Maximum (undirected) degree.
    pub max_degree: usize,
    /// Mean (undirected) degree.
    pub mean_degree: f64,
    /// Number of connected components (edges taken as undirected).
    pub components: usize,
}

/// Computes [`GraphStats`] in O(|N| + |E|).
pub fn stats(g: &Graph) -> GraphStats {
    let mut max_degree = 0;
    for n in g.node_ids() {
        max_degree = max_degree.max(g.degree(n));
    }
    let mean_degree = if g.node_count() == 0 {
        0.0
    } else {
        2.0 * g.edge_count() as f64 / g.node_count() as f64
    };

    // Union-find over undirected edges.
    let mut parent: Vec<u32> = (0..g.node_count() as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for e in g.edge_ids() {
        let ed = g.edge(e);
        let (a, b) = (find(&mut parent, ed.src.0), find(&mut parent, ed.dst.0));
        if a != b {
            parent[a as usize] = b;
        }
    }
    let mut components = 0;
    for i in 0..g.node_count() as u32 {
        if find(&mut parent, i) == i {
            components += 1;
        }
    }

    let edge_labels = g
        .edges_by_label
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .count();
    let node_types = g
        .nodes_by_type
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .count();

    GraphStats {
        nodes: g.node_count(),
        edges: g.edge_count(),
        edge_labels,
        node_types,
        max_degree,
        mean_degree,
        components,
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, {} edge labels, {} node types, degree max {} / mean {:.2}, {} component(s)",
            self.nodes,
            self.edges,
            self.edge_labels,
            self.node_types,
            self.max_degree,
            self.mean_degree,
            self.components
        )
    }
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`
/// (truncated at `max_bucket`, with an overflow bucket at the end).
pub fn degree_histogram(g: &Graph, max_bucket: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bucket + 2];
    for n in g.node_ids() {
        let d = g.degree(n).min(max_bucket + 1);
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;
    use crate::generate::line;

    #[test]
    fn figure1_stats() {
        let s = stats(&figure1());
        assert_eq!(s.nodes, 12);
        assert_eq!(s.edges, 19);
        assert_eq!(s.components, 1);
        assert_eq!(s.max_degree, 4); // OrgA / OrgC / France / Doug
        assert!(s.to_string().contains("12 nodes"));
    }

    #[test]
    fn line_components() {
        let w = line(3, 2);
        assert_eq!(stats(&w.graph).components, 1);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = figure1();
        let h = degree_histogram(&g, 8);
        assert_eq!(h.iter().sum::<usize>(), g.node_count());
    }

    #[test]
    fn empty_graph() {
        let g = crate::builder::GraphBuilder::new().freeze();
        let s = stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.mean_degree, 0.0);
    }
}
