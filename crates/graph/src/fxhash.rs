//! A small, fast, non-cryptographic hasher (the FxHash algorithm used by
//! rustc), implemented in-repo to stay within the approved dependency set.
//!
//! Connection search hashes millions of small keys (edge-id arrays, node
//! ids, `(root, edge-set)` pairs); SipHash's HashDoS protection is wasted
//! work here because all keys are internally generated.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: a single 64-bit word mixed by rotate-xor-multiply.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with FxHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a single value with FxHash; convenient for manual hash-consing.
#[inline]
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash_one(&[1u32, 2, 3]), fx_hash_one(&[1u32, 2, 3]));
        assert_ne!(fx_hash_one(&[1u32, 2, 3]), fx_hash_one(&[1u32, 3, 2]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));

        let mut s: FxHashSet<Vec<u32>> = FxHashSet::default();
        assert!(s.insert(vec![1, 2]));
        assert!(!s.insert(vec![1, 2]));
    }

    #[test]
    fn distributes_small_ints() {
        // FxHash must not collapse consecutive integers onto the same
        // bucket pattern; check the low bits vary.
        let hashes: Vec<u64> = (0u64..64).map(|i| fx_hash_one(&i)).collect();
        let distinct_low: FxHashSet<u64> = hashes.iter().map(|h| h & 0xff).collect();
        assert!(distinct_low.len() > 32, "low byte should spread");
    }

    #[test]
    fn write_paths_agree_on_prefixes() {
        // Different-length byte strings must hash differently.
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abc\0");
        assert_ne!(a.finish(), b.finish());
    }
}
