//! The paper's running example: the sample data graph of Figure 1.
//!
//! Twelve nodes (companies, entrepreneurs, politicians, countries, one
//! literal) and nineteen labelled edges. Used throughout the paper's
//! Section 2 examples, and here in tests and the quickstart example.

use crate::builder::GraphBuilder;
use crate::model::Graph;

/// Builds the Figure 1 graph. Node ids follow the paper's numbering
/// (paper node *k* is `NodeId(k-1)`), and edge ids likewise
/// (paper edge *k* is `EdgeId(k-1)`).
pub fn figure1() -> Graph {
    let mut b = GraphBuilder::new();
    let orgb = b.add_typed_node("OrgB", &["company"]); // 1
    let bob = b.add_typed_node("Bob", &["entrepreneur"]); // 2
    let alice = b.add_typed_node("Alice", &["entrepreneur"]); // 3
    let carole = b.add_typed_node("Carole", &["entrepreneur"]); // 4
    let orga = b.add_typed_node("OrgA", &["company"]); // 5
    let doug = b.add_typed_node("Doug", &["entrepreneur"]); // 6
    let orgc = b.add_typed_node("OrgC", &["company"]); // 7
    let france = b.add_typed_node("France", &["country"]); // 8
    let elon = b.add_typed_node("Elon", &["politician"]); // 9
    let usa = b.add_typed_node("USA", &["country"]); // 10
    let nlp = b.add_node("\"National Liberal Party\""); // 11 (literal)
    let falcon = b.add_typed_node("Falcon", &["politician"]); // 12

    // Edges 1..19, reconstructed from the paper's figure and the worked
    // examples in Section 2 (t_alpha = {e10, e9, e11}, t_beta =
    // {e1, e2, e17, e16}, seed sets S1 = {n2, n4} US entrepreneurs,
    // S2 = {n3, n6} French entrepreneurs, S3 = {n9} French politicians).
    b.add_edge(bob, "founded", orgb); // e1
    b.add_edge(alice, "investsIn", orgb); // e2
    b.add_edge(orgb, "parentOf", orga); // e3
    b.add_edge(orga, "locatedIn", france); // e4
    b.add_edge(bob, "citizenOf", usa); // e5
    b.add_edge(carole, "citizenOf", usa); // e6
    b.add_edge(carole, "founded", orga); // e7
    b.add_edge(doug, "CEO", orga); // e8
    b.add_edge(doug, "investsIn", orgc); // e9
    b.add_edge(carole, "founded", orgc); // e10
    b.add_edge(elon, "parentOf", doug); // e11
    b.add_edge(alice, "citizenOf", france); // e12
    b.add_edge(doug, "citizenOf", france); // e13
    b.add_edge(elon, "citizenOf", france); // e14
    b.add_edge(orgc, "locatedIn", usa); // e15
    b.add_edge(elon, "affiliation", nlp); // e16
    b.add_edge(alice, "funds", nlp); // e17
    b.add_edge(falcon, "affiliation", nlp); // e18
    b.add_edge(falcon, "investsIn", orgc); // e19
    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EdgeId, NodeId};
    use crate::predicate::{matching_nodes, Predicate};

    #[test]
    fn shape() {
        let g = figure1();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 19);
    }

    #[test]
    fn paper_node_numbering() {
        let g = figure1();
        assert_eq!(g.node_label(NodeId(0)), "OrgB");
        assert_eq!(g.node_label(NodeId(3)), "Carole");
        assert_eq!(g.node_label(NodeId(11)), "Falcon");
    }

    #[test]
    fn paper_edge_numbering() {
        let g = figure1();
        // e10 in the paper = Carole founded OrgC.
        assert_eq!(g.describe_edge(EdgeId(9)), "Carole -founded-> OrgC");
        // e11 = Elon parentOf Doug.
        assert_eq!(g.describe_edge(EdgeId(10)), "Elon -parentOf-> Doug");
    }

    #[test]
    fn q1_seed_sets() {
        // Q1: US entrepreneurs {Bob, Carole}, French entrepreneurs
        // {Alice, Doug}, French politicians {Elon}.
        let g = figure1();
        let us_ent = seed(&g, "entrepreneur", "USA");
        let fr_ent = seed(&g, "entrepreneur", "France");
        let fr_pol = seed(&g, "politician", "France");
        assert_eq!(labels(&g, &us_ent), ["Bob", "Carole"]);
        assert_eq!(labels(&g, &fr_ent), ["Alice", "Doug"]);
        assert_eq!(labels(&g, &fr_pol), ["Elon"]);
    }

    fn seed(g: &Graph, ty: &str, country: &str) -> Vec<crate::ids::NodeId> {
        let c = g.node_by_label(country).unwrap();
        matching_nodes(g, &Predicate::typed(ty))
            .into_iter()
            .filter(|&n| {
                g.outgoing(n)
                    .any(|a| a.other() == c && g.edge_label(a.edge()) == "citizenOf")
            })
            .collect()
    }

    fn labels<'g>(g: &'g Graph, ns: &[crate::ids::NodeId]) -> Vec<&'g str> {
        ns.iter().map(|&n| g.node_label(n)).collect()
    }
}
