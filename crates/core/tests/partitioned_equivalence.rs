//! Property tests (vendored proptest): the partitioned-history
//! parallel engine must be result-identical to the sequential engine
//! for every `GamConfig` variant on random graphs — tested exactly
//! where the variant's result set is exploration-order-independent,
//! i.e. where it is complete (the same scope in which *sequential*
//! runs are order-independent, cf. Figures 5/6):
//!
//! * GAM — complete for any `m` (Property 1);
//! * ESP / LESP / MoESP — complete for `m ≤ 2` (Property 3);
//! * MoLESP — complete for `m ≤ 3` (Property 8).
//!
//! Beyond set equality, the partitioned engine's canonical result
//! *order* must be invariant in the worker count, and the per-worker
//! statistics must sum to the aggregate counters.

use cs_core::{
    evaluate_ctp, evaluate_ctp_partitioned, Algorithm, Filters, QueueOrder, QueuePolicy, SeedSets,
};
use cs_graph::generate::random_connected;
use cs_graph::NodeId;
use proptest::prelude::*;

const NODES: usize = 12;

/// `m` singleton-ish seed sets over distinct nodes, deterministically
/// derived from a generated u64.
fn seed_sets(m: usize, pick: u64) -> SeedSets {
    let mut nodes: Vec<u32> = (0..NODES as u32).collect();
    // Fisher–Yates driven by the generated bits.
    let mut state = pick | 1;
    for i in (1..nodes.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        nodes.swap(i, j);
    }
    let sets: Vec<Vec<NodeId>> = (0..m)
        .map(|i| {
            // Alternate 1- and 2-node sets.
            let width = 1 + (i % 2);
            (0..width).map(|k| NodeId(nodes[2 * i + k])).collect()
        })
        .collect();
    SeedSets::from_sets(sets).expect("valid seed sets")
}

fn equivalent(g: &cs_graph::Graph, seeds: &SeedSets, algo: Algorithm, workers: usize) {
    let filters = Filters::none().with_max_edges(4);
    let seq = evaluate_ctp(g, seeds, algo, filters.clone(), QueueOrder::SmallestFirst);
    let par = evaluate_ctp_partitioned(
        g,
        seeds,
        algo,
        filters,
        QueueOrder::SmallestFirst,
        QueuePolicy::Single,
        workers,
    );
    assert_eq!(
        seq.results.canonical(),
        par.results.canonical(),
        "{algo} diverged with {workers} workers"
    );
    // Aggregate counters are the sums of the per-worker counters.
    assert_eq!(par.stats.workers.len(), workers);
    assert_eq!(
        par.stats.workers.iter().map(|w| w.produced).sum::<u64>(),
        par.stats.provenances
    );
    assert_eq!(
        par.stats.workers.iter().map(|w| w.pruned).sum::<u64>(),
        par.stats.pruned
    );
    assert_eq!(
        par.stats.workers.iter().map(|w| w.stolen).sum::<u64>(),
        par.stats.stolen
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every variant at m = 2, where all five are complete.
    #[test]
    fn all_variants_equivalent_m2(seed in any::<u64>(), extra in 0usize..8, pick in any::<u64>(), workers in 2usize..5) {
        let g = random_connected(NODES, extra, seed);
        let seeds = seed_sets(2, pick);
        for algo in Algorithm::GAM_FAMILY {
            equivalent(&g, &seeds, algo, workers);
        }
    }

    /// GAM (complete for any m) and MoLESP (complete for m ≤ 3) at
    /// m = 3.
    #[test]
    fn gam_and_molesp_equivalent_m3(seed in any::<u64>(), extra in 0usize..8, pick in any::<u64>(), workers in 2usize..5) {
        let g = random_connected(NODES, extra, seed);
        let seeds = seed_sets(3, pick);
        equivalent(&g, &seeds, Algorithm::Gam, workers);
        equivalent(&g, &seeds, Algorithm::MoLesp, workers);
    }

    /// The canonical result order never depends on the worker count.
    #[test]
    fn order_invariant_in_worker_count(seed in any::<u64>(), extra in 0usize..8, pick in any::<u64>()) {
        let g = random_connected(NODES, extra, seed);
        let seeds = seed_sets(2, pick);
        let runs: Vec<Vec<Vec<cs_graph::EdgeId>>> = [2usize, 3, 4]
            .iter()
            .map(|&k| {
                evaluate_ctp_partitioned(
                    &g,
                    &seeds,
                    Algorithm::MoLesp,
                    Filters::none().with_max_edges(4),
                    QueueOrder::SmallestFirst,
                    QueuePolicy::Single,
                    k,
                )
                .results
                .trees()
                .iter()
                .map(|t| t.edges.to_vec())
                .collect()
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1]);
        prop_assert_eq!(&runs[1], &runs[2]);
    }
}

/// The balanced queue policy (§4.9) composes with partitioning.
#[test]
fn balanced_policy_equivalent() {
    for seed in 0..8u64 {
        let g = random_connected(NODES, 4, seed);
        let seeds = seed_sets(2, seed.wrapping_mul(0x9e3779b97f4a7c15));
        let filters = Filters::none().with_max_edges(4);
        let seq = evaluate_ctp(
            &g,
            &seeds,
            Algorithm::MoLesp,
            filters.clone(),
            QueueOrder::SmallestFirst,
        );
        let par = evaluate_ctp_partitioned(
            &g,
            &seeds,
            Algorithm::MoLesp,
            filters,
            QueueOrder::SmallestFirst,
            QueuePolicy::Balanced,
            3,
        );
        assert_eq!(seq.results.canonical(), par.results.canonical());
    }
}

/// BFT variants have no partitioned mode: `evaluate_ctp_partitioned`
/// must quietly run them sequentially rather than panic.
#[test]
fn bft_falls_back_to_sequential() {
    let g = random_connected(NODES, 2, 99);
    let seeds = seed_sets(2, 7);
    let out = evaluate_ctp_partitioned(
        &g,
        &seeds,
        Algorithm::Bft,
        Filters::none().with_max_edges(3),
        QueueOrder::SmallestFirst,
        QueuePolicy::Single,
        4,
    );
    let seq = evaluate_ctp(
        &g,
        &seeds,
        Algorithm::Bft,
        Filters::none().with_max_edges(3),
        QueueOrder::SmallestFirst,
    );
    assert_eq!(out.results.canonical(), seq.results.canonical());
    assert!(out.stats.workers.is_empty());
}
