//! Tests of the §4.9 machinery for very large and `N` seed sets: the
//! balanced multi-queue policy and the N-set simplification.

use cs_core::{
    evaluate_ctp_with_policy, Algorithm, Filters, QueueOrder, QueuePolicy, SeedSets, SeedSpec,
};
use cs_graph::generate::{yago_like, YagoLikeParams};
use cs_graph::NodeId;

fn graph() -> cs_graph::Graph {
    yago_like(&YagoLikeParams {
        persons: 600,
        organisations: 40,
        places: 20,
        works: 80,
        seed: 31,
    })
}

#[test]
fn balanced_and_single_policies_agree_on_results() {
    let g = graph();
    let persons: Vec<NodeId> = g.nodes_with_type(g.label_id("person").unwrap()).to_vec();
    let org0 = g.node_by_label("org0").unwrap();
    let seeds = SeedSets::from_sets(vec![persons, vec![org0]]).unwrap();
    let filters = Filters::none().with_max_edges(2);
    let mut canons = Vec::new();
    for policy in [QueuePolicy::Single, QueuePolicy::Balanced] {
        let out = evaluate_ctp_with_policy(
            &g,
            &seeds,
            Algorithm::MoLesp,
            filters.clone(),
            QueueOrder::SmallestFirst,
            policy,
        );
        assert!(!out.results.is_empty());
        canons.push(out.results.canonical());
    }
    assert_eq!(
        canons[0], canons[1],
        "policy must not change the result set"
    );
}

#[test]
fn n_seed_set_explores_only_from_explicit_seeds() {
    // With an N set, exploration starts only from the explicit seeds;
    // results are all bounded trees around them.
    let g = graph();
    let p0 = g.node_by_label("person0").unwrap();
    let seeds = SeedSets::new(vec![SeedSpec::one(p0), SeedSpec::All]).unwrap();
    let out = evaluate_ctp_with_policy(
        &g,
        &seeds,
        Algorithm::MoLesp,
        Filters::none().with_max_edges(1),
        QueueOrder::SmallestFirst,
        QueuePolicy::Balanced,
    );
    // Results: the 0-edge tree {person0} plus one 1-edge tree per
    // incident edge.
    assert_eq!(out.results.len(), 1 + g.degree(p0));
    for t in out.results.trees() {
        assert!(
            t.nodes.contains(&p0),
            "every tree touches the explicit seed"
        );
    }
}

#[test]
fn n_seed_set_results_report_match_node() {
    let g = graph();
    let p0 = g.node_by_label("person0").unwrap();
    let seeds = SeedSets::new(vec![SeedSpec::one(p0), SeedSpec::All]).unwrap();
    let out = evaluate_ctp_with_policy(
        &g,
        &seeds,
        Algorithm::MoLesp,
        Filters::none().with_max_edges(2).with_max_results(50),
        QueueOrder::SmallestFirst,
        QueuePolicy::Single,
    );
    for t in out.results.trees() {
        assert_eq!(t.seeds.len(), 2);
        assert_eq!(t.seeds[0], p0);
        // The N match is some node of the tree.
        assert!(t.nodes.contains(&t.seeds[1]));
    }
}

#[test]
fn skewed_seed_sets_complete_under_both_policies() {
    // One giant set (all works) against one singleton; both policies
    // find the same first-k results set under MAX.
    let g = graph();
    let works: Vec<NodeId> = g.nodes_with_type(g.label_id("work").unwrap()).to_vec();
    let place0 = g.node_by_label("place0").unwrap();
    let seeds = SeedSets::from_sets(vec![works.clone(), vec![place0]]).unwrap();
    assert!(seeds.max_set_size() >= 80);
    for policy in [QueuePolicy::Single, QueuePolicy::Balanced] {
        let out = evaluate_ctp_with_policy(
            &g,
            &seeds,
            Algorithm::MoLesp,
            Filters::none().with_max_edges(2),
            QueueOrder::SmallestFirst,
            policy,
        );
        // Every result has exactly one work and the place.
        for t in out.results.trees() {
            assert!(works.contains(&t.seeds[0]));
            assert_eq!(t.seeds[1], place0);
        }
        assert!(!out.results.is_empty());
    }
}

#[test]
fn all_algorithms_handle_n_sets() {
    let g = graph();
    let p0 = g.node_by_label("person0").unwrap();
    let seeds = SeedSets::new(vec![SeedSpec::one(p0), SeedSpec::All]).unwrap();
    let mut counts = Vec::new();
    for algo in [Algorithm::Bft, Algorithm::Gam, Algorithm::MoLesp] {
        let out = evaluate_ctp_with_policy(
            &g,
            &seeds,
            algo,
            Filters::none().with_max_edges(1),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
        );
        counts.push(out.results.len());
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}
