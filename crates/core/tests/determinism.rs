//! Determinism and stress tests: identical inputs must yield identical
//! outputs (results AND statistics) across repeated runs — the
//! benchmark harness and EXPERIMENTS.md depend on it — and moderately
//! large searches must complete within their budgets.

use cs_core::{evaluate_ctp, Algorithm, Filters, QueueOrder, SeedSets};
use cs_graph::generate::{chain, comb, gnp, random_connected, star};
use cs_graph::NodeId;
use std::time::Duration;

#[test]
fn repeated_runs_are_bit_identical() {
    let w = comb(3, 1, 3, 2);
    let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
    for algo in Algorithm::ALL {
        let a = evaluate_ctp(
            &w.graph,
            &seeds,
            algo,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        let b = evaluate_ctp(
            &w.graph,
            &seeds,
            algo,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        assert_eq!(a.results.canonical(), b.results.canonical(), "{algo}");
        assert_eq!(a.stats, b.stats, "{algo} statistics must be deterministic");
    }
}

#[test]
fn result_order_is_deterministic() {
    // Not just the set: the discovery sequence must repeat, because
    // LIMIT k semantics depend on it.
    let w = chain(7);
    let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
    let first = |k: usize| {
        evaluate_ctp(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none().with_max_results(k),
            QueueOrder::SmallestFirst,
        )
        .results
        .trees()
        .iter()
        .map(|t| t.edges.to_vec())
        .collect::<Vec<_>>()
    };
    let a = first(20);
    let b = first(20);
    assert_eq!(a, b);
    // Prefixes agree across different limits.
    let c = first(5);
    assert_eq!(&a[..5], c.as_slice());
}

#[test]
fn dense_random_graph_within_budget() {
    // A dense-ish random digraph where the result space is large: the
    // provenance budget must bound work deterministically.
    let g = gnp(40, 0.15, 123);
    let seeds =
        SeedSets::from_sets(vec![vec![NodeId(0)], vec![NodeId(20)], vec![NodeId(39)]]).unwrap();
    let out = evaluate_ctp(
        &g,
        &seeds,
        Algorithm::MoLesp,
        Filters::none().with_max_provenances(20_000),
        QueueOrder::SmallestFirst,
    );
    assert!(out.stats.provenances <= 20_000);
    // Deterministic partial results under the budget.
    let again = evaluate_ctp(
        &g,
        &seeds,
        Algorithm::MoLesp,
        Filters::none().with_max_provenances(20_000),
        QueueOrder::SmallestFirst,
    );
    assert_eq!(out.results.canonical(), again.results.canonical());
}

#[test]
fn timeout_prevents_runaway_search() {
    // chain(24) has 2^24 results — the timeout must cut the search off
    // quickly while keeping every found result sound.
    let w = chain(24);
    let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
    let start = std::time::Instant::now();
    let out = evaluate_ctp(
        &w.graph,
        &seeds,
        Algorithm::MoLesp,
        Filters::none().with_timeout(Duration::from_millis(150)),
        QueueOrder::SmallestFirst,
    );
    assert!(out.stats.timed_out, "the search must hit the timeout");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "timeout must be enforced promptly"
    );
    let s = SeedSets::from_sets(w.seeds.clone()).unwrap();
    for t in out.results.trees().iter().take(50) {
        assert!(cs_core::check_result_minimal(&w.graph, t, &s).is_ok());
    }
}

#[test]
fn medium_star_and_connected_graphs_complete() {
    let w = star(8, 4);
    let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
    let out = evaluate_ctp(
        &w.graph,
        &seeds,
        Algorithm::MoLesp,
        Filters::none().with_timeout(Duration::from_secs(20)),
        QueueOrder::SmallestFirst,
    );
    assert!(out.complete());
    assert_eq!(out.results.len(), 1);

    let g = random_connected(200, 80, 7);
    let seeds = SeedSets::from_sets(vec![vec![NodeId(0)], vec![NodeId(199)]]).unwrap();
    let out = evaluate_ctp(
        &g,
        &seeds,
        Algorithm::MoLesp,
        Filters::none().with_max_edges(6).with_max_results(500),
        QueueOrder::SmallestFirst,
    );
    for t in out.results.trees() {
        assert!(t.size() <= 6);
    }
}
