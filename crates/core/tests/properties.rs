//! Property-based tests of the paper's formal guarantees, checked on
//! random connected graphs against the exhaustive BFT reference:
//!
//! * Property 1 — GAM is complete.
//! * Property 2 — every GAM-family result is minimal (Def. 2.8).
//! * Property 3 — ESP is complete for m = 2.
//! * Property 5 — MoESP finds all path results.
//! * Property 8 — MoLESP is complete for m ≤ 3.
//! * Filter semantics: MAX / LABEL / LIMIT / UNI.
//! * DPBF returns a minimum-size connecting tree.

use cs_core::baseline::dpbf;
use cs_core::{check_result_minimal, evaluate_ctp, Algorithm, Filters, QueueOrder, SeedSets};
use cs_graph::generate::random_connected;
use cs_graph::{EdgeId, Graph, NodeId};
use proptest::prelude::*;

/// Strategy: a small random connected graph plus m distinct seeds.
fn graph_and_seeds(m: usize) -> impl Strategy<Value = (Graph, Vec<Vec<NodeId>>)> {
    (4usize..11, 0usize..6, any::<u64>()).prop_map(move |(n, extra, seed)| {
        let g = random_connected(n, extra, seed);
        // Deterministic distinct seed picks spread over the nodes.
        let seeds: Vec<Vec<NodeId>> = (0..m).map(|i| vec![NodeId::new((i * n / m) % n)]).collect();
        (g, seeds)
    })
}

fn canonical(g: &Graph, seeds: &[Vec<NodeId>], algo: Algorithm) -> Vec<Vec<EdgeId>> {
    let s = SeedSets::from_sets(seeds.to_vec()).unwrap();
    evaluate_ctp(g, &s, algo, Filters::none(), QueueOrder::SmallestFirst)
        .results
        .canonical()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1 + Property 8: GAM and MoLESP both match the BFT
    /// reference for m = 2 and m = 3.
    #[test]
    fn gam_and_molesp_complete_m2((g, seeds) in graph_and_seeds(2)) {
        let reference = canonical(&g, &seeds, Algorithm::Bft);
        prop_assert_eq!(&canonical(&g, &seeds, Algorithm::Gam), &reference);
        prop_assert_eq!(&canonical(&g, &seeds, Algorithm::MoLesp), &reference);
    }

    #[test]
    fn gam_and_molesp_complete_m3((g, seeds) in graph_and_seeds(3)) {
        let reference = canonical(&g, &seeds, Algorithm::Bft);
        prop_assert_eq!(&canonical(&g, &seeds, Algorithm::Gam), &reference);
        prop_assert_eq!(&canonical(&g, &seeds, Algorithm::MoLesp), &reference);
    }

    /// Property 3: ESP is complete for two seed sets.
    #[test]
    fn esp_complete_m2((g, seeds) in graph_and_seeds(2)) {
        let reference = canonical(&g, &seeds, Algorithm::Bft);
        prop_assert_eq!(&canonical(&g, &seeds, Algorithm::Esp), &reference);
    }

    /// Property 5: MoESP finds every path result (m = 3).
    #[test]
    fn moesp_finds_all_path_results((g, seeds) in graph_and_seeds(3)) {
        let s = SeedSets::from_sets(seeds.clone()).unwrap();
        let reference = evaluate_ctp(
            &g, &s, Algorithm::Bft, Filters::none(), QueueOrder::SmallestFirst);
        let moesp = canonical(&g, &seeds, Algorithm::MoEsp);
        for t in reference.results.trees() {
            // A path result: no node has 3+ incident tree edges.
            let is_path = {
                use std::collections::HashMap;
                let mut deg: HashMap<NodeId, usize> = HashMap::new();
                for &e in t.edges.iter() {
                    let ed = g.edge(e);
                    *deg.entry(ed.src).or_default() += 1;
                    *deg.entry(ed.dst).or_default() += 1;
                }
                deg.values().all(|&d| d <= 2)
            };
            if is_path {
                prop_assert!(
                    moesp.contains(&t.edges.to_vec()),
                    "MoESP missed path result {:?}", t.edges
                );
            }
        }
    }

    /// Property 2 + Observation 1: every result of every algorithm is
    /// a minimal connecting tree.
    #[test]
    fn all_results_minimal((g, seeds) in graph_and_seeds(3)) {
        let s = SeedSets::from_sets(seeds.clone()).unwrap();
        for algo in Algorithm::ALL {
            let out = evaluate_ctp(
                &g, &s, algo, Filters::none(), QueueOrder::SmallestFirst);
            for t in out.results.trees() {
                prop_assert!(
                    check_result_minimal(&g, t, &s).is_ok(),
                    "{algo} produced a non-minimal result"
                );
            }
        }
    }

    /// The pruned variants never *invent* results: their canonical
    /// sets are subsets of the complete reference, and MoLESP finds at
    /// least as much as ESP and MoESP.
    #[test]
    fn pruned_are_sound_subsets((g, seeds) in graph_and_seeds(3)) {
        let reference = canonical(&g, &seeds, Algorithm::Bft);
        for algo in [Algorithm::Esp, Algorithm::MoEsp, Algorithm::Lesp, Algorithm::MoLesp] {
            let res = canonical(&g, &seeds, algo);
            for t in &res {
                prop_assert!(reference.contains(t), "{algo} invented {t:?}");
            }
        }
        let esp = canonical(&g, &seeds, Algorithm::Esp);
        let molesp = canonical(&g, &seeds, Algorithm::MoLesp);
        prop_assert!(esp.len() <= molesp.len());
    }

    /// MAX n: exactly the reference results with ≤ n edges.
    #[test]
    fn max_filter_semantics((g, seeds) in graph_and_seeds(2), n in 1usize..5) {
        let s = SeedSets::from_sets(seeds.clone()).unwrap();
        let reference = canonical(&g, &seeds, Algorithm::Bft);
        let expected: Vec<_> = reference.into_iter().filter(|t| t.len() <= n).collect();
        let got = evaluate_ctp(
            &g, &s, Algorithm::MoLesp,
            Filters::none().with_max_edges(n),
            QueueOrder::SmallestFirst,
        ).results.canonical();
        prop_assert_eq!(got, expected);
    }

    /// LABEL: results use only allowed labels, and match the reference
    /// computed on the label-filtered search.
    #[test]
    fn label_filter_semantics((g, seeds) in graph_and_seeds(2)) {
        let s = SeedSets::from_sets(seeds.clone()).unwrap();
        let allowed = ["r0".to_string(), "r1".to_string()];
        let got = evaluate_ctp(
            &g, &s, Algorithm::MoLesp,
            Filters::none().with_labels(allowed.clone()),
            QueueOrder::SmallestFirst,
        );
        for t in got.results.trees() {
            for &e in t.edges.iter() {
                let l = g.edge_label(e);
                prop_assert!(allowed.iter().any(|a| a == l), "forbidden label {l}");
            }
        }
        // Agreement with the BFT reference under the same filter.
        let reference = evaluate_ctp(
            &g, &s, Algorithm::Bft,
            Filters::none().with_labels(allowed),
            QueueOrder::SmallestFirst,
        );
        prop_assert_eq!(got.results.canonical(), reference.results.canonical());
    }

    /// LIMIT k stops with at most k results, all sound.
    #[test]
    fn limit_filter_semantics((g, seeds) in graph_and_seeds(2), k in 1usize..4) {
        let s = SeedSets::from_sets(seeds.clone()).unwrap();
        let reference = canonical(&g, &seeds, Algorithm::Bft);
        let got = evaluate_ctp(
            &g, &s, Algorithm::MoLesp,
            Filters::none().with_max_results(k),
            QueueOrder::SmallestFirst,
        ).results.canonical();
        prop_assert!(got.len() <= k.min(reference.len().max(k)));
        for t in &got {
            prop_assert!(reference.contains(t));
        }
    }

    /// UNI: every result has a root with directed paths to all leaves.
    #[test]
    fn uni_results_are_unidirectional((g, seeds) in graph_and_seeds(2)) {
        let s = SeedSets::from_sets(seeds.clone()).unwrap();
        let out = evaluate_ctp(
            &g, &s, Algorithm::MoLesp,
            Filters::none().uni(),
            QueueOrder::SmallestFirst,
        );
        for t in out.results.trees() {
            prop_assert!(
                has_dominating_root(&g, &t.edges),
                "UNI result without dominating root: {:?}", t.edges
            );
            // And it must be a genuine (bidirectional) result too.
            let reference = canonical(&g, &seeds, Algorithm::Bft);
            prop_assert!(reference.contains(&t.edges.to_vec()));
        }
    }

    /// DPBF returns a tree of exactly the minimum result size.
    #[test]
    fn dpbf_is_optimal((g, seeds) in graph_and_seeds(2)) {
        let s = SeedSets::from_sets(seeds.clone()).unwrap();
        let reference = canonical(&g, &seeds, Algorithm::Bft);
        let min = reference.iter().map(Vec::len).min();
        match (dpbf(&g, &s, false), min) {
            (Some(t), Some(m)) => prop_assert_eq!(t.edges.len(), m),
            (None, None) => {}
            (a, b) => prop_assert!(false, "DPBF {:?} vs reference min {:?}", a.map(|t| t.edges.len()), b),
        }
    }
}

/// Checks that some node of the tree reaches every other tree node
/// along tree edges respecting their direction.
fn has_dominating_root(g: &Graph, edges: &[EdgeId]) -> bool {
    use std::collections::{HashMap, HashSet};
    if edges.is_empty() {
        return true;
    }
    let mut nodes: HashSet<NodeId> = HashSet::new();
    let mut out_adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &e in edges {
        let ed = g.edge(e);
        nodes.insert(ed.src);
        nodes.insert(ed.dst);
        out_adj.entry(ed.src).or_default().push(ed.dst);
    }
    'roots: for &r in &nodes {
        let mut seen: HashSet<NodeId> = HashSet::from([r]);
        let mut stack = vec![r];
        while let Some(n) = stack.pop() {
            for &m in out_adj.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        if seen.len() == nodes.len() {
            return true;
        }
        continue 'roots;
    }
    false
}
