//! The paper's incompleteness witnesses and completeness walkthroughs:
//!
//! * Figure 3 — ESP may miss the only result of a 3-seed CTP under an
//!   adversarial execution order (§4.4), while MoESP finds it (§4.5).
//! * Figure 5 — MoESP may miss a 3-simple result; LESP's signature
//!   sparing recovers it (§4.6).
//! * Figure 6 — LESP may miss a 4-seed result; MoLESP finds it (§4.7).
//! * Figure 7 — the 6-seed example where Property 9 guarantees MoLESP
//!   succeeds.
//!
//! Completeness claims must hold under *any* execution order
//! (the paper: "we consider an algorithm incomplete when for some
//! 'bad' execution order it may miss results"), so each witness is
//! driven through many queue orders, including adversarial custom
//! priorities, and the guaranteed algorithm must succeed in all of
//! them.

use cs_core::{evaluate_ctp, Algorithm, Filters, QueueOrder, SeedSets};
use cs_graph::{Graph, GraphBuilder, NodeId};
use std::sync::Arc;

/// Builds the Figure 3 graph: `A - 1 - 2 - B - 3 - C`.
fn figure3() -> (Graph, Vec<Vec<NodeId>>) {
    let mut b = GraphBuilder::new();
    let a = b.add_node("A");
    let n1 = b.add_node("1");
    let n2 = b.add_node("2");
    let bb = b.add_node("B");
    let c = b.add_node("C");
    b.add_edge(a, "r", n1);
    b.add_edge(n1, "r", n2);
    b.add_edge(n2, "r", bb);
    b.add_edge(bb, "r", c);
    (b.freeze(), vec![vec![a], vec![bb], vec![c]])
}

/// Builds the Figure 5 graph: x adjacent to 1, 2, 3; A-1, B-2, C-3.
fn figure5() -> (Graph, Vec<Vec<NodeId>>) {
    let mut b = GraphBuilder::new();
    let a = b.add_node("A");
    let bb = b.add_node("B");
    let c = b.add_node("C");
    let n1 = b.add_node("1");
    let n2 = b.add_node("2");
    let n3 = b.add_node("3");
    let x = b.add_node("x");
    b.add_edge(a, "r", n1);
    b.add_edge(bb, "r", n2);
    b.add_edge(c, "r", n3);
    b.add_edge(n1, "r", x);
    b.add_edge(n2, "r", x);
    b.add_edge(n3, "r", x);
    (b.freeze(), vec![vec![a], vec![bb], vec![c]])
}

/// Builds the Figure 6 graph (4 seeds): A-1, B-2, C-3, D-4, with
/// 1-2, 2-x, x-3, 3-4 forming the spine.
fn figure6() -> (Graph, Vec<Vec<NodeId>>) {
    let mut b = GraphBuilder::new();
    let a = b.add_node("A");
    let bb = b.add_node("B");
    let c = b.add_node("C");
    let d = b.add_node("D");
    let n1 = b.add_node("1");
    let n2 = b.add_node("2");
    let n3 = b.add_node("3");
    let n4 = b.add_node("4");
    let x = b.add_node("x");
    b.add_edge(a, "r", n1);
    b.add_edge(n1, "r", n2);
    b.add_edge(bb, "r", n2);
    b.add_edge(n2, "r", x);
    b.add_edge(x, "r", n3);
    b.add_edge(c, "r", n3);
    b.add_edge(n3, "r", n4);
    b.add_edge(d, "r", n4);
    (b.freeze(), vec![vec![a], vec![bb], vec![c], vec![d]])
}

/// A six-seed Property 9 witness in the spirit of the paper's
/// Figure 7: the unique result decomposes into two simple edge sets —
/// a (3, x1) rooted merge with leaves {A, B, C} and a (4, x2) rooted
/// merge with leaves {C, D, E, F} — sharing the seed C. Property 9
/// therefore guarantees MoLESP finds it under every order.
fn figure7() -> Graph {
    let mut b = GraphBuilder::new();
    let a = b.add_node("A");
    let bb = b.add_node("B");
    let c = b.add_node("C");
    let d = b.add_node("D");
    let e = b.add_node("E");
    let f = b.add_node("F");
    let x1 = b.add_node("x1");
    let x2 = b.add_node("x2");
    let i1 = b.add_node("1");
    let i2 = b.add_node("2");
    b.add_edge(x1, "r", a);
    b.add_edge(x1, "r", bb);
    b.add_edge(x1, "r", i1);
    b.add_edge(i1, "r", c);
    b.add_edge(c, "r", i2);
    b.add_edge(i2, "r", x2);
    b.add_edge(x2, "r", d);
    b.add_edge(x2, "r", e);
    b.add_edge(x2, "r", f);
    b.freeze()
}

fn figure7_seeds(g: &Graph) -> Vec<Vec<NodeId>> {
    ["A", "B", "C", "D", "E", "F"]
        .iter()
        .filter_map(|l| g.node_by_label(l).map(|n| vec![n]))
        .collect()
}

/// A battery of execution orders: the standard ones plus adversarial
/// custom priorities (hash-scrambled, reversed, edge-id based).
fn order_battery() -> Vec<QueueOrder> {
    let mut orders = vec![
        QueueOrder::SmallestFirst,
        QueueOrder::LargestFirst,
        QueueOrder::Fifo,
    ];
    for salt in 0..8u64 {
        orders.push(QueueOrder::Custom(Arc::new(move |_, t, e| {
            // Deterministic scramble of (size, edge, salt).
            let mut h = salt
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(t.size() as u64)
                .wrapping_mul(0xBF58476D1CE4E5B9)
                .wrapping_add(e.0 as u64);
            h ^= h >> 31;
            (h % 1000) as i64
        })));
    }
    orders
}

fn run(g: &Graph, seeds: &[Vec<NodeId>], algo: Algorithm, order: QueueOrder) -> usize {
    let s = SeedSets::from_sets(seeds.to_vec()).unwrap();
    evaluate_ctp(g, &s, algo, Filters::none(), order)
        .results
        .len()
}

#[test]
fn figure3_esp_vs_moesp() {
    let (g, seeds) = figure3();
    // The CTP has exactly one result: the whole path (BFT reference).
    assert_eq!(
        run(&g, &seeds, Algorithm::Bft, QueueOrder::SmallestFirst),
        1
    );

    // MoESP and MoLESP find it under EVERY order (Property 4: the
    // result is 2ps).
    let mut esp_missed = false;
    for order in order_battery() {
        assert_eq!(
            run(&g, &seeds, Algorithm::MoEsp, order.clone()),
            1,
            "MoESP must find the Figure 3 result under any order"
        );
        assert_eq!(run(&g, &seeds, Algorithm::MoLesp, order.clone()), 1);
        if run(&g, &seeds, Algorithm::Esp, order) == 0 {
            esp_missed = true;
        }
    }
    // ESP misses the result for at least one order (the paper's §4.4
    // walkthrough; which orders fail depends on tie-breaking).
    assert!(
        esp_missed,
        "expected ESP to miss the Figure 3 result under some adversarial order"
    );
}

#[test]
fn figure5_moesp_vs_lesp() {
    let (g, seeds) = figure5();
    assert_eq!(
        run(&g, &seeds, Algorithm::Bft, QueueOrder::SmallestFirst),
        1
    );

    // The result is a (3, x) rooted merge: LESP (and MoLESP) find it
    // under every order (Lemma 4.2 / Property 7).
    let mut moesp_missed = false;
    for order in order_battery() {
        assert_eq!(
            run(&g, &seeds, Algorithm::Lesp, order.clone()),
            1,
            "LESP must find the Figure 5 result under any order"
        );
        assert_eq!(run(&g, &seeds, Algorithm::MoLesp, order.clone()), 1);
        if run(&g, &seeds, Algorithm::MoEsp, order) == 0 {
            moesp_missed = true;
        }
    }
    assert!(
        moesp_missed,
        "expected MoESP to miss the 3-simple Figure 5 result under some order"
    );
}

#[test]
fn figure6_lesp_incomplete_for_four_seeds() {
    let (g, seeds) = figure6();
    let reference = run(&g, &seeds, Algorithm::Bft, QueueOrder::SmallestFirst);
    assert!(reference >= 1);

    // m = 4 and the result is a 4-simple tree with TWO branch nodes
    // (2 and 3) — not a (u, n) rooted merge — so neither LESP nor
    // MoLESP carries a guarantee here (exactly the paper's point in
    // §4.6: "LESP may miss results that are not (u, n) rooted
    // merges"). GAM must always succeed; the pruned variants must
    // each miss it under at least one order, and MoLESP must still
    // succeed under at least one (it subsumes LESP and MoESP).
    let mut lesp_missed = false;
    let mut molesp_missed = false;
    let mut molesp_found = false;
    for order in order_battery() {
        assert_eq!(run(&g, &seeds, Algorithm::Gam, order.clone()), reference);
        if run(&g, &seeds, Algorithm::Lesp, order.clone()) < reference {
            lesp_missed = true;
        }
        match run(&g, &seeds, Algorithm::MoLesp, order) {
            n if n == reference => molesp_found = true,
            _ => molesp_missed = true,
        }
    }
    assert!(
        lesp_missed,
        "expected LESP to miss a Figure 6 result under some order"
    );
    assert!(
        molesp_found,
        "MoLESP should find the Figure 6 result under favourable orders"
    );
    // Not asserted as a hard property, but expected: a bad order can
    // also defeat MoLESP on this m = 4 non-rooted-merge example.
    let _ = molesp_missed;
}

#[test]
fn figure7_molesp_guaranteed() {
    let g = figure7();
    let seeds = figure7_seeds(&g);
    assert_eq!(seeds.len(), 6);
    let reference = run(&g, &seeds, Algorithm::Bft, QueueOrder::SmallestFirst);
    assert_eq!(reference, 1, "Figure 7 has exactly one result");

    // Property 9: every edge set in the decomposition is a (u, n)
    // rooted merge, so MoLESP is guaranteed to find it — under every
    // order.
    for order in order_battery() {
        assert_eq!(
            run(&g, &seeds, Algorithm::MoLesp, order),
            1,
            "Property 9 violated on the Figure 7 example"
        );
    }
}

#[test]
fn gam_complete_on_all_witnesses() {
    // Property 1: plain GAM is complete on every witness graph,
    // regardless of order.
    let cases: Vec<(Graph, Vec<Vec<NodeId>>)> = {
        let mut v = vec![figure3(), figure5(), figure6()];
        let g7 = figure7();
        let s7 = figure7_seeds(&g7);
        v.push((g7, s7));
        v
    };
    for (g, seeds) in cases {
        let reference = run(&g, &seeds, Algorithm::Bft, QueueOrder::SmallestFirst);
        for order in order_battery() {
            assert_eq!(
                run(&g, &seeds, Algorithm::Gam, order),
                reference,
                "GAM completeness violated"
            );
        }
    }
}
