//! Provenance inspection (paper Def. 4.1): every tree the GAM family
//! builds carries a formula `Init(n)` / `Grow(t, e)` / `Merge(t1, t2)`
//! / `Mo(t, r)` recording how it was derived. [`TracedOutcome`]
//! preserves the tree arena after a search so results can be explained
//! — useful for debugging, teaching, and testing the algorithms'
//! derivation structure (e.g. that a Star result really is built as a
//! rooted merge).

use crate::result::SearchOutcome;
use crate::tree::{Provenance, TreeId, TreeStore};
use cs_graph::Graph;

/// A search outcome plus the arena and result ids needed to explain
/// derivations. Produced by [`crate::algo::gam::GamEngine::run_traced`].
#[derive(Debug)]
pub struct TracedOutcome {
    /// The ordinary outcome (results, stats, duration).
    pub outcome: SearchOutcome,
    /// All trees (provenances) built during the search.
    pub store: TreeStore,
    /// Arena ids of the reported results, in discovery order.
    pub result_ids: Vec<TreeId>,
}

impl TracedOutcome {
    /// The provenance formula of the `i`-th result.
    pub fn explain_result(&self, i: usize) -> Option<String> {
        self.result_ids.get(i).map(|&id| formula(&self.store, id))
    }

    /// The provenance formula of the `i`-th result with graph labels.
    pub fn explain_result_labeled(&self, g: &Graph, i: usize) -> Option<String> {
        self.result_ids
            .get(i)
            .map(|&id| formula_labeled(g, &self.store, id))
    }
}

/// Renders the Def. 4.1 formula of a tree, e.g.
/// `Merge(Grow(Init(n0), e1), Grow(Init(n2), e3))`.
pub fn formula(store: &TreeStore, id: TreeId) -> String {
    let mut out = String::new();
    write_formula(store, id, &mut out, &mut |n| format!("{n:?}"), &mut |e| {
        format!("{e:?}")
    });
    out
}

/// Like [`formula`], with node/edge labels resolved through the graph.
pub fn formula_labeled(g: &Graph, store: &TreeStore, id: TreeId) -> String {
    let mut out = String::new();
    write_formula(
        store,
        id,
        &mut out,
        &mut |n| g.node_label(n).to_string(),
        &mut |e| g.edge_label(e).to_string(),
    );
    out
}

fn write_formula(
    store: &TreeStore,
    id: TreeId,
    out: &mut String,
    node_name: &mut dyn FnMut(cs_graph::NodeId) -> String,
    edge_name: &mut dyn FnMut(cs_graph::EdgeId) -> String,
) {
    match store.get(id).provenance {
        Provenance::Init(n) => {
            out.push_str("Init(");
            out.push_str(&node_name(n));
            out.push(')');
        }
        Provenance::Grow(t, e) => {
            out.push_str("Grow(");
            write_formula(store, t, out, node_name, edge_name);
            out.push_str(", ");
            out.push_str(&edge_name(e));
            out.push(')');
        }
        Provenance::Merge(t1, t2) => {
            out.push_str("Merge(");
            write_formula(store, t1, out, node_name, edge_name);
            out.push_str(", ");
            write_formula(store, t2, out, node_name, edge_name);
            out.push(')');
        }
        Provenance::Mo(t, r) => {
            out.push_str("Mo(");
            write_formula(store, t, out, node_name, edge_name);
            out.push_str(", ");
            out.push_str(&node_name(r));
            out.push(')');
        }
    }
}

/// Counts the operation kinds in a provenance formula — handy for
/// asserting derivation *shape* in tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounts {
    /// `Init` leaves.
    pub init: usize,
    /// `Grow` steps.
    pub grow: usize,
    /// `Merge` steps.
    pub merge: usize,
    /// `Mo` re-rootings.
    pub mo: usize,
}

/// Computes [`OpCounts`] of a tree's derivation.
pub fn op_counts(store: &TreeStore, id: TreeId) -> OpCounts {
    let mut c = OpCounts::default();
    let mut stack = vec![id];
    while let Some(t) = stack.pop() {
        match store.get(t).provenance {
            Provenance::Init(_) => c.init += 1,
            Provenance::Grow(p, _) => {
                c.grow += 1;
                stack.push(p);
            }
            Provenance::Merge(a, b) => {
                c.merge += 1;
                stack.push(a);
                stack.push(b);
            }
            Provenance::Mo(p, _) => {
                c.mo += 1;
                stack.push(p);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::gam::{GamConfig, GamEngine};
    use crate::config::{Filters, QueueOrder, QueuePolicy};
    use crate::seeds::SeedSets;
    use cs_graph::generate::{line, star};

    fn traced(w: &cs_graph::generate::Workload, cfg: GamConfig) -> (TracedOutcome, SeedSets) {
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let t = GamEngine::new(
            &w.graph,
            &seeds,
            cfg,
            Filters::none(),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
        )
        .run_traced();
        (t, seeds)
    }

    #[test]
    fn line_result_formula_contains_both_inits() {
        let w = line(2, 2);
        let (t, _) = traced(&w, GamConfig::GAM);
        assert_eq!(t.result_ids.len(), 1);
        let f = t.explain_result(0).unwrap();
        // Two seeds means the derivation starts from Init(A) and/or
        // Init(B); growth-only or a merge of two rooted paths.
        assert!(f.starts_with("Merge(") || f.starts_with("Grow("));
        let counts = op_counts(&t.store, t.result_ids[0]);
        assert_eq!(counts.grow, 3, "3 edges need 3 Grow steps");
        assert!(counts.init == 1 || counts.init == 2);
        assert_eq!(counts.mo, 0);
    }

    #[test]
    fn star_result_is_a_rooted_merge() {
        // Star(3, 2): the unique result merges three rooted paths at
        // the centre (a (3, x) rooted merge, Def. 4.8).
        let w = star(3, 2);
        let (t, _) = traced(&w, GamConfig::MOLESP);
        assert_eq!(t.result_ids.len(), 1);
        let counts = op_counts(&t.store, t.result_ids[0]);
        assert_eq!(counts.init, 3, "one Init per seed");
        assert_eq!(counts.grow, 6, "one Grow per edge");
        assert_eq!(counts.merge, 2, "three paths merge pairwise");
    }

    #[test]
    fn labeled_formula_uses_labels() {
        let w = line(2, 0); // A - B, one edge
        let (t, _) = traced(&w, GamConfig::GAM);
        let f = t.explain_result_labeled(&w.graph, 0).unwrap();
        assert!(f.contains("Init(A)") || f.contains("Init(B)"), "{f}");
        assert!(f.contains('r'), "edge label rendered: {f}");
    }

    #[test]
    fn store_len_matches_provenance_stat() {
        let w = star(4, 2);
        let (t, _) = traced(&w, GamConfig::MOLESP);
        assert_eq!(t.store.len() as u64, t.outcome.stats.provenances);
    }

    #[test]
    fn out_of_range_explain_is_none() {
        let w = line(2, 0);
        let (t, _) = traced(&w, GamConfig::GAM);
        assert!(t.explain_result(99).is_none());
    }
}
