//! CTP results (paper Def. 2.8) and search outcome bookkeeping.

use crate::seedmask::SeedMask;
use crate::seeds::{SeedSets, SeedSpec};
use cs_graph::fxhash::FxHashMap;
use cs_graph::{EdgeId, Graph, NodeId};
use std::time::Duration;

/// One CTP result: the tuple `(s1, …, sm, t)` — a minimal tree `t`
/// containing exactly one node from each explicit seed set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultTree {
    /// The tree's edges, sorted (the canonical edge set).
    pub edges: Box<[EdgeId]>,
    /// The tree's nodes, sorted.
    pub nodes: Box<[NodeId]>,
    /// The seed bound to each set position: `seeds[i] ∈ S_i`. For an
    /// `All` (`N`) seed set, the reported node is the tree root at
    /// discovery time (any tree node matches such a set).
    pub seeds: Box<[NodeId]>,
}

impl ResultTree {
    /// Number of edges.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// Extracts the per-set seed tuple from a tree's sorted node array.
    pub fn from_tree(
        edges: Box<[EdgeId]>,
        nodes: Box<[NodeId]>,
        root: NodeId,
        seeds: &SeedSets,
    ) -> Self {
        let m = seeds.m();
        let mut chosen = vec![root; m];
        for &n in nodes.iter() {
            let mask = seeds.membership(n);
            for i in mask.iter() {
                chosen[i] = n;
            }
        }
        // `All` positions keep the root; explicit positions were
        // overwritten (a result has exactly one node per explicit set).
        for (i, spec) in seeds.specs().iter().enumerate() {
            if let SeedSpec::Set(_) = spec {
                debug_assert!(
                    nodes.iter().any(|&n| seeds.membership(n).contains(i)),
                    "result misses seed set {i}"
                );
            }
        }
        ResultTree {
            edges,
            nodes,
            seeds: chosen.into_boxed_slice(),
        }
    }

    /// The canonical total order over result trees: edge set, then
    /// nodes, then the bound seed tuple. This single definition backs
    /// [`ResultSet::sort_canonical`] and the EQL layer's materialised
    /// ordering, so "canonical order" cannot silently diverge between
    /// the engine and the executor.
    pub fn canonical_cmp(&self, other: &ResultTree) -> std::cmp::Ordering {
        self.edges
            .cmp(&other.edges)
            .then_with(|| self.nodes.cmp(&other.nodes))
            .then_with(|| self.seeds.cmp(&other.seeds))
    }

    /// Pretty-prints the tree's edges via the graph's labels.
    pub fn describe(&self, g: &Graph) -> String {
        if self.edges.is_empty() {
            return format!("single node {}", g.node_label(self.nodes[0]));
        }
        self.edges
            .iter()
            .map(|&e| g.describe_edge(e))
            .collect::<Vec<_>>()
            .join(" ; ")
    }
}

/// The set of results found by a search, deduplicated by edge set
/// (results are edge sets; the root is meaningless in a result, §4.4).
#[derive(Debug, Default)]
pub struct ResultSet {
    trees: Vec<ResultTree>,
    /// Dedup index: (edge set, anchor node) → position in `trees`.
    seen: FxHashMap<(Box<[EdgeId]>, NodeId), u32>,
}

impl ResultSet {
    /// Empty result set.
    pub fn new() -> Self {
        ResultSet::default()
    }

    /// Number of results.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if no results were found.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The results, in discovery order.
    pub fn trees(&self) -> &[ResultTree] {
        &self.trees
    }

    /// Takes ownership of the results.
    pub fn into_trees(self) -> Vec<ResultTree> {
        self.trees
    }

    /// Inserts a result; returns false if an identical edge set (plus
    /// anchor node, for 0-edge results) was already present. The first
    /// insertion wins — discovery order, the sequential engine's
    /// contract.
    pub fn insert(&mut self, r: ResultTree) -> bool {
        let anchor = r.nodes.first().copied().unwrap_or(NodeId(0));
        match self.seen.entry((r.edges.clone(), anchor)) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(self.trees.len() as u32);
                self.trees.push(r);
                true
            }
        }
    }

    /// Like [`ResultSet::insert`], but a duplicate *replaces* the kept
    /// tree when it is canonically smaller ([`ResultTree::canonical_cmp`]).
    /// Duplicates differ only in their bound seed tuple — possible with
    /// an `N` seed set, where the reported binding is the discovering
    /// tree's root — so under concurrent discovery this keeps the
    /// race-independent minimal binding. Returns true if the result was
    /// new (not a replacement).
    pub fn insert_min(&mut self, r: ResultTree) -> bool {
        let anchor = r.nodes.first().copied().unwrap_or(NodeId(0));
        match self.seen.entry((r.edges.clone(), anchor)) {
            std::collections::hash_map::Entry::Occupied(o) => {
                let kept = &mut self.trees[*o.get() as usize];
                if r.canonical_cmp(kept) == std::cmp::Ordering::Less {
                    *kept = r;
                }
                false
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(self.trees.len() as u32);
                self.trees.push(r);
                true
            }
        }
    }

    /// True if an identical result is present.
    pub fn contains(&self, edges: &[EdgeId], anchor: NodeId) -> bool {
        self.seen
            .contains_key(&(edges.to_vec().into_boxed_slice(), anchor))
    }

    /// Sorts the results into canonical order
    /// ([`ResultTree::canonical_cmp`]) in place, rebuilding the dedup
    /// index positions. The partitioned parallel engine uses this to
    /// make its outcome independent of worker count and scheduling.
    pub fn sort_canonical(&mut self) {
        self.trees.sort_by(ResultTree::canonical_cmp);
        for (i, t) in self.trees.iter().enumerate() {
            let anchor = t.nodes.first().copied().unwrap_or(NodeId(0));
            if let Some(idx) = self.seen.get_mut(&(t.edges.clone(), anchor)) {
                *idx = i as u32;
            }
        }
    }

    /// Rebuilds a result set from trees (e.g. replayed from a result
    /// cache), restoring the dedup index. Insertion order is kept, so
    /// feeding canonically sorted trees yields a canonically sorted
    /// set.
    pub fn from_trees(trees: impl IntoIterator<Item = ResultTree>) -> Self {
        let mut rs = ResultSet::new();
        for t in trees {
            rs.insert(t);
        }
        rs
    }

    /// The results' canonical edge sets, sorted — convenient for
    /// comparing two algorithms' outputs in tests.
    pub fn canonical(&self) -> Vec<Vec<EdgeId>> {
        let mut v: Vec<Vec<EdgeId>> = self.trees.iter().map(|t| t.edges.to_vec()).collect();
        v.sort();
        v
    }
}

/// Counters describing one search run (Fig. 11 plots `provenances`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Provenances kept (passed the history check) — Init + Grow +
    /// Merge + Mo.
    pub provenances: u64,
    /// Grow provenances created.
    pub grows: u64,
    /// Merge provenances created.
    pub merges: u64,
    /// MoESP copies created.
    pub mo_copies: u64,
    /// Candidates discarded by the history (ESP or rooted-tree dedup).
    pub pruned: u64,
    /// (tree, edge) pairs pushed to the queue.
    pub queue_pushes: u64,
    /// Grow tasks stolen between intra-search workers (always 0 for
    /// the sequential engine).
    pub stolen: u64,
    /// True if the wall-clock timeout fired.
    pub timed_out: bool,
    /// True if the provenance budget was exhausted.
    pub budget_exhausted: bool,
    /// True if the search stopped because its
    /// [`CancelFlag`](crate::CancelFlag) was raised.
    pub cancelled: bool,
    /// Per-worker breakdown when the search ran on the partitioned
    /// parallel engine ([`crate::algo::partition`]); empty for
    /// sequential searches. The aggregate counters above are the sums
    /// of the corresponding per-worker counters.
    pub workers: Vec<WorkerStats>,
}

/// Counters of one intra-search worker of the partitioned parallel
/// engine (§6): what it produced, what its history shard pruned, and
/// how many Grow tasks it stole from its siblings' queues.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Provenances this worker admitted past the history check
    /// (Init + Grow + Merge + Mo) — sums to [`SearchStats::provenances`].
    pub produced: u64,
    /// Candidates this worker's history checks discarded — sums to
    /// [`SearchStats::pruned`].
    pub pruned: u64,
    /// Grow tasks this worker stole from another worker's queue —
    /// sums to [`SearchStats::stolen`].
    pub stolen: u64,
}

impl SearchStats {
    /// Folds a set of per-worker partial statistics into one aggregate
    /// [`SearchStats`]: every counter is the sum over the workers, and
    /// the per-worker `produced`/`pruned`/`stolen` triples are kept in
    /// [`SearchStats::workers`] (in worker-id order).
    pub fn merge_workers(parts: Vec<SearchStats>) -> SearchStats {
        let mut total = SearchStats::default();
        for p in parts {
            total.provenances += p.provenances;
            total.grows += p.grows;
            total.merges += p.merges;
            total.mo_copies += p.mo_copies;
            total.pruned += p.pruned;
            total.queue_pushes += p.queue_pushes;
            total.stolen += p.stolen;
            total.timed_out |= p.timed_out;
            total.budget_exhausted |= p.budget_exhausted;
            total.cancelled |= p.cancelled;
            total.workers.push(WorkerStats {
                produced: p.provenances,
                pruned: p.pruned,
                stolen: p.stolen,
            });
        }
        total
    }
}

/// A search's outcome: results, statistics, duration.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The results found.
    pub results: ResultSet,
    /// Search counters.
    pub stats: SearchStats,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl SearchOutcome {
    /// True if the search ran to completion (no timeout / budget /
    /// cancellation stop).
    pub fn complete(&self) -> bool {
        !self.stats.timed_out && !self.stats.budget_exhausted && !self.stats.cancelled
    }

    /// Optional seed-mask accessor used by tests.
    pub fn result_count(&self) -> usize {
        self.results.len()
    }
}

/// Verifies that a result is a minimal connecting tree per Def. 2.8:
/// it is a tree, every leaf is a seed, and it has exactly one node per
/// explicit seed set. Used by tests and debug assertions.
pub fn check_result_minimal(g: &Graph, r: &ResultTree, seeds: &SeedSets) -> Result<(), String> {
    if !crate::tree::is_tree(g, &r.edges) {
        return Err("edge set is not a tree".into());
    }
    // Count per-set occurrences.
    let mut per_set = vec![0usize; seeds.m()];
    for &n in r.nodes.iter() {
        for i in seeds.membership(n).iter() {
            per_set[i] += 1;
        }
    }
    for (i, spec) in seeds.specs().iter().enumerate() {
        match spec {
            SeedSpec::Set(_) => {
                if per_set[i] != 1 {
                    return Err(format!("set {i} has {} nodes, expected 1", per_set[i]));
                }
            }
            SeedSpec::All => {} // any number allowed
        }
    }
    // Every leaf must be a seed (Observation 1). With an `N` seed set
    // (§4.9) a non-seed leaf is admissible as that set's match — it is
    // reported in `r.seeds`.
    if !r.edges.is_empty() {
        use cs_graph::fxhash::FxHashMap;
        let has_all_set = !seeds.presatisfied().is_empty();
        let mut deg: FxHashMap<NodeId, usize> = FxHashMap::default();
        for &e in r.edges.iter() {
            let ed = g.edge(e);
            *deg.entry(ed.src).or_default() += 1;
            *deg.entry(ed.dst).or_default() += 1;
        }
        for (&n, &d) in &deg {
            if d == 1 && seeds.membership(n).is_empty() && !has_all_set {
                return Err(format!("leaf {n:?} is not a seed"));
            }
        }
    }
    Ok(())
}

/// Satisfaction mask of an arbitrary edge set (which explicit seed sets
/// have a node in it) — helper for baselines and tests.
pub fn sat_of_nodes(nodes: &[NodeId], seeds: &SeedSets) -> SeedMask {
    let mut m = SeedMask::EMPTY;
    for &n in nodes {
        m = m.union(seeds.membership(n));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_graph::GraphBuilder;

    fn path_graph() -> (Graph, Vec<NodeId>, Vec<EdgeId>) {
        let mut b = GraphBuilder::new();
        let ns: Vec<NodeId> = (0..4).map(|i| b.add_node(&format!("n{i}"))).collect();
        let es = vec![
            b.add_edge(ns[0], "r", ns[1]),
            b.add_edge(ns[1], "r", ns[2]),
            b.add_edge(ns[2], "r", ns[3]),
        ];
        (b.freeze(), ns, es)
    }

    #[test]
    fn result_set_dedup() {
        let (_, ns, es) = path_graph();
        let mut rs = ResultSet::new();
        let r = ResultTree {
            edges: es.clone().into_boxed_slice(),
            nodes: ns.clone().into_boxed_slice(),
            seeds: vec![ns[0], ns[3]].into_boxed_slice(),
        };
        assert!(rs.insert(r.clone()));
        assert!(!rs.insert(r));
        assert_eq!(rs.len(), 1);
        assert!(rs.contains(&es, ns[0]));
    }

    #[test]
    fn insert_min_keeps_canonically_smallest_duplicate() {
        let (_, ns, es) = path_graph();
        let mk = |s: NodeId| ResultTree {
            edges: es.clone().into_boxed_slice(),
            nodes: ns.clone().into_boxed_slice(),
            seeds: vec![s].into_boxed_slice(),
        };
        let mut rs = ResultSet::new();
        assert!(rs.insert_min(mk(ns[3])));
        // A canonically smaller duplicate replaces the kept tree…
        assert!(!rs.insert_min(mk(ns[0])));
        assert_eq!(rs.trees()[0].seeds.as_ref(), &[ns[0]]);
        // …a larger one does not.
        assert!(!rs.insert_min(mk(ns[2])));
        assert_eq!(rs.trees()[0].seeds.as_ref(), &[ns[0]]);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn sort_canonical_keeps_index_consistent() {
        let (_, ns, es) = path_graph();
        let mut rs = ResultSet::new();
        rs.insert(ResultTree {
            edges: vec![es[1]].into_boxed_slice(),
            nodes: vec![ns[1], ns[2]].into_boxed_slice(),
            seeds: vec![ns[1]].into_boxed_slice(),
        });
        rs.insert(ResultTree {
            edges: vec![es[0]].into_boxed_slice(),
            nodes: vec![ns[0], ns[1]].into_boxed_slice(),
            seeds: vec![ns[0]].into_boxed_slice(),
        });
        rs.sort_canonical();
        assert_eq!(rs.trees()[0].edges.as_ref(), &[es[0]]);
        // The dedup index still rejects duplicates and insert_min still
        // finds the (moved) kept tree.
        assert!(rs.contains(&[es[1]], ns[1]));
        assert!(!rs.insert_min(ResultTree {
            edges: vec![es[1]].into_boxed_slice(),
            nodes: vec![ns[1], ns[2]].into_boxed_slice(),
            seeds: vec![ns[0]].into_boxed_slice(), // smaller → replaces
        }));
        assert_eq!(rs.trees()[1].seeds.as_ref(), &[ns[0]]);
    }

    #[test]
    fn from_trees_restores_dedup_index() {
        let (_, ns, es) = path_graph();
        let r = ResultTree {
            edges: es.clone().into_boxed_slice(),
            nodes: ns.clone().into_boxed_slice(),
            seeds: vec![ns[0], ns[3]].into_boxed_slice(),
        };
        let mut rs = ResultSet::from_trees(vec![r.clone()]);
        assert_eq!(rs.len(), 1);
        assert!(rs.contains(&es, ns[0]));
        assert!(!rs.insert(r));
    }

    #[test]
    fn zero_edge_results_distinct_by_node() {
        let (_, ns, _) = path_graph();
        let mut rs = ResultSet::new();
        for &n in &ns[..2] {
            assert!(rs.insert(ResultTree {
                edges: Box::new([]),
                nodes: vec![n].into_boxed_slice(),
                seeds: vec![n].into_boxed_slice(),
            }));
        }
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn from_tree_extracts_seeds() {
        let (_, ns, es) = path_graph();
        let seeds = SeedSets::from_sets(vec![vec![ns[0]], vec![ns[3]]]).unwrap();
        let r = ResultTree::from_tree(
            es.clone().into_boxed_slice(),
            ns.clone().into_boxed_slice(),
            ns[3],
            &seeds,
        );
        assert_eq!(r.seeds.as_ref(), &[ns[0], ns[3]]);
    }

    #[test]
    fn minimality_checker() {
        let (g, ns, es) = path_graph();
        let seeds = SeedSets::from_sets(vec![vec![ns[0]], vec![ns[3]]]).unwrap();
        let good = ResultTree {
            edges: es.clone().into_boxed_slice(),
            nodes: ns.clone().into_boxed_slice(),
            seeds: vec![ns[0], ns[3]].into_boxed_slice(),
        };
        assert!(check_result_minimal(&g, &good, &seeds).is_ok());

        // A subtree ending in a non-seed leaf fails.
        let bad = ResultTree {
            edges: vec![es[0], es[1]].into_boxed_slice(),
            nodes: ns[..3].to_vec().into_boxed_slice(),
            seeds: vec![ns[0], ns[3]].into_boxed_slice(),
        };
        let err = check_result_minimal(&g, &bad, &seeds).unwrap_err();
        assert!(err.contains("set 1") || err.contains("leaf"), "{err}");
    }

    #[test]
    fn sat_helper() {
        let (_, ns, _) = path_graph();
        let seeds = SeedSets::from_sets(vec![vec![ns[0]], vec![ns[3]]]).unwrap();
        assert_eq!(sat_of_nodes(&[ns[0], ns[1]], &seeds), SeedMask::single(0));
        assert_eq!(sat_of_nodes(&ns, &seeds), SeedMask::full(2));
    }

    #[test]
    fn worker_stats_merge_sums() {
        let mk = |p, g, m, pr, st| SearchStats {
            provenances: p,
            grows: g,
            merges: m,
            mo_copies: 1,
            pruned: pr,
            queue_pushes: 10,
            stolen: st,
            ..SearchStats::default()
        };
        let merged = SearchStats::merge_workers(vec![
            mk(5, 3, 2, 7, 1),
            mk(11, 4, 0, 2, 0),
            SearchStats {
                timed_out: true,
                ..mk(1, 1, 1, 1, 4)
            },
        ]);
        assert_eq!(merged.provenances, 17);
        assert_eq!(merged.grows, 8);
        assert_eq!(merged.merges, 3);
        assert_eq!(merged.mo_copies, 3);
        assert_eq!(merged.pruned, 10);
        assert_eq!(merged.queue_pushes, 30);
        assert_eq!(merged.stolen, 5);
        assert!(merged.timed_out);
        assert!(!merged.budget_exhausted);
        // The per-worker breakdown is kept, and its sums match the
        // aggregate counters.
        assert_eq!(merged.workers.len(), 3);
        assert_eq!(
            merged.workers.iter().map(|w| w.produced).sum::<u64>(),
            merged.provenances
        );
        assert_eq!(
            merged.workers.iter().map(|w| w.pruned).sum::<u64>(),
            merged.pruned
        );
        assert_eq!(
            merged.workers.iter().map(|w| w.stolen).sum::<u64>(),
            merged.stolen
        );
        assert_eq!(merged.workers[2].stolen, 4);
    }

    #[test]
    fn describe_result() {
        let (g, ns, es) = path_graph();
        let r = ResultTree {
            edges: vec![es[0]].into_boxed_slice(),
            nodes: ns[..2].to_vec().into_boxed_slice(),
            seeds: vec![ns[0], ns[1]].into_boxed_slice(),
        };
        assert_eq!(r.describe(&g), "n0 -r-> n1");
        let single = ResultTree {
            edges: Box::new([]),
            nodes: vec![ns[0]].into_boxed_slice(),
            seeds: vec![ns[0]].into_boxed_slice(),
        };
        assert!(single.describe(&g).contains("single node"));
    }
}
