//! CTP results (paper Def. 2.8) and search outcome bookkeeping.

use crate::seedmask::SeedMask;
use crate::seeds::{SeedSets, SeedSpec};
use cs_graph::fxhash::FxHashSet;
use cs_graph::{EdgeId, Graph, NodeId};
use std::time::Duration;

/// One CTP result: the tuple `(s1, …, sm, t)` — a minimal tree `t`
/// containing exactly one node from each explicit seed set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultTree {
    /// The tree's edges, sorted (the canonical edge set).
    pub edges: Box<[EdgeId]>,
    /// The tree's nodes, sorted.
    pub nodes: Box<[NodeId]>,
    /// The seed bound to each set position: `seeds[i] ∈ S_i`. For an
    /// `All` (`N`) seed set, the reported node is the tree root at
    /// discovery time (any tree node matches such a set).
    pub seeds: Box<[NodeId]>,
}

impl ResultTree {
    /// Number of edges.
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// Extracts the per-set seed tuple from a tree's sorted node array.
    pub fn from_tree(
        edges: Box<[EdgeId]>,
        nodes: Box<[NodeId]>,
        root: NodeId,
        seeds: &SeedSets,
    ) -> Self {
        let m = seeds.m();
        let mut chosen = vec![root; m];
        for &n in nodes.iter() {
            let mask = seeds.membership(n);
            for i in mask.iter() {
                chosen[i] = n;
            }
        }
        // `All` positions keep the root; explicit positions were
        // overwritten (a result has exactly one node per explicit set).
        for (i, spec) in seeds.specs().iter().enumerate() {
            if let SeedSpec::Set(_) = spec {
                debug_assert!(
                    nodes.iter().any(|&n| seeds.membership(n).contains(i)),
                    "result misses seed set {i}"
                );
            }
        }
        ResultTree {
            edges,
            nodes,
            seeds: chosen.into_boxed_slice(),
        }
    }

    /// Pretty-prints the tree's edges via the graph's labels.
    pub fn describe(&self, g: &Graph) -> String {
        if self.edges.is_empty() {
            return format!("single node {}", g.node_label(self.nodes[0]));
        }
        self.edges
            .iter()
            .map(|&e| g.describe_edge(e))
            .collect::<Vec<_>>()
            .join(" ; ")
    }
}

/// The set of results found by a search, deduplicated by edge set
/// (results are edge sets; the root is meaningless in a result, §4.4).
#[derive(Debug, Default)]
pub struct ResultSet {
    trees: Vec<ResultTree>,
    seen: FxHashSet<(Box<[EdgeId]>, NodeId)>,
}

impl ResultSet {
    /// Empty result set.
    pub fn new() -> Self {
        ResultSet::default()
    }

    /// Number of results.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if no results were found.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The results, in discovery order.
    pub fn trees(&self) -> &[ResultTree] {
        &self.trees
    }

    /// Takes ownership of the results.
    pub fn into_trees(self) -> Vec<ResultTree> {
        self.trees
    }

    /// Inserts a result; returns false if an identical edge set (plus
    /// anchor node, for 0-edge results) was already present.
    pub fn insert(&mut self, r: ResultTree) -> bool {
        let anchor = r.nodes.first().copied().unwrap_or(NodeId(0));
        if !self.seen.insert((r.edges.clone(), anchor)) {
            return false;
        }
        self.trees.push(r);
        true
    }

    /// True if an identical result is present.
    pub fn contains(&self, edges: &[EdgeId], anchor: NodeId) -> bool {
        self.seen
            .contains(&(edges.to_vec().into_boxed_slice(), anchor))
    }

    /// The results' canonical edge sets, sorted — convenient for
    /// comparing two algorithms' outputs in tests.
    pub fn canonical(&self) -> Vec<Vec<EdgeId>> {
        let mut v: Vec<Vec<EdgeId>> = self.trees.iter().map(|t| t.edges.to_vec()).collect();
        v.sort();
        v
    }
}

/// Counters describing one search run (Fig. 11 plots `provenances`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Provenances kept (passed the history check) — Init + Grow +
    /// Merge + Mo.
    pub provenances: u64,
    /// Grow provenances created.
    pub grows: u64,
    /// Merge provenances created.
    pub merges: u64,
    /// MoESP copies created.
    pub mo_copies: u64,
    /// Candidates discarded by the history (ESP or rooted-tree dedup).
    pub pruned: u64,
    /// (tree, edge) pairs pushed to the queue.
    pub queue_pushes: u64,
    /// True if the wall-clock timeout fired.
    pub timed_out: bool,
    /// True if the provenance budget was exhausted.
    pub budget_exhausted: bool,
}

/// A search's outcome: results, statistics, duration.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The results found.
    pub results: ResultSet,
    /// Search counters.
    pub stats: SearchStats,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl SearchOutcome {
    /// True if the search ran to completion (no timeout / budget stop).
    pub fn complete(&self) -> bool {
        !self.stats.timed_out && !self.stats.budget_exhausted
    }

    /// Optional seed-mask accessor used by tests.
    pub fn result_count(&self) -> usize {
        self.results.len()
    }
}

/// Verifies that a result is a minimal connecting tree per Def. 2.8:
/// it is a tree, every leaf is a seed, and it has exactly one node per
/// explicit seed set. Used by tests and debug assertions.
pub fn check_result_minimal(g: &Graph, r: &ResultTree, seeds: &SeedSets) -> Result<(), String> {
    if !crate::tree::is_tree(g, &r.edges) {
        return Err("edge set is not a tree".into());
    }
    // Count per-set occurrences.
    let mut per_set = vec![0usize; seeds.m()];
    for &n in r.nodes.iter() {
        for i in seeds.membership(n).iter() {
            per_set[i] += 1;
        }
    }
    for (i, spec) in seeds.specs().iter().enumerate() {
        match spec {
            SeedSpec::Set(_) => {
                if per_set[i] != 1 {
                    return Err(format!("set {i} has {} nodes, expected 1", per_set[i]));
                }
            }
            SeedSpec::All => {} // any number allowed
        }
    }
    // Every leaf must be a seed (Observation 1). With an `N` seed set
    // (§4.9) a non-seed leaf is admissible as that set's match — it is
    // reported in `r.seeds`.
    if !r.edges.is_empty() {
        use cs_graph::fxhash::FxHashMap;
        let has_all_set = !seeds.presatisfied().is_empty();
        let mut deg: FxHashMap<NodeId, usize> = FxHashMap::default();
        for &e in r.edges.iter() {
            let ed = g.edge(e);
            *deg.entry(ed.src).or_default() += 1;
            *deg.entry(ed.dst).or_default() += 1;
        }
        for (&n, &d) in &deg {
            if d == 1 && seeds.membership(n).is_empty() && !has_all_set {
                return Err(format!("leaf {n:?} is not a seed"));
            }
        }
    }
    Ok(())
}

/// Satisfaction mask of an arbitrary edge set (which explicit seed sets
/// have a node in it) — helper for baselines and tests.
pub fn sat_of_nodes(nodes: &[NodeId], seeds: &SeedSets) -> SeedMask {
    let mut m = SeedMask::EMPTY;
    for &n in nodes {
        m = m.union(seeds.membership(n));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_graph::GraphBuilder;

    fn path_graph() -> (Graph, Vec<NodeId>, Vec<EdgeId>) {
        let mut b = GraphBuilder::new();
        let ns: Vec<NodeId> = (0..4).map(|i| b.add_node(&format!("n{i}"))).collect();
        let es = vec![
            b.add_edge(ns[0], "r", ns[1]),
            b.add_edge(ns[1], "r", ns[2]),
            b.add_edge(ns[2], "r", ns[3]),
        ];
        (b.freeze(), ns, es)
    }

    #[test]
    fn result_set_dedup() {
        let (_, ns, es) = path_graph();
        let mut rs = ResultSet::new();
        let r = ResultTree {
            edges: es.clone().into_boxed_slice(),
            nodes: ns.clone().into_boxed_slice(),
            seeds: vec![ns[0], ns[3]].into_boxed_slice(),
        };
        assert!(rs.insert(r.clone()));
        assert!(!rs.insert(r));
        assert_eq!(rs.len(), 1);
        assert!(rs.contains(&es, ns[0]));
    }

    #[test]
    fn zero_edge_results_distinct_by_node() {
        let (_, ns, _) = path_graph();
        let mut rs = ResultSet::new();
        for &n in &ns[..2] {
            assert!(rs.insert(ResultTree {
                edges: Box::new([]),
                nodes: vec![n].into_boxed_slice(),
                seeds: vec![n].into_boxed_slice(),
            }));
        }
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn from_tree_extracts_seeds() {
        let (_, ns, es) = path_graph();
        let seeds = SeedSets::from_sets(vec![vec![ns[0]], vec![ns[3]]]).unwrap();
        let r = ResultTree::from_tree(
            es.clone().into_boxed_slice(),
            ns.clone().into_boxed_slice(),
            ns[3],
            &seeds,
        );
        assert_eq!(r.seeds.as_ref(), &[ns[0], ns[3]]);
    }

    #[test]
    fn minimality_checker() {
        let (g, ns, es) = path_graph();
        let seeds = SeedSets::from_sets(vec![vec![ns[0]], vec![ns[3]]]).unwrap();
        let good = ResultTree {
            edges: es.clone().into_boxed_slice(),
            nodes: ns.clone().into_boxed_slice(),
            seeds: vec![ns[0], ns[3]].into_boxed_slice(),
        };
        assert!(check_result_minimal(&g, &good, &seeds).is_ok());

        // A subtree ending in a non-seed leaf fails.
        let bad = ResultTree {
            edges: vec![es[0], es[1]].into_boxed_slice(),
            nodes: ns[..3].to_vec().into_boxed_slice(),
            seeds: vec![ns[0], ns[3]].into_boxed_slice(),
        };
        let err = check_result_minimal(&g, &bad, &seeds).unwrap_err();
        assert!(err.contains("set 1") || err.contains("leaf"), "{err}");
    }

    #[test]
    fn sat_helper() {
        let (_, ns, _) = path_graph();
        let seeds = SeedSets::from_sets(vec![vec![ns[0]], vec![ns[3]]]).unwrap();
        assert_eq!(sat_of_nodes(&[ns[0], ns[1]], &seeds), SeedMask::single(0));
        assert_eq!(sat_of_nodes(&ns, &seeds), SeedMask::full(2));
    }

    #[test]
    fn describe_result() {
        let (g, ns, es) = path_graph();
        let r = ResultTree {
            edges: vec![es[0]].into_boxed_slice(),
            nodes: ns[..2].to_vec().into_boxed_slice(),
            seeds: vec![ns[0], ns[1]].into_boxed_slice(),
        };
        assert_eq!(r.describe(&g), "n0 -r-> n1");
        let single = ResultTree {
            edges: Box::new([]),
            nodes: vec![ns[0]].into_boxed_slice(),
            seeds: vec![ns[0]].into_boxed_slice(),
        };
        assert!(single.describe(&g).contains("single node"));
    }
}
