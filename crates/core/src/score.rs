//! Score functions over CTP results (paper requirement R2, §4.8
//! `SCORE σ [TOP k]`).
//!
//! The search algorithms are deliberately orthogonal to scoring: any
//! [`ScoreFn`] can rank any result set, and [`TopK`] keeps the k best
//! results as they stream out of the search ("the simplest
//! implementation calls σ on each new result").

use crate::result::ResultTree;
use cs_graph::Graph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A score function σ: assigns each result tree a real number — the
/// higher, the better.
pub trait ScoreFn: Send + Sync {
    /// Scores one result tree.
    fn score(&self, g: &Graph, t: &ResultTree) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// σ = −|edges|: smaller trees score higher (the classic GSTP cost).
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeCount;

impl ScoreFn for EdgeCount {
    fn score(&self, _g: &Graph, t: &ResultTree) -> f64 {
        -(t.size() as f64)
    }

    fn name(&self) -> &'static str {
        "edgecount"
    }
}

/// Specificity: σ = Σ 1/degree(n) over tree nodes. Trees through hubs
/// (like the "country" node in the paper's Introduction example, which
/// connects everyone but interests no journalist) score low; trees
/// through specific nodes score high.
#[derive(Debug, Clone, Copy, Default)]
pub struct Specificity;

impl ScoreFn for Specificity {
    fn score(&self, g: &Graph, t: &ResultTree) -> f64 {
        t.nodes
            .iter()
            .map(|&n| 1.0 / g.degree(n).max(1) as f64)
            .sum()
    }

    fn name(&self) -> &'static str {
        "specificity"
    }
}

/// Label rarity: σ = Σ 1/freq(label(e)) — results using rare edge
/// labels rank higher.
#[derive(Debug, Clone, Copy, Default)]
pub struct LabelRarity;

impl ScoreFn for LabelRarity {
    fn score(&self, g: &Graph, t: &ResultTree) -> f64 {
        t.edges
            .iter()
            .map(|&e| {
                let l = g.edge(e).label;
                1.0 / g.edges_with_label(l).len().max(1) as f64
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "labelrarity"
    }
}

/// σ = −Σ weight(e), reading a numeric `weight` edge property
/// (defaulting to 1 per edge) — the vertex/edge-weighted GSTP cost used
/// by LANCET-style systems.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeWeight;

impl ScoreFn for EdgeWeight {
    fn score(&self, g: &Graph, t: &ResultTree) -> f64 {
        -t.edges
            .iter()
            .map(|&e| {
                g.edge_prop(e, "weight")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(1.0)
            })
            .sum::<f64>()
    }

    fn name(&self) -> &'static str {
        "edgeweight"
    }
}

/// Parses a score-function name (used by the EQL surface syntax).
pub fn by_name(name: &str) -> Option<Box<dyn ScoreFn>> {
    match name.to_ascii_lowercase().as_str() {
        "edgecount" => Some(Box::new(EdgeCount)),
        "specificity" => Some(Box::new(Specificity)),
        "labelrarity" => Some(Box::new(LabelRarity)),
        "edgeweight" => Some(Box::new(EdgeWeight)),
        _ => None,
    }
}

/// An entry of the top-k heap.
struct Scored {
    score: f64,
    index: usize,
}

impl PartialEq for Scored {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Scored {}
impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on score (lowest score at the top, evicted first);
        // NaN sorts last so it is evicted first.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
    }
}

/// Streaming top-k accumulator over scored results.
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Scored>,
    kept: Vec<(f64, ResultTree)>,
}

impl TopK {
    /// Keeps the `k` highest-scoring results.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            kept: Vec::new(),
        }
    }

    /// Offers a result; it is retained if it ranks in the current top k.
    pub fn offer(&mut self, score: f64, tree: ResultTree) {
        if self.k == 0 {
            return;
        }
        let index = self.kept.len();
        self.kept.push((score, tree));
        self.heap.push(Scored { score, index });
        if self.heap.len() > self.k {
            self.heap.pop(); // evict the lowest score
        }
    }

    /// Finalises: the kept results, best first.
    pub fn into_sorted(self) -> Vec<(f64, ResultTree)> {
        let mut keep_idx: Vec<usize> = self.heap.into_iter().map(|s| s.index).collect();
        keep_idx.sort_unstable();
        let mut out: Vec<(f64, ResultTree)> = self
            .kept
            .into_iter()
            .enumerate()
            .filter(|(i, _)| keep_idx.binary_search(i).is_ok())
            .map(|(_, st)| st)
            .collect();
        out.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal));
        out
    }
}

/// Scores and ranks a whole result list, best first (`SCORE σ` without
/// `TOP k`).
pub fn rank_all(g: &Graph, results: &[ResultTree], sigma: &dyn ScoreFn) -> Vec<(f64, ResultTree)> {
    let mut scored: Vec<(f64, ResultTree)> = results
        .iter()
        .map(|t| (sigma.score(g, t), t.clone()))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{evaluate_ctp, Algorithm};
    use crate::config::{Filters, QueueOrder};
    use crate::seeds::SeedSets;
    use cs_graph::generate::chain;

    fn chain_results() -> (cs_graph::Graph, Vec<ResultTree>) {
        let w = chain(3);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = evaluate_ctp(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        (w.graph.clone(), out.results.into_trees())
    }

    #[test]
    fn edge_count_prefers_small() {
        let (g, rs) = chain_results();
        let ranked = rank_all(&g, &rs, &EdgeCount);
        // All chain results have 3 edges — scores all equal.
        assert!(ranked.windows(2).all(|w| w[0].0 >= w[1].0));
        assert_eq!(ranked[0].0, -3.0);
    }

    #[test]
    fn specificity_counts_degrees() {
        let (g, rs) = chain_results();
        let s = Specificity.score(&g, &rs[0]);
        assert!(s > 0.0 && s <= rs[0].nodes.len() as f64);
    }

    #[test]
    fn label_rarity_discriminates() {
        // On the chain all "a" edges are as frequent as "b"; a tree with
        // rarer labels would win. Verify the sum structure instead.
        let (g, rs) = chain_results();
        for r in &rs {
            let score = LabelRarity.score(&g, r);
            assert!(score > 0.0);
        }
    }

    #[test]
    fn edge_weight_defaults_to_one() {
        let (g, rs) = chain_results();
        assert_eq!(EdgeWeight.score(&g, &rs[0]), -(rs[0].size() as f64));
    }

    #[test]
    fn top_k_keeps_best() {
        let (g, rs) = chain_results();
        assert_eq!(rs.len(), 8);
        let mut tk = TopK::new(3);
        for (i, r) in rs.iter().enumerate() {
            tk.offer(i as f64, r.clone()); // score = discovery index
        }
        let top = tk.into_sorted();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 7.0);
        assert_eq!(top[2].0, 5.0);
        let _ = g;
    }

    #[test]
    fn top_k_zero_and_small_input() {
        let (_, rs) = chain_results();
        let mut tk = TopK::new(0);
        tk.offer(1.0, rs[0].clone());
        assert!(tk.into_sorted().is_empty());

        let mut tk = TopK::new(10);
        tk.offer(1.0, rs[0].clone());
        assert_eq!(tk.into_sorted().len(), 1);
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("EdgeCount").is_some());
        assert!(by_name("specificity").is_some());
        assert!(by_name("unknown").is_none());
        assert_eq!(by_name("labelrarity").unwrap().name(), "labelrarity");
    }
}

/// Builds a score-guided exploration order (§4.8: "a smarter
/// implementation may favor the early production of higher-score
/// results by appropriately choosing the priority queue order").
///
/// Partial trees are scored by σ (over their current edge/node sets)
/// with a small penalty per edge so that small promising trees expand
/// first. Because MoLESP's completeness is order-independent, any
/// σ-guided order still finds the same result set; it only changes
/// *when* each result appears — pair it with `LIMIT`/`TOP k` to stop
/// early.
pub fn guided_order(sigma: std::sync::Arc<dyn ScoreFn>) -> crate::config::QueueOrder {
    crate::config::QueueOrder::Custom(std::sync::Arc::new(move |g, tree, _edge| {
        let partial = ResultTree {
            edges: tree.edges.clone(),
            nodes: tree.nodes.clone(),
            seeds: Box::new([]),
        };
        // Scale to keep ordering resolution; subtract size so ties
        // favour smaller trees.
        (sigma.score(g, &partial) * 1024.0) as i64 - tree.size() as i64
    }))
}

#[cfg(test)]
mod guided_tests {
    use super::*;
    use crate::algo::{evaluate_ctp, Algorithm};
    use crate::config::{Filters, QueueOrder};
    use crate::seeds::SeedSets;
    use cs_graph::generate::chain;
    use std::sync::Arc;

    #[test]
    fn guided_order_preserves_molesp_completeness() {
        let w = chain(5); // 32 results
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let baseline = evaluate_ctp(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        let guided = evaluate_ctp(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none(),
            guided_order(Arc::new(LabelRarity)),
        );
        assert_eq!(baseline.results.canonical(), guided.results.canonical());
    }

    #[test]
    fn guided_order_with_limit_finds_sound_results() {
        let w = chain(6);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let all = evaluate_ctp(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none(),
            QueueOrder::SmallestFirst,
        )
        .results
        .canonical();
        let early = evaluate_ctp(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none().with_max_results(4),
            guided_order(Arc::new(Specificity)),
        );
        assert_eq!(early.results.len(), 4);
        for t in early.results.canonical() {
            assert!(all.contains(&t));
        }
    }
}
