//! Search configuration: CTP filters (paper §2, §4.8), exploration
//! order, budgets, and the queue policy for very large seed sets (§4.9).

use crate::tree::TreeData;
use cs_graph::fxhash::FxHashSet;
use cs_graph::{EdgeId, Graph, LabelId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A shared cooperative-cancellation flag.
///
/// Cloning yields another handle to the same flag, so a caller can keep
/// one handle (e.g. a server's cancel registry, keyed by request id) and
/// push the other into [`Filters::with_cancel`]. The search engines poll
/// it on the same cadence as the deadline check (every 64 Grow steps) and
/// stop with [`SearchStats::cancelled`](crate::SearchStats) set, so a
/// cancelled search still returns its partial state instead of running to
/// completion.
#[derive(Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> Self {
        CancelFlag::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        // ORDERING: Relaxed — the flag is a purely advisory "stop soon"
        // signal with no data published alongside it; the searches poll
        // it and act on their own local state only.
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        // ORDERING: Relaxed — advisory poll; see `cancel`.
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for CancelFlag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CancelFlag")
            .field(&self.is_cancelled())
            .finish()
    }
}

/// CTP filters and evaluation limits, pushed into the search (§4.8).
#[derive(Clone, Default)]
pub struct Filters {
    /// `UNI`: only unidirectional trees (a root with directed paths to
    /// every seed).
    pub uni: bool,
    /// `LABEL {l1, …}`: result edges restricted to these labels.
    pub labels: Option<Vec<String>>,
    /// `MAX n`: only trees of at most `n` edges.
    pub max_edges: Option<usize>,
    /// `timeout T`: wall-clock limit for this CTP.
    pub timeout: Option<Duration>,
    /// `LIMIT k`: stop after `k` results.
    pub max_results: Option<usize>,
    /// Deterministic budget: stop after building this many provenances
    /// (used by tests and benchmarks for reproducibility).
    pub max_provenances: Option<u64>,
    /// Cooperative cancellation: polled by the engines on the deadline
    /// cadence; when set, the search stops early with
    /// `SearchStats::cancelled`.
    pub cancel: Option<CancelFlag>,
}

impl Filters {
    /// No filters: complete search.
    pub fn none() -> Self {
        Filters::default()
    }

    /// Builder-style: set `UNI`.
    pub fn uni(mut self) -> Self {
        self.uni = true;
        self
    }

    /// Builder-style: set `LABEL`.
    pub fn with_labels<I: IntoIterator<Item = S>, S: Into<String>>(mut self, labels: I) -> Self {
        self.labels = Some(labels.into_iter().map(Into::into).collect());
        self
    }

    /// Builder-style: set `MAX n`.
    pub fn with_max_edges(mut self, n: usize) -> Self {
        self.max_edges = Some(n);
        self
    }

    /// Builder-style: set the timeout.
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.timeout = Some(t);
        self
    }

    /// Builder-style: set `LIMIT k`.
    pub fn with_max_results(mut self, k: usize) -> Self {
        self.max_results = Some(k);
        self
    }

    /// Builder-style: set the provenance budget.
    pub fn with_max_provenances(mut self, n: u64) -> Self {
        self.max_provenances = Some(n);
        self
    }

    /// Builder-style: attach a cooperative cancellation flag.
    pub fn with_cancel(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Has the attached cancel flag (if any) been raised?
    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelFlag::is_cancelled)
    }

    /// Resolves the label filter against a graph's interner. Labels
    /// absent from the graph resolve to nothing (no edge can match).
    pub(crate) fn resolve_labels(&self, g: &Graph) -> Option<FxHashSet<LabelId>> {
        self.labels.as_ref().map(|ls| {
            ls.iter()
                .filter_map(|l| g.label_id(l))
                .collect::<FxHashSet<LabelId>>()
        })
    }
}

impl std::fmt::Debug for Filters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Filters")
            .field("uni", &self.uni)
            .field("labels", &self.labels)
            .field("max_edges", &self.max_edges)
            .field("timeout", &self.timeout)
            .field("max_results", &self.max_results)
            .field("max_provenances", &self.max_provenances)
            .field("cancel", &self.cancel)
            .finish()
    }
}

/// Priority function type for [`QueueOrder::Custom`]: higher values pop
/// first; ties break FIFO.
pub type PriorityFn = Arc<dyn Fn(&Graph, &TreeData, EdgeId) -> i64 + Send + Sync>;

/// Exploration order of the Grow queue.
///
/// The paper's experiments "favor the smallest trees, breaking ties
/// arbitrarily" (§5.4.1); completeness guarantees are independent of the
/// order, and `Custom` lets tests force the adversarial orders of
/// Figures 3, 5 and 6.
#[derive(Clone, Default)]
pub enum QueueOrder {
    /// Pop the smallest candidate tree first (the paper's default).
    #[default]
    SmallestFirst,
    /// Pop the largest first (an intentionally bad order).
    LargestFirst,
    /// Pure FIFO.
    Fifo,
    /// A user-supplied priority (e.g. a score-function heuristic,
    /// §4.8 "a smarter implementation may favor the early production of
    /// higher-score results by appropriately choosing the queue order").
    Custom(PriorityFn),
}

impl QueueOrder {
    /// The priority of growing `tree` with `edge` (higher pops first).
    pub fn priority(&self, g: &Graph, tree: &TreeData, edge: EdgeId) -> i64 {
        match self {
            QueueOrder::SmallestFirst => -(tree.size() as i64 + 1),
            QueueOrder::LargestFirst => tree.size() as i64 + 1,
            QueueOrder::Fifo => 0,
            QueueOrder::Custom(f) => f(g, tree, edge),
        }
    }
}

impl std::fmt::Debug for QueueOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueOrder::SmallestFirst => write!(f, "SmallestFirst"),
            QueueOrder::LargestFirst => write!(f, "LargestFirst"),
            QueueOrder::Fifo => write!(f, "Fifo"),
            QueueOrder::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// How Grow opportunities are queued (§4.9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// One global priority queue.
    #[default]
    Single,
    /// One queue per `sat(t)` mask; pop from the queue currently holding
    /// the fewest pairs, so exploration balances towards the
    /// neighbourhoods of the smaller seed sets (borrowed from
    /// bidirectional expansion, Kacholia et al. 2005).
    Balanced,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let f = Filters::none()
            .uni()
            .with_labels(["a", "b"])
            .with_max_edges(5)
            .with_max_results(10)
            .with_max_provenances(100)
            .with_timeout(Duration::from_millis(50));
        assert!(f.uni);
        assert_eq!(f.labels.as_ref().unwrap().len(), 2);
        assert_eq!(f.max_edges, Some(5));
        assert_eq!(f.max_results, Some(10));
        assert_eq!(f.max_provenances, Some(100));
        assert!(f.timeout.is_some());
        assert!(format!("{f:?}").contains("uni: true"));
    }

    #[test]
    fn cancel_flag_is_shared() {
        let flag = CancelFlag::new();
        let f = Filters::none().with_cancel(flag.clone());
        assert!(!f.cancel_requested());
        flag.cancel();
        assert!(f.cancel_requested());
        assert!(format!("{f:?}").contains("CancelFlag(true)"));
        // A filter without a flag never reports cancellation.
        assert!(!Filters::none().cancel_requested());
    }

    #[test]
    fn label_resolution() {
        let g = cs_graph::figure1();
        let f = Filters::none().with_labels(["citizenOf", "noSuchLabel"]);
        let resolved = f.resolve_labels(&g).unwrap();
        assert_eq!(resolved.len(), 1);
    }

    #[test]
    fn order_priorities() {
        use crate::seedmask::SeedMask;
        use crate::tree::Provenance;
        let g = cs_graph::figure1();
        let t = TreeData {
            root: cs_graph::NodeId(0),
            edges: vec![EdgeId(0), EdgeId(1)].into_boxed_slice(),
            nodes: vec![cs_graph::NodeId(0)].into_boxed_slice(),
            sat: SeedMask::EMPTY,
            is_mo: false,
            path_from: SeedMask::EMPTY,
            provenance: Provenance::Init(cs_graph::NodeId(0)),
        };
        assert_eq!(QueueOrder::SmallestFirst.priority(&g, &t, EdgeId(2)), -3);
        assert_eq!(QueueOrder::LargestFirst.priority(&g, &t, EdgeId(2)), 3);
        assert_eq!(QueueOrder::Fifo.priority(&g, &t, EdgeId(2)), 0);
        let custom = QueueOrder::Custom(Arc::new(|_, _, e| e.0 as i64));
        assert_eq!(custom.priority(&g, &t, EdgeId(7)), 7);
        assert_eq!(format!("{:?}", custom), "Custom(..)");
    }
}
