//! Parallel CTP evaluation: the two-level scheduler (§6).
//!
//! The paper notes (§6) that a multi-threaded C++ version of GAM gains
//! up to 100×. This module schedules both parallelism tiers under a
//! **single thread budget**:
//!
//! * **per CTP (outer tier)** — independent CTP jobs (a multi-CTP
//!   query, a cross-query batch, a benchmark workload) are distributed
//!   over a [`std::thread::scope`] with an atomic cursor;
//! * **intra-search (inner tier)** — each job may itself run on the
//!   partitioned-history engine ([`crate::algo::partition`]), splitting
//!   one connection search over several workers.
//!
//! [`evaluate_ctps_parallel_budgeted`] divides a total budget of
//! `threads` between the tiers: enough outer workers to cover the jobs,
//! and the leftover capacity as intra-search workers per job (or an
//! explicit `search_threads` override). With one enormous search the
//! whole budget goes intra-search; with many small jobs it goes to job
//! throughput — `threads` stays the single global knob.

use crate::algo::{evaluate_ctp_partitioned, evaluate_ctp_with_policy, Algorithm};
use crate::config::{Filters, QueueOrder, QueuePolicy};
use crate::result::SearchOutcome;
use crate::seeds::SeedSets;
use cs_graph::Graph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One independent CTP evaluation job.
#[derive(Clone)]
pub struct CtpJob {
    /// The seed sets.
    pub seeds: SeedSets,
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// The CTP filters.
    pub filters: Filters,
    /// Exploration order.
    pub order: QueueOrder,
    /// Queue policy.
    pub policy: QueuePolicy,
}

impl CtpJob {
    /// A MoLESP job with default order/policy.
    pub fn molesp(seeds: SeedSets, filters: Filters) -> Self {
        CtpJob {
            seeds,
            algorithm: Algorithm::MoLesp,
            filters,
            order: QueueOrder::SmallestFirst,
            policy: QueuePolicy::Single,
        }
    }
}

/// Resolves a `0 = auto` thread count to the available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Resolves the intra-search worker count of one job under a total
/// budget of `total` threads shared by `jobs` concurrent jobs:
/// `search_threads == 0` ("auto") spreads the leftover budget evenly
/// (`max(1, total / jobs)`), an explicit value is taken as-is.
pub fn resolve_search_threads(search_threads: usize, total: usize, jobs: usize) -> usize {
    match search_threads {
        0 => (total / jobs.max(1)).max(1),
        n => n,
    }
}

/// Evaluates one CTP job with `intra` intra-search workers: the
/// partitioned engine when `intra > 1`, the sequential engine
/// otherwise. The single engine-routing point shared by every dispatch
/// path (pooled or inline).
pub fn evaluate_job(g: &Graph, job: &CtpJob, intra: usize) -> SearchOutcome {
    if intra > 1 {
        evaluate_ctp_partitioned(
            g,
            &job.seeds,
            job.algorithm,
            job.filters.clone(),
            job.order.clone(),
            job.policy,
            intra,
        )
    } else {
        evaluate_ctp_with_policy(
            g,
            &job.seeds,
            job.algorithm,
            job.filters.clone(),
            job.order.clone(),
            job.policy,
        )
    }
}

/// Evaluates independent CTP jobs over one shared graph on up to
/// `threads` worker threads (0 = available parallelism). Outcomes are
/// returned in job order, each in the sequential engine's discovery
/// order — this is [`evaluate_ctps_parallel_budgeted`] with the inner
/// tier pinned to one worker per search.
pub fn evaluate_ctps_parallel(g: &Graph, jobs: &[CtpJob], threads: usize) -> Vec<SearchOutcome> {
    evaluate_ctps_parallel_budgeted(g, jobs, threads, 1)
}

/// The two-level scheduler: distributes the jobs over an outer pool of
/// `min(threads, jobs)` workers, and runs each job's search with
/// `search_threads` intra-search workers (`0` = divide the leftover
/// `threads` budget evenly across the outer workers; `1` = sequential
/// engine). `threads` is the single global budget — the outer and
/// inner tiers never multiply beyond `threads × explicit
/// search_threads`, and with the auto setting never beyond `threads`.
/// Outcomes are returned in job order.
pub fn evaluate_ctps_parallel_budgeted(
    g: &Graph,
    jobs: &[CtpJob],
    threads: usize,
    search_threads: usize,
) -> Vec<SearchOutcome> {
    let total = resolve_threads(threads);
    let outer = total.min(jobs.len().max(1));
    let intra = resolve_search_threads(search_threads, total, outer);

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SearchOutcome>>> =
        (0..jobs.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..outer {
            scope.spawn(|| loop {
                // ORDERING: ticket dispenser; the atomic RMW alone
                // guarantees each job index is claimed exactly once,
                // and slot writes are published by the scope join.
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                // cs-lint: allow(L002): one writer per slot, so the
                // lock is never poisoned; a panic here aborts the run.
                *slots[i].lock().unwrap() = Some(evaluate_job(g, &jobs[i], intra));
            });
        }
    });

    slots
        .into_iter()
        // cs-lint: allow(L002): a worker panic already propagated via
        // the scope join, so every slot is unpoisoned and filled here.
        .map(|m| m.into_inner().unwrap().expect("job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::evaluate_ctp;
    use cs_graph::generate::{chain, line, star};

    #[test]
    fn parallel_matches_sequential() {
        let ws = [line(3, 2), star(4, 2), chain(5), line(2, 5)];
        let g = &ws[0].graph; // jobs share a graph: reuse the first
        let jobs: Vec<CtpJob> = (0..8)
            .map(|i| {
                CtpJob::molesp(
                    SeedSets::from_sets(ws[0].seeds.clone()).unwrap(),
                    Filters::none().with_max_edges(4 + i % 3),
                )
            })
            .collect();
        let outs = evaluate_ctps_parallel(g, &jobs, 4);
        assert_eq!(outs.len(), 8);
        for (job, out) in jobs.iter().zip(&outs) {
            let seq = evaluate_ctp(
                g,
                &job.seeds,
                job.algorithm,
                job.filters.clone(),
                QueueOrder::SmallestFirst,
            );
            assert_eq!(out.results.canonical(), seq.results.canonical());
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let w = star(3, 2);
        let jobs = vec![CtpJob::molesp(
            SeedSets::from_sets(w.seeds.clone()).unwrap(),
            Filters::none(),
        )];
        let outs = evaluate_ctps_parallel(&w.graph, &jobs, 0);
        assert_eq!(outs[0].results.len(), 1);
    }

    #[test]
    fn more_threads_than_jobs() {
        let w = line(3, 1);
        let jobs = vec![CtpJob::molesp(
            SeedSets::from_sets(w.seeds.clone()).unwrap(),
            Filters::none(),
        )];
        let outs = evaluate_ctps_parallel(&w.graph, &jobs, 16);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].results.len(), 1);
    }

    #[test]
    fn empty_job_list() {
        let w = line(2, 1);
        let outs = evaluate_ctps_parallel(&w.graph, &[], 4);
        assert!(outs.is_empty());
    }

    #[test]
    fn budgeted_two_level_matches_sequential() {
        let w = chain(6);
        let jobs: Vec<CtpJob> = (0..3)
            .map(|i| {
                CtpJob::molesp(
                    SeedSets::from_sets(w.seeds.clone()).unwrap(),
                    Filters::none().with_max_edges(4 + i),
                )
            })
            .collect();
        // 2 outer workers × 2 intra-search workers under a budget of 4.
        let outs = evaluate_ctps_parallel_budgeted(&w.graph, &jobs, 4, 2);
        assert_eq!(outs.len(), 3);
        for (job, out) in jobs.iter().zip(&outs) {
            let seq = evaluate_ctp(
                &w.graph,
                &job.seeds,
                job.algorithm,
                job.filters.clone(),
                QueueOrder::SmallestFirst,
            );
            assert_eq!(out.results.canonical(), seq.results.canonical());
            // Intra-search tier really ran: per-worker stats present.
            assert_eq!(out.stats.workers.len(), 2);
        }
    }

    #[test]
    fn auto_search_threads_divide_the_budget() {
        // One job, threads = 4, search_threads = 0: the whole budget
        // goes intra-search.
        let w = chain(5);
        let jobs = vec![CtpJob::molesp(
            SeedSets::from_sets(w.seeds.clone()).unwrap(),
            Filters::none(),
        )];
        let outs = evaluate_ctps_parallel_budgeted(&w.graph, &jobs, 4, 0);
        assert_eq!(outs[0].results.len(), 32);
        assert_eq!(outs[0].stats.workers.len(), 4);
        // search_threads resolution: explicit wins, auto divides.
        assert_eq!(resolve_search_threads(3, 8, 2), 3);
        assert_eq!(resolve_search_threads(0, 8, 2), 4);
        assert_eq!(resolve_search_threads(0, 3, 8), 1);
        assert_eq!(resolve_search_threads(0, 4, 0), 4);
    }
}
