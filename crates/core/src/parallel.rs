//! Parallel CTP evaluation.
//!
//! The paper notes (§6) that a multi-threaded C++ version of GAM gains
//! up to 100×. A full intra-search parallelisation conflicts with the
//! sequential history semantics ESP depends on, so this module
//! parallelises at the two granularities that are embarrassingly
//! parallel and that the EQL workload actually presents:
//!
//! * **per CTP** — a query may contain several CTPs (Table 1's J1);
//! * **per workload** — benchmark batches of independent CTP searches
//!   (Fig. 12 runs hundreds of queries).
//!
//! Work is distributed over a [`std::thread::scope`] with an atomic
//! cursor.

use crate::algo::{evaluate_ctp_with_policy, Algorithm};
use crate::config::{Filters, QueueOrder, QueuePolicy};
use crate::result::SearchOutcome;
use crate::seeds::SeedSets;
use cs_graph::Graph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One independent CTP evaluation job.
#[derive(Clone)]
pub struct CtpJob {
    /// The seed sets.
    pub seeds: SeedSets,
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// The CTP filters.
    pub filters: Filters,
    /// Exploration order.
    pub order: QueueOrder,
    /// Queue policy.
    pub policy: QueuePolicy,
}

impl CtpJob {
    /// A MoLESP job with default order/policy.
    pub fn molesp(seeds: SeedSets, filters: Filters) -> Self {
        CtpJob {
            seeds,
            algorithm: Algorithm::MoLesp,
            filters,
            order: QueueOrder::SmallestFirst,
            policy: QueuePolicy::Single,
        }
    }
}

/// Evaluates independent CTP jobs over one shared graph on up to
/// `threads` worker threads (0 = available parallelism). Outcomes are
/// returned in job order.
pub fn evaluate_ctps_parallel(g: &Graph, jobs: &[CtpJob], threads: usize) -> Vec<SearchOutcome> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
    .min(jobs.len().max(1));

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SearchOutcome>>> =
        (0..jobs.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let out = evaluate_ctp_with_policy(
                    g,
                    &job.seeds,
                    job.algorithm,
                    job.filters.clone(),
                    job.order.clone(),
                    job.policy,
                );
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::evaluate_ctp;
    use cs_graph::generate::{chain, line, star};

    #[test]
    fn parallel_matches_sequential() {
        let ws = [line(3, 2), star(4, 2), chain(5), line(2, 5)];
        let g = &ws[0].graph; // jobs share a graph: reuse the first
        let jobs: Vec<CtpJob> = (0..8)
            .map(|i| {
                CtpJob::molesp(
                    SeedSets::from_sets(ws[0].seeds.clone()).unwrap(),
                    Filters::none().with_max_edges(4 + i % 3),
                )
            })
            .collect();
        let outs = evaluate_ctps_parallel(g, &jobs, 4);
        assert_eq!(outs.len(), 8);
        for (job, out) in jobs.iter().zip(&outs) {
            let seq = evaluate_ctp(
                g,
                &job.seeds,
                job.algorithm,
                job.filters.clone(),
                QueueOrder::SmallestFirst,
            );
            assert_eq!(out.results.canonical(), seq.results.canonical());
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let w = star(3, 2);
        let jobs = vec![CtpJob::molesp(
            SeedSets::from_sets(w.seeds.clone()).unwrap(),
            Filters::none(),
        )];
        let outs = evaluate_ctps_parallel(&w.graph, &jobs, 0);
        assert_eq!(outs[0].results.len(), 1);
    }

    #[test]
    fn more_threads_than_jobs() {
        let w = line(3, 1);
        let jobs = vec![CtpJob::molesp(
            SeedSets::from_sets(w.seeds.clone()).unwrap(),
            Filters::none(),
        )];
        let outs = evaluate_ctps_parallel(&w.graph, &jobs, 16);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].results.len(), 1);
    }

    #[test]
    fn empty_job_list() {
        let w = line(2, 1);
        let outs = evaluate_ctps_parallel(&w.graph, &[], 4);
        assert!(outs.is_empty());
    }
}
