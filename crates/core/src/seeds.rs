//! Seed sets of a CTP, with fast node → seed-set-membership lookup.

use crate::seedmask::{SeedMask, MAX_SEED_SETS};
use cs_graph::fxhash::FxHashMap;
use cs_graph::{Graph, NodeId};

/// One seed-set position of a CTP: an explicit node set, or `All`
/// (the paper's `N` seed set, §4.9), which every graph node matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedSpec {
    /// An explicit set of seed nodes.
    Set(Vec<NodeId>),
    /// The whole node set `N`.
    All,
}

impl SeedSpec {
    /// Convenience: a singleton seed set.
    pub fn one(n: NodeId) -> Self {
        SeedSpec::Set(vec![n])
    }
}

/// Errors constructing [`SeedSets`].
#[derive(Debug, PartialEq, Eq)]
pub enum SeedError {
    /// More than 64 seed sets.
    TooManySets(usize),
    /// Fewer than one seed set.
    NoSets,
    /// An explicit seed set is empty, so the CTP can have no result.
    EmptySet(usize),
    /// Every seed set is `All`; the CTP is unconstrained.
    AllUnbounded,
}

impl std::fmt::Display for SeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeedError::TooManySets(m) => {
                write!(
                    f,
                    "{m} seed sets exceed the supported maximum of {MAX_SEED_SETS}"
                )
            }
            SeedError::NoSets => write!(f, "a CTP needs at least one seed set"),
            SeedError::EmptySet(i) => write!(f, "seed set {i} is empty"),
            SeedError::AllUnbounded => {
                write!(f, "all seed sets are N; at least one must be explicit")
            }
        }
    }
}

impl std::error::Error for SeedError {}

/// The resolved seed sets of a CTP.
///
/// `membership(n)` is the mask of *explicit* sets containing node `n`
/// (a node may belong to several sets, e.g. someone who is both in the
/// "entrepreneur" and "politician" sets). `All` sets take part in the
/// result check via [`SeedSets::presatisfied`] — they are satisfied by
/// any node, and per the paper's adjustment to Def. 2.8 a tree may
/// contain any number of their "seeds", so they are excluded from
/// membership (and hence from the Grow2/Merge2 conditions).
#[derive(Debug, Clone)]
pub struct SeedSets {
    specs: Vec<SeedSpec>,
    membership: FxHashMap<NodeId, SeedMask>,
    presatisfied: SeedMask,
    full: SeedMask,
}

impl SeedSets {
    /// Builds seed sets, validating cardinality constraints.
    pub fn new(specs: Vec<SeedSpec>) -> Result<Self, SeedError> {
        let m = specs.len();
        if m == 0 {
            return Err(SeedError::NoSets);
        }
        if m > MAX_SEED_SETS {
            return Err(SeedError::TooManySets(m));
        }
        let mut membership: FxHashMap<NodeId, SeedMask> = FxHashMap::default();
        let mut presatisfied = SeedMask::EMPTY;
        for (i, spec) in specs.iter().enumerate() {
            match spec {
                SeedSpec::Set(nodes) => {
                    if nodes.is_empty() {
                        return Err(SeedError::EmptySet(i));
                    }
                    for &n in nodes {
                        membership.entry(n).or_default().insert(i);
                    }
                }
                SeedSpec::All => presatisfied.insert(i),
            }
        }
        if presatisfied == SeedMask::full(m) {
            return Err(SeedError::AllUnbounded);
        }
        Ok(SeedSets {
            specs,
            membership,
            presatisfied,
            full: SeedMask::full(m),
        })
    }

    /// Builds from plain node-set vectors (no `All` sets).
    pub fn from_sets(sets: Vec<Vec<NodeId>>) -> Result<Self, SeedError> {
        SeedSets::new(sets.into_iter().map(SeedSpec::Set).collect())
    }

    /// Number of seed sets m.
    pub fn m(&self) -> usize {
        self.specs.len()
    }

    /// The specs.
    pub fn specs(&self) -> &[SeedSpec] {
        &self.specs
    }

    /// Mask of explicit sets containing `n` (empty if `n` is no seed).
    #[inline]
    pub fn membership(&self, n: NodeId) -> SeedMask {
        self.membership.get(&n).copied().unwrap_or_default()
    }

    /// True if `n` belongs to at least one explicit seed set.
    #[inline]
    pub fn is_seed(&self, n: NodeId) -> bool {
        self.membership.contains_key(&n)
    }

    /// Mask of `All` sets (satisfied from the start).
    #[inline]
    pub fn presatisfied(&self) -> SeedMask {
        self.presatisfied
    }

    /// The full mask over all m sets.
    #[inline]
    pub fn full(&self) -> SeedMask {
        self.full
    }

    /// All distinct seed nodes across explicit sets, in first-set order.
    pub fn all_seed_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut seen = cs_graph::fxhash::FxHashSet::default();
        for spec in &self.specs {
            if let SeedSpec::Set(nodes) = spec {
                for &n in nodes {
                    if seen.insert(n) {
                        out.push(n);
                    }
                }
            }
        }
        out
    }

    /// Size of the largest explicit seed set.
    pub fn max_set_size(&self) -> usize {
        self.specs
            .iter()
            .map(|s| match s {
                SeedSpec::Set(v) => v.len(),
                SeedSpec::All => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Validates the seed specs against a graph (node ids in range).
    pub fn check_against(&self, g: &Graph) -> bool {
        self.membership.keys().all(|n| n.index() < g.node_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn membership_masks() {
        let s = SeedSets::from_sets(vec![vec![n(1), n(2)], vec![n(2), n(3)]]).unwrap();
        assert_eq!(s.m(), 2);
        assert_eq!(s.membership(n(1)), SeedMask::single(0));
        assert_eq!(s.membership(n(2)), SeedMask(0b11)); // both sets
        assert_eq!(s.membership(n(9)), SeedMask::EMPTY);
        assert!(s.is_seed(n(3)));
        assert!(!s.is_seed(n(9)));
    }

    #[test]
    fn all_sets_presatisfied() {
        let s = SeedSets::new(vec![SeedSpec::one(n(1)), SeedSpec::All]).unwrap();
        assert_eq!(s.presatisfied(), SeedMask::single(1));
        // `All` membership does not pollute explicit membership.
        assert_eq!(s.membership(n(5)), SeedMask::EMPTY);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(SeedSets::from_sets(vec![]).unwrap_err(), SeedError::NoSets);
        assert_eq!(
            SeedSets::from_sets(vec![vec![n(1)], vec![]]).unwrap_err(),
            SeedError::EmptySet(1)
        );
        assert_eq!(
            SeedSets::new(vec![SeedSpec::All, SeedSpec::All]).unwrap_err(),
            SeedError::AllUnbounded
        );
        let too_many = (0..65).map(|i| vec![n(i)]).collect();
        assert_eq!(
            SeedSets::from_sets(too_many).unwrap_err(),
            SeedError::TooManySets(65)
        );
        assert!(SeedError::TooManySets(65).to_string().contains("65"));
    }

    #[test]
    fn all_seed_nodes_dedup() {
        let s = SeedSets::from_sets(vec![vec![n(1), n(2)], vec![n(2), n(3)]]).unwrap();
        assert_eq!(s.all_seed_nodes(), vec![n(1), n(2), n(3)]);
        assert_eq!(s.max_set_size(), 2);
    }
}
