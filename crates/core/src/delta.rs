//! Delta-seeded relevance probe for incremental CTP re-evaluation.
//!
//! When a live graph mutates (see `cs_graph::mutate`), a standing
//! query need not re-run if the delta provably cannot change its
//! result. The probe exploits the structure of CTP results: every
//! result tree that *appears or disappears* because of a mutation
//! batch contains a node the batch touched (an endpoint of an
//! inserted/removed edge, or an inserted node), has at most `MAX`
//! edges, uses only `LABEL`-allowed edges, and connects one node from
//! each explicit seed set.
//!
//! So a bounded breadth-first sweep from the touched nodes — depth
//! capped at `MAX`, traversal restricted to allowed labels — is a
//! *sound* pruning test: if some explicit seed set has no member
//! within reach, no result tree through the delta can exist and the
//! standing query skips re-evaluation entirely (the semi-naive /
//! DRED-style "does the delta derive anything?" check). When the
//! probe says "relevant" the consumer re-runs the search and diffs
//! against the previous canonical result set — sound *and* complete.
//!
//! The probe is deliberately budgeted: with no `MAX` filter the sweep
//! could flood the component, so it gives up after
//! [`DEFAULT_PROBE_BUDGET`] visited nodes and reports the delta as
//! (conservatively) relevant.

use crate::config::Filters;
use crate::seeds::{SeedSets, SeedSpec};
use cs_graph::fxhash::FxHashSet;
use cs_graph::{Graph, LabelId, NodeId};
use std::collections::VecDeque;

/// Node-visit budget after which [`probe_delta`] stops and reports
/// the delta as relevant (conservative, never unsound).
pub const DEFAULT_PROBE_BUDGET: usize = 65_536;

/// What [`probe_delta`] concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// True if the mutation delta may change the CTP's result set —
    /// the consumer must re-evaluate. False is a proof of irrelevance.
    pub relevant: bool,
    /// Nodes visited by the sweep (probe cost, for stats output).
    pub visited: usize,
    /// True if the sweep gave up on its budget rather than concluding
    /// (implies `relevant`).
    pub budget_exhausted: bool,
}

/// Decides whether a mutation batch touching `touched` can affect the
/// CTP `(seeds, filters)` on `g`, by bounded bidirectional BFS from
/// the touched nodes. See the [module docs](self) for the soundness
/// argument. `budget` caps visited nodes ([`DEFAULT_PROBE_BUDGET`] is
/// a good default); an exhausted budget reports relevant.
pub fn probe_delta(
    g: &Graph,
    seeds: &SeedSets,
    filters: &Filters,
    touched: &[NodeId],
    budget: usize,
) -> ProbeOutcome {
    if touched.is_empty() {
        return ProbeOutcome {
            relevant: false,
            visited: 0,
            budget_exhausted: false,
        };
    }
    // Explicit seed sets the sweep still has to reach. `All` sets are
    // satisfied by any node (in particular by a touched endpoint), so
    // only explicit sets constrain reachability.
    let mut needed = crate::seedmask::SeedMask::EMPTY;
    for (i, spec) in seeds.specs().iter().enumerate() {
        if matches!(spec, SeedSpec::Set(_)) {
            needed.insert(i);
        }
    }
    // LABEL filter: resolve allowed labels once. A label string the
    // graph has never interned cannot appear on any edge.
    let allowed: Option<FxHashSet<LabelId>> = filters.labels.as_ref().map(|ls| {
        ls.iter()
            .filter_map(|l| g.label_id(l))
            .collect::<FxHashSet<_>>()
    });
    let max_depth = filters.max_edges;

    let mut reached = crate::seedmask::SeedMask::EMPTY;
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    for &n in touched {
        if n.index() < g.node_count() && seen.insert(n) {
            queue.push_back((n, 0));
        }
    }
    let mut visited = 0usize;
    while let Some((n, depth)) = queue.pop_front() {
        visited += 1;
        if visited > budget {
            return ProbeOutcome {
                relevant: true,
                visited,
                budget_exhausted: true,
            };
        }
        reached = reached.union(seeds.membership(n));
        if reached.superset_of(needed) {
            return ProbeOutcome {
                relevant: true,
                visited,
                budget_exhausted: false,
            };
        }
        if max_depth.is_some_and(|m| depth >= m) {
            continue;
        }
        for a in g.adjacent(n) {
            if let Some(allowed) = &allowed {
                if !allowed.contains(&g.edge(a.edge()).label) {
                    continue;
                }
            }
            let other = a.other();
            if seen.insert(other) {
                queue.push_back((other, depth + 1));
            }
        }
    }
    ProbeOutcome {
        relevant: false,
        visited,
        budget_exhausted: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_graph::GraphBuilder;

    /// a --x-- b --x-- c     d --x-- e   (two components)
    fn two_chains() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|l| b.add_node(l))
            .collect();
        b.add_edge(ids[0], "x", ids[1]);
        b.add_edge(ids[1], "x", ids[2]);
        b.add_edge(ids[3], "x", ids[4]);
        (b.freeze(), ids)
    }

    fn seeds_of(sets: Vec<Vec<NodeId>>) -> SeedSets {
        SeedSets::from_sets(sets).unwrap()
    }

    #[test]
    fn unreachable_seed_set_is_irrelevant() {
        let (g, ids) = two_chains();
        // Seeds live in the other component: a delta at d/e can't
        // produce a tree containing them.
        let seeds = seeds_of(vec![vec![ids[0]], vec![ids[2]]]);
        let out = probe_delta(&g, &seeds, &Filters::none(), &[ids[3], ids[4]], 1000);
        assert!(!out.relevant);
        assert!(!out.budget_exhausted);
    }

    #[test]
    fn reachable_seed_sets_are_relevant() {
        let (g, ids) = two_chains();
        let seeds = seeds_of(vec![vec![ids[0]], vec![ids[2]]]);
        let out = probe_delta(&g, &seeds, &Filters::none(), &[ids[1]], 1000);
        assert!(out.relevant);
    }

    #[test]
    fn max_edges_bounds_the_sweep() {
        let (g, ids) = two_chains();
        let seeds = seeds_of(vec![vec![ids[0]], vec![ids[2]]]);
        // Both seeds are within depth 1 of b — reachable under MAX 1…
        assert!(
            probe_delta(
                &g,
                &seeds,
                &Filters::none().with_max_edges(1),
                &[ids[1]],
                1000
            )
            .relevant
        );
        // …but a delta at c is 2 hops from a: irrelevant under MAX 1.
        let out = probe_delta(
            &g,
            &seeds,
            &Filters::none().with_max_edges(1),
            &[ids[2]],
            1000,
        );
        assert!(!out.relevant);
    }

    #[test]
    fn label_filter_restricts_traversal() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let m = b.add_node("m");
        let z = b.add_node("z");
        b.add_edge(a, "good", m);
        b.add_edge(m, "bad", z);
        let g = b.freeze();
        let seeds = seeds_of(vec![vec![a], vec![z]]);
        // Unfiltered: delta at m reaches both seeds.
        assert!(probe_delta(&g, &seeds, &Filters::none(), &[m], 1000).relevant);
        // LABEL {good}: z is behind a "bad" edge — unreachable.
        let f = Filters::none().with_labels(["good"]);
        assert!(!probe_delta(&g, &seeds, &f, &[m], 1000).relevant);
    }

    #[test]
    fn empty_touched_set_is_irrelevant() {
        let (g, ids) = two_chains();
        let seeds = seeds_of(vec![vec![ids[0]]]);
        assert!(!probe_delta(&g, &seeds, &Filters::none(), &[], 1000).relevant);
    }

    #[test]
    fn budget_exhaustion_is_conservative() {
        let (g, ids) = two_chains();
        let seeds = seeds_of(vec![vec![ids[0]], vec![ids[2]]]);
        let out = probe_delta(&g, &seeds, &Filters::none(), &[ids[3]], 1);
        assert!(out.relevant);
        assert!(out.budget_exhausted);
    }

    #[test]
    fn all_sets_are_presatisfied() {
        let (g, ids) = two_chains();
        // One explicit set + N: only the explicit one must be reached.
        let seeds = SeedSets::new(vec![SeedSpec::Set(vec![ids[0]]), SeedSpec::All]).unwrap();
        assert!(probe_delta(&g, &seeds, &Filters::none(), &[ids[1]], 1000).relevant);
        assert!(!probe_delta(&g, &seeds, &Filters::none(), &[ids[3]], 1000).relevant);
    }
}
